"""Query result representation.

A query result is a subtree of the source document (the paper's Figure 1
shows one: the ``retailer`` subtree with its stores and clothes).  We keep
results *as references into the source document* — the result root's Dewey
label plus the per-keyword match labels — rather than as copies, because:

* the snippet generator needs the document-level schema classification
  (entity / attribute / connection is defined on source tag paths), and
* instance selection reasons about distances between source nodes.

Materialised copies for display are produced on demand by
:meth:`QueryResult.to_tree`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.search.query import KeywordQuery
from repro.utils.paging import page_slice
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.order import is_ancestor_or_self
from repro.xmltree.tree import XMLTree


@dataclass
class QueryResult:
    """One query result: a subtree of ``source`` rooted at ``root``."""

    query: KeywordQuery
    source: XMLTree
    root: Dewey
    #: per keyword, the labels of matching nodes inside this result subtree
    matches: dict[str, tuple[Dewey, ...]] = field(default_factory=dict)
    score: float = 0.0
    result_id: int = 0

    # ------------------------------------------------------------------ #
    # node access
    # ------------------------------------------------------------------ #
    @property
    def root_node(self) -> XMLNode:
        return self.source.node(self.root)

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All source nodes inside the result subtree, document order."""
        return self.root_node.iter_subtree()

    def contains_label(self, label: Dewey) -> bool:
        """Is the labelled node part of this result subtree?"""
        return is_ancestor_or_self(
            self.root, label, self.source.order
        ) and self.source.has_node(label)

    @property
    def size_nodes(self) -> int:
        return self.root_node.subtree_size_nodes()

    @property
    def size_edges(self) -> int:
        return self.root_node.subtree_size_edges()

    @property
    def matched_keywords(self) -> list[str]:
        """Keywords that have at least one match inside the result."""
        return [keyword for keyword, labels in self.matches.items() if labels]

    def all_match_labels(self) -> list[Dewey]:
        """Every match label of every keyword, de-duplicated, sorted."""
        labels: set[Dewey] = set()
        for keyword_labels in self.matches.values():
            labels.update(keyword_labels)
        return sorted(labels)

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def to_tree(self) -> XMLTree:
        """A standalone deep copy of the result subtree (for display)."""
        return self.source.extract_subtree(self.root)

    def text_content(self) -> str:
        """The flattened text of the result (used by the text baseline)."""
        return self.root_node.full_text()

    def __repr__(self) -> str:
        return (
            f"<QueryResult #{self.result_id} root={self.root_node.tag}@{self.root} "
            f"nodes={self.size_nodes} score={self.score:.3f}>"
        )


@dataclass
class ResultSet:
    """All results of one query over one document, in rank order.

    ``total_results`` is the number of results *before* any ``limit``
    truncation (a result page knows how many hits exist in total); when the
    engine applied no limit it equals ``len(self)``.
    """

    query: KeywordQuery
    document_name: str
    results: list[QueryResult] = field(default_factory=list)
    algorithm: str = "slca"
    total_results: int | None = None

    def __post_init__(self) -> None:
        if self.total_results is None:
            self.total_results = len(self.results)

    @property
    def is_truncated(self) -> bool:
        """Did a ``limit`` cut results off this page?"""
        return (self.total_results or 0) > len(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def is_empty(self) -> bool:
        return not self.results

    def top(self, count: int) -> list[QueryResult]:
        """The ``count`` best-ranked results."""
        return self.results[:count]

    def page(self, page: int, page_size: int | None) -> list[QueryResult]:
        """The results of one page, for paginated serving (conventions in
        :mod:`repro.utils.paging`)."""
        return page_slice(self.results, page, page_size)

    def total_result_edges(self) -> int:
        """Combined size of all result subtrees (drives experiment E1)."""
        return sum(result.size_edges for result in self.results)

    def __repr__(self) -> str:
        return (
            f"<ResultSet query={str(self.query)!r} doc={self.document_name!r} "
            f"results={len(self.results)} algorithm={self.algorithm}>"
        )
