"""XSeek-style query result construction.

The demo uses XSeek [Liu & Chen, SIGMOD 2007] to turn result roots (SLCA or
ELCA nodes) into self-contained *result trees* — the input eXtract's
snippet generator summarises (the Figure 1 fragment is such a result tree).

Three construction strategies are provided; ``XSEEK`` is the default and
matches what the paper's Figure 1 shows (a full entity subtree):

* ``MATCH_PATHS`` — the minimal connected tree spanning the result root
  and the keyword matches (the "paths-only" semantics of many LCA
  engines); compact but not self-contained.
* ``SUBTREE`` — the full subtree rooted at the result root.
* ``XSEEK`` — the full subtree rooted at the *owning entity* of the result
  root: if the result root itself is not an entity (e.g. the SLCA lands on
  a connection node such as ``merchandises``), the root is promoted to the
  nearest ancestor entity so the result is a meaningful, self-contained
  information unit.  Attributes of that entity are always present because
  the whole subtree is kept.
"""

from __future__ import annotations

from enum import Enum

from repro.classify.analyzer import DataAnalyzer
from repro.index.builder import DocumentIndex
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult
from repro.xmltree.dewey import Dewey


class ResultConstruction(str, Enum):
    """How a result root is expanded into a result tree."""

    MATCH_PATHS = "match_paths"
    SUBTREE = "subtree"
    XSEEK = "xseek"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def promote_to_entity_root(analyzer: DataAnalyzer, root: Dewey) -> Dewey:
    """Promote a result root to the nearest ancestor-or-self entity node.

    When no ancestor entity exists (flat documents), the original root is
    kept — the result is then whatever subtree the LCA semantics chose.
    """
    node = analyzer.tree.node(root)
    owning = analyzer.owning_entity(node)
    if owning is None:
        return root
    return owning.dewey


def build_result_tree(
    index: DocumentIndex,
    query: KeywordQuery,
    root: Dewey,
    construction: ResultConstruction = ResultConstruction.XSEEK,
    result_id: int = 0,
) -> QueryResult:
    """Build one :class:`QueryResult` for a result root label.

    The per-keyword match labels recorded in the result are restricted to
    the chosen result subtree, so downstream consumers (ranking, snippet
    generation) never see matches that fall outside the result.
    """
    tree = index.tree
    if construction == ResultConstruction.XSEEK:
        root = promote_to_entity_root(index.analyzer, root)

    matches: dict[str, tuple[Dewey, ...]] = {}
    for keyword in query.keywords:
        postings = index.keyword_matches(keyword)
        matches[keyword] = tuple(postings.descendants_of(root, tree.order))

    if construction == ResultConstruction.MATCH_PATHS:
        # The result is conceptually the projection tree; we keep the root
        # reference plus matches, and to_tree() materialises the paths-only
        # projection lazily via the dedicated helper below.
        result = _MatchPathResult(
            query=query, source=tree, root=root, matches=matches, result_id=result_id
        )
    else:
        result = QueryResult(
            query=query, source=tree, root=root, matches=matches, result_id=result_id
        )
    return result


class _MatchPathResult(QueryResult):
    """A query result materialised as the match-paths projection."""

    def to_tree(self):  # type: ignore[override]
        labels = self.all_match_labels() or [self.root]
        labels.append(self.root)
        projection, _ = self.source.extract_projection(labels)
        return projection

    @property
    def size_nodes(self) -> int:  # type: ignore[override]
        return self.to_tree().size_nodes

    @property
    def size_edges(self) -> int:  # type: ignore[override]
        return self.to_tree().size_edges


def build_all_results(
    index: DocumentIndex,
    query: KeywordQuery,
    roots: list[Dewey],
    construction: ResultConstruction = ResultConstruction.XSEEK,
) -> list[QueryResult]:
    """Expand every result root; de-duplicates roots that promote to the
    same entity (two SLCAs inside one store must not produce two identical
    results)."""
    results: list[QueryResult] = []
    seen_roots: set[Dewey] = set()
    for root in roots:
        effective_root = (
            promote_to_entity_root(index.analyzer, root)
            if construction == ResultConstruction.XSEEK
            else root
        )
        if effective_root in seen_roots:
            continue
        seen_roots.add(effective_root)
        results.append(
            build_result_tree(
                index,
                query,
                effective_root,
                construction=ResultConstruction.SUBTREE
                if construction == ResultConstruction.XSEEK
                else construction,
                result_id=len(results),
            )
        )
    return results
