"""Brute-force LCA-family reference implementations.

These are deliberately simple O(n · k · depth) algorithms used as ground
truth in property-based tests for the optimised SLCA/ELCA implementations,
and as a readable specification of the semantics:

* **LCA set** — every node that is the lowest common ancestor of one match
  per keyword, for some combination of matches.
* **SLCA** — the LCAs that have no other LCA as a descendant
  ("smallest" LCAs) [7].
* **ELCA** — nodes that are the LCA of a *witness* combination of matches
  none of which lies inside a descendant that already contains all
  keywords [2].
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.index.postings import PostingList
from repro.xmltree.dewey import Dewey, remove_ancestors


def _ancestor_closure(labels: Iterable[Dewey]) -> set[Dewey]:
    closure: set[Dewey] = set()
    for label in labels:
        for ancestor in label.ancestors(include_self=True):
            closure.add(ancestor)
    return closure


def common_ancestor_candidates(posting_lists: Sequence[PostingList]) -> set[Dewey]:
    """All nodes that are ancestors-or-self of >= 1 match of *every* keyword."""
    if not posting_lists:
        return set()
    closure = _ancestor_closure(posting_lists[0])
    for postings in posting_lists[1:]:
        closure &= _ancestor_closure(postings)
    return closure


def brute_force_slca(posting_lists: Sequence[PostingList]) -> list[Dewey]:
    """SLCA by definition: common ancestors with no common-ancestor descendant.

    >>> from repro.xmltree.dewey import Dewey
    >>> a = PostingList([Dewey((0, 0)), Dewey((1, 0))])
    >>> b = PostingList([Dewey((0, 1)), Dewey((1, 1))])
    >>> [str(label) for label in brute_force_slca([a, b])]
    ['0', '1']
    """
    if not posting_lists or any(postings.is_empty for postings in posting_lists):
        return []
    candidates = common_ancestor_candidates(posting_lists)
    if not candidates:
        return []
    # Keep the candidates that have no descendant candidate: exactly the
    # "deepest" antichain of the candidate set.
    return remove_ancestors(candidates)


def brute_force_elca(posting_lists: Sequence[PostingList]) -> list[Dewey]:
    """ELCA by definition.

    A node ``v`` is an ELCA iff for every keyword there exists a match that
    is a descendant-or-self of ``v`` and is **not** contained in any child
    subtree of ``v`` that already contains matches of all keywords (i.e.
    not under a descendant common-ancestor candidate below ``v``).
    """
    if not posting_lists or any(postings.is_empty for postings in posting_lists):
        return []
    candidates = common_ancestor_candidates(posting_lists)
    elcas: list[Dewey] = []
    for candidate in sorted(candidates):
        if _is_elca(candidate, candidates, posting_lists):
            elcas.append(candidate)
    return elcas


def _is_elca(
    candidate: Dewey, candidates: set[Dewey], posting_lists: Sequence[PostingList]
) -> bool:
    # Descendant candidates of this node: matches inside them are "used up".
    blocking = [other for other in candidates if candidate.is_ancestor_of(other)]
    for postings in posting_lists:
        witness_found = False
        for label in postings.descendants_of(candidate):
            if any(block.is_ancestor_or_self(label) for block in blocking):
                continue
            witness_found = True
            break
        if not witness_found:
            return False
    return True


def lca_of_match_combination(matches: Sequence[Dewey]) -> Dewey:
    """The LCA of one concrete combination of matches (one per keyword)."""
    return Dewey.common_ancestor_of_all(matches)
