"""Result ranking.

Snippet generation is orthogonal to ranking (§1, §4), but the end-to-end
system needs *some* ordering to present results, and the user-study
simulation needs a plausible (imperfect!) ranking to demonstrate the
paper's motivation: rankings are never perfect, snippets let users recover.

The score combines three standard signals:

* keyword coverage — fraction of query keywords matched in the result,
* inverse match span — matches that are close together (small LCA subtree
  relative to the result) score higher, following the proximity intuition
  of XRANK and XSearch,
* specificity — smaller result trees score (slightly) higher, because a
  match confined to a tight entity is usually more on-topic than one
  scattered across a huge subtree.
"""

from __future__ import annotations

import math

from repro.search.results import QueryResult
from repro.xmltree.dewey import Dewey

#: weights of the three ranking signals; coverage dominates.
COVERAGE_WEIGHT = 10.0
PROXIMITY_WEIGHT = 2.0
SPECIFICITY_WEIGHT = 1.0


def score_result(result: QueryResult) -> float:
    """Compute the ranking score of one result (higher is better)."""
    total_keywords = max(1, len(result.query.keywords))
    matched = len(result.matched_keywords)
    coverage = matched / total_keywords

    proximity = 0.0
    labels = result.all_match_labels()
    if len(labels) >= 2:
        lca = Dewey.common_ancestor_of_all(labels)
        span = max(label.depth - lca.depth for label in labels)
        proximity = 1.0 / (1.0 + span)
    elif len(labels) == 1:
        proximity = 1.0

    specificity = 1.0 / (1.0 + math.log1p(max(1, result.size_nodes)))

    return (
        COVERAGE_WEIGHT * coverage
        + PROXIMITY_WEIGHT * proximity
        + SPECIFICITY_WEIGHT * specificity
    )


def rank_results(results: list[QueryResult]) -> list[QueryResult]:
    """Score and sort results (stable for equal scores, best first).

    Each result's ``score`` attribute is updated in place; ``result_id`` is
    reassigned to the final rank position so snippets and result links
    agree on numbering.
    """
    for result in results:
        result.score = score_result(result)
    ordered = sorted(results, key=lambda result: -result.score)
    for rank, result in enumerate(ordered):
        result.result_id = rank
    return ordered
