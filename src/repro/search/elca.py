"""Exclusive Lowest Common Ancestor (ELCA) computation.

ELCA is the result semantics of XRANK [Guo et al., SIGMOD 2003, reference 2
of the paper]: a node ``v`` is an ELCA of a keyword query iff the subtree
rooted at ``v`` contains at least one occurrence of every keyword *after
excluding* the occurrences that fall inside descendant subtrees which
themselves contain every keyword.

The implementation works in two phases:

1. build the set of *candidates* — nodes whose subtree contains every
   keyword — by intersecting the ancestor closures of the posting lists
   (``O(matches · depth)`` labels in total), then
2. test each candidate against the definition, blocking only its *maximal*
   candidate descendants (the candidate "children" in the containment
   hierarchy), found by one sorted sweep.

This is asymptotically coarser than the Dewey-interval stack algorithm of
XRANK but exact, and fast enough for the document sizes the evaluation
sweeps use (hundreds of thousands of nodes); the SLCA semantics used by
default in eXtract has the tighter Indexed-Lookup implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.index.postings import PostingList
from repro.xmltree.dewey import Dewey
from repro.xmltree.order import NodeOrder, is_ancestor, is_ancestor_or_self


def compute_elca(
    posting_lists: Sequence[PostingList], order: NodeOrder | None = None
) -> list[Dewey]:
    """Compute the ELCA set of the given keyword posting lists.

    When ``order`` — the owning tree's pre/post span table — is supplied,
    every ancestor/descendant test runs as an O(1) range comparison
    instead of a Dewey prefix walk.  Candidates are ancestors of real
    matches, hence real nodes themselves, so the span lookups always hit.

    >>> from repro.xmltree.dewey import Dewey
    >>> a = PostingList([Dewey((0, 0)), Dewey((2,))])
    >>> b = PostingList([Dewey((0, 1)), Dewey((1,))])
    >>> [str(label) for label in compute_elca([a, b])]
    ['r', '0']
    """
    if not posting_lists or any(postings.is_empty for postings in posting_lists):
        return []
    if len(posting_lists) == 1:
        return list(posting_lists[0])

    candidates = _candidate_set(posting_lists)
    if not candidates:
        return []
    ordered = sorted(candidates)

    elcas: list[Dewey] = []
    for index, candidate in enumerate(ordered):
        blocking = _maximal_descendants(candidate, ordered, index, order)
        if _has_exclusive_witnesses(candidate, blocking, posting_lists, order):
            elcas.append(candidate)
    return elcas


def _candidate_set(posting_lists: Sequence[PostingList]) -> set[Dewey]:
    """Nodes whose subtree contains >= 1 match of every keyword."""
    closure: set[Dewey] | None = None
    for postings in posting_lists:
        keyword_closure: set[Dewey] = set()
        for label in postings:
            keyword_closure.update(label.ancestors(include_self=True))
        closure = keyword_closure if closure is None else closure & keyword_closure
        if not closure:
            return set()
    return closure or set()


def _maximal_descendants(
    candidate: Dewey,
    ordered: list[Dewey],
    index: int,
    order: NodeOrder | None = None,
) -> list[Dewey]:
    """The maximal candidates strictly below ``candidate``.

    ``ordered`` is the candidate list in document order, ``index`` the
    position of ``candidate``; its descendants (if any) follow contiguously.
    """
    blocking: list[Dewey] = []
    for position in range(index + 1, len(ordered)):
        label = ordered[position]
        if not is_ancestor(candidate, label, order):
            break
        if blocking and is_ancestor_or_self(blocking[-1], label, order):
            continue
        blocking.append(label)
    return blocking


def _has_exclusive_witnesses(
    candidate: Dewey,
    blocking: list[Dewey],
    posting_lists: Sequence[PostingList],
    order: NodeOrder | None = None,
) -> bool:
    for postings in posting_lists:
        if not any(
            not any(is_ancestor_or_self(block, match, order) for block in blocking)
            for match in postings.descendants_of(candidate, order)
        ):
            return False
    return True


def elca_result_roots(
    posting_lists: Sequence[PostingList], order: NodeOrder | None = None
) -> list[Dewey]:
    """Alias used by the search engine: ELCA nodes are the result roots."""
    return compute_elca(posting_lists, order)
