"""XML keyword search substrate.

Snippet generation "takes query results as input" (paper §2, footnote 1)
and the demo uses XSeek as its search engine.  This package provides the
search substrate so the reproduction is end-to-end runnable:

* :mod:`repro.search.query` — keyword query parsing,
* :mod:`repro.search.slca` — Smallest LCA semantics [Xu & Papakonstantinou,
  SIGMOD 2005], the result-root semantics most XML keyword engines use,
* :mod:`repro.search.elca` — Exclusive LCA semantics [XRANK, SIGMOD 2003],
* :mod:`repro.search.lca` — brute-force reference implementations used by
  property-based tests,
* :mod:`repro.search.xseek` — XSeek-style result-tree construction
  [Liu & Chen, SIGMOD 2007]: each result root is expanded to a
  self-contained result tree (the input the snippet generator consumes),
* :mod:`repro.search.ranking` — a simple size/keyword-proximity ranking,
* :mod:`repro.search.engine` — the façade combining all of the above.
"""

from repro.search.query import KeywordQuery
from repro.search.results import QueryResult, ResultSet
from repro.search.slca import compute_slca
from repro.search.elca import compute_elca
from repro.search.lca import brute_force_slca, brute_force_elca
from repro.search.xseek import ResultConstruction, build_result_tree
from repro.search.ranking import rank_results
from repro.search.engine import SearchEngine

__all__ = [
    "KeywordQuery",
    "QueryResult",
    "ResultSet",
    "compute_slca",
    "compute_elca",
    "brute_force_slca",
    "brute_force_elca",
    "ResultConstruction",
    "build_result_tree",
    "rank_results",
    "SearchEngine",
]
