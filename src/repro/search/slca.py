"""Smallest Lowest Common Ancestor (SLCA) computation.

Implements the Indexed Lookup approach of Xu & Papakonstantinou
[SIGMOD 2005, reference 7 of the paper]: iterate over the *shortest*
keyword posting list; for each of its matches, repeatedly replace the
current anchor by its LCA with the *closest* match (left or right
neighbour in document order, found by binary search) from every other
posting list.  Each anchor yields one SLCA candidate; the final SLCA set
is the deepest antichain of the candidates.

Complexity: ``O(|S1| · k · log|S| · depth)`` where ``S1`` is the shortest
posting list — the same asymptotics as the original Indexed Lookup Eager
algorithm, which is what makes SLCA-based engines scale to large documents.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.index.postings import PostingList
from repro.xmltree.dewey import Dewey
from repro.xmltree.order import NodeOrder, remove_ancestors


def compute_slca(
    posting_lists: Sequence[PostingList], order: NodeOrder | None = None
) -> list[Dewey]:
    """Compute the SLCA set of the given keyword posting lists.

    Returns an empty list when any keyword has no match (conjunctive
    keyword semantics: every keyword must appear in a result).

    When ``order`` — the owning tree's pre/post span table — is supplied,
    every ancestor/descendant test runs as an O(1) range comparison
    instead of a Dewey prefix walk.

    >>> from repro.xmltree.dewey import Dewey
    >>> stores = PostingList([Dewey((0,)), Dewey((1,))])
    >>> texas = PostingList([Dewey((0, 2)), Dewey((1, 0, 1))])
    >>> [str(label) for label in compute_slca([stores, texas])]
    ['0', '1']
    """
    if not posting_lists:
        return []
    if any(postings.is_empty for postings in posting_lists):
        return []
    if len(posting_lists) == 1:
        # Single-keyword query: every match is its own smallest "LCA".
        return remove_ancestors(posting_lists[0].labels, order)

    ordered = sorted(posting_lists, key=len)
    anchor_list, others = ordered[0], ordered[1:]

    candidates: list[Dewey] = []
    for anchor in anchor_list:
        current = anchor
        for postings in others:
            closest = postings.closest_match(current)
            if closest is None:  # unreachable: emptiness checked above
                return []
            current = Dewey.common_ancestor(current, closest)
            if current.is_root:
                break
        candidates.append(current)

    # The candidate set may contain ancestors of other candidates and
    # duplicates; the SLCA set is the deepest antichain.
    slcas = remove_ancestors(candidates, order)
    # Every SLCA must actually contain matches of all keywords.  With the
    # closest-match construction this holds, but we keep the check cheap
    # and explicit to guard against degenerate posting lists.
    return [label for label in slcas if _contains_all(label, posting_lists, order)]


def _contains_all(
    label: Dewey, posting_lists: Sequence[PostingList], order: NodeOrder | None = None
) -> bool:
    return all(postings.has_descendant_of(label, order) for postings in posting_lists)


def slca_result_roots(
    posting_lists: Sequence[PostingList], order: NodeOrder | None = None
) -> list[Dewey]:
    """Alias used by the search engine: SLCA nodes are the result roots."""
    return compute_slca(posting_lists, order)
