"""The XML keyword search engine façade.

Combines the index, the LCA-family semantics and the result construction
into the object the examples and the end-to-end :class:`repro.ExtractSystem`
use.  The engine is deliberately interchangeable — the paper emphasises that
eXtract "can be used on top of any XML keyword search engine" — so the
snippet generator only ever sees :class:`~repro.search.results.ResultSet`.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.index.builder import DocumentIndex
from repro.index.postings import PostingList
from repro.search.elca import compute_elca
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results
from repro.search.results import QueryResult, ResultSet
from repro.search.slca import compute_slca
from repro.search.xseek import ResultConstruction, build_all_results
from repro.utils.timing import TimingBreakdown

#: the supported result-root semantics
ALGORITHMS = ("slca", "elca")


class SearchEngine:
    """Keyword search over one indexed document.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> from repro.index.builder import IndexBuilder
    >>> tree = tree_from_dict("retailer", {
    ...     "name": "Brook Brothers",
    ...     "store": [
    ...         {"name": "Galleria", "state": "Texas", "city": "Houston"},
    ...         {"name": "West Village", "state": "Texas", "city": "Austin"},
    ...     ],
    ... })
    >>> engine = SearchEngine(IndexBuilder().build(tree))
    >>> result_set = engine.search("store texas")
    >>> len(result_set)
    2
    """

    def __init__(
        self,
        index: DocumentIndex,
        algorithm: str = "slca",
        construction: ResultConstruction = ResultConstruction.XSEEK,
    ):
        if algorithm not in ALGORITHMS:
            raise SearchError(f"unknown search algorithm {algorithm!r}; expected one of {ALGORITHMS}")
        self.index = index
        self.algorithm = algorithm
        self.construction = construction
        self.timings = TimingBreakdown()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: str | KeywordQuery,
        limit: int | None = None,
        postings: dict[str, PostingList] | None = None,
        construction: ResultConstruction | None = None,
        timings: TimingBreakdown | None = None,
    ) -> ResultSet:
        """Evaluate a keyword query and return ranked results.

        ``limit`` truncates the ranked list (like a result page); ``None``
        returns everything, which the efficiency experiments rely on.
        ``postings`` optionally maps keywords to pre-fetched posting lists
        (the batch executor shares one lookup across many queries); absent
        keywords fall back to an index lookup.

        ``construction`` overrides :attr:`construction` for this call only
        and ``timings`` redirects the phase measurements into a
        caller-owned breakdown.  Both exist so concurrent callers (the
        :mod:`repro.api` service layer) never mutate shared engine state:
        a search with explicit ``construction`` and ``timings`` touches no
        attribute of the engine and is therefore safe to run from many
        threads at once over the same immutable index.
        """
        parsed = query if isinstance(query, KeywordQuery) else KeywordQuery.parse(query)
        effective_construction = construction if construction is not None else self.construction
        breakdown = timings if timings is not None else self.timings

        with breakdown.measure("lookup"):
            posting_lists = []
            for keyword in parsed.keywords:
                shared = postings.get(keyword) if postings is not None else None
                posting_lists.append(
                    shared if shared is not None else self.index.keyword_matches(keyword)
                )

        with breakdown.measure("lca"):
            order = self.index.tree.order
            if self.algorithm == "slca":
                roots = compute_slca(posting_lists, order)
            else:
                roots = compute_elca(posting_lists, order)

        with breakdown.measure("result_construction"):
            results = build_all_results(
                self.index, parsed, roots, construction=effective_construction
            )

        with breakdown.measure("ranking"):
            ranked = rank_results(results)

        total = len(ranked)
        if limit is not None:
            ranked = ranked[:limit]
            # Explicit invariant: ids on the returned page are always
            # 0..len-1.  Today ``rank_results`` already numbers the full
            # sorted list so this re-assignment is a no-op, but the page
            # contract must not depend on that implementation detail.
            # ``total_results`` records the count before the page cut.
            for position, result in enumerate(ranked):
                result.result_id = position
        return ResultSet(
            query=parsed,
            document_name=self.index.tree.name,
            results=ranked,
            algorithm=self.algorithm,
            total_results=total,
        )

    def keyword_statistics(self, query: str | KeywordQuery) -> dict[str, int]:
        """Per-keyword match counts (useful for examples and debugging)."""
        parsed = query if isinstance(query, KeywordQuery) else KeywordQuery.parse(query)
        return {keyword: len(self.index.keyword_matches(keyword)) for keyword in parsed.keywords}

    def __repr__(self) -> str:
        return (
            f"<SearchEngine doc={self.index.tree.name!r} algorithm={self.algorithm} "
            f"construction={self.construction}>"
        )


def make_result_set(results: list[QueryResult], query: KeywordQuery, document_name: str) -> ResultSet:
    """Package externally produced results (e.g. from another engine).

    This is the hook for the paper's claim that eXtract works "on top of
    any XML keyword search engine": a caller with its own result trees can
    wrap them and hand them straight to the snippet generator.
    """
    return ResultSet(query=query, document_name=document_name, results=rank_results(results))
