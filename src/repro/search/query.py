"""Keyword query representation.

A keyword query is a flat bag of keywords ("Texas, apparel, retailer").
The IList is *initialised with the query keywords in their given order*
(§2), so the parsed query preserves order while de-duplicating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.utils.text import normalize_token, tokenize_query


@dataclass(frozen=True)
class KeywordQuery:
    """A parsed keyword query.

    >>> query = KeywordQuery.parse("Texas, apparel, retailer")
    >>> query.keywords
    ('texas', 'apparel', 'retailer')
    >>> "TEXAS" in query
    True
    """

    raw: str
    keywords: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, text: str) -> "KeywordQuery":
        """Parse raw query text into normalised keywords.

        Raises :class:`QueryError` when no usable keyword remains (empty
        string, only punctuation or only stop words).
        """
        if not isinstance(text, str):
            raise QueryError(f"query must be a string, got {type(text).__name__}")
        keywords = tuple(tokenize_query(text))
        if not keywords:
            raise QueryError(f"query {text!r} contains no searchable keyword")
        return cls(raw=text, keywords=keywords)

    @classmethod
    def from_keywords(cls, keywords: list[str] | tuple[str, ...]) -> "KeywordQuery":
        """Build a query from an already tokenised keyword list."""
        normalised: list[str] = []
        seen: set[str] = set()
        for keyword in keywords:
            token = normalize_token(str(keyword).strip().lower())
            if token and token not in seen:
                seen.add(token)
                normalised.append(token)
        if not normalised:
            raise QueryError("from_keywords() received no usable keyword")
        return cls(raw=" ".join(keywords), keywords=tuple(normalised))

    @property
    def size(self) -> int:
        return len(self.keywords)

    @staticmethod
    def share(parsed: "list[KeywordQuery] | tuple[KeywordQuery, ...]") -> "list[KeywordQuery]":
        """Share one object among queries normalising to the same keyword
        tuple (first occurrence wins; keyword *order* is part of the
        identity because the IList preserves it).

        This is the batch executor's parse-once rule — kept here so the
        legacy ``Corpus.search_batch`` shim and the service batch path
        cannot drift apart.
        """
        by_keywords: dict[tuple[str, ...], KeywordQuery] = {}
        return [by_keywords.setdefault(query.keywords, query) for query in parsed]

    def __contains__(self, keyword: str) -> bool:
        return normalize_token(keyword.lower()) in self.keywords

    def __iter__(self):
        return iter(self.keywords)

    def __str__(self) -> str:
        return ", ".join(self.keywords)
