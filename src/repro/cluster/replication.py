"""Replica sets and rebalancing for the distributed cluster.

One shard of a remote cluster is served by a **replica set**: M
independently-spawned ``serve --shard-of`` processes holding the same
shard corpus.  Endpoint 0 is the **primary** — every write lands there
first (via the ``apply-update`` replication op), and the resulting
:class:`~repro.cluster.shard.ShardDelta` is fanned to the replicas as
``apply-delta`` ops.  Replicas applying a primary's deltas in order are
proven byte-identical to the primary (``tests/cluster/test_shard.py``),
so read traffic can be load-balanced across every healthy, in-sync
endpoint without changing a single served byte.

State model per endpoint (:class:`ShardEndpoint`):

* ``healthy`` — flipped down on transport failure (by the router's
  failover path or the :class:`~repro.cluster.health.HealthMonitor`) and
  back up when a health probe succeeds;
* ``stale`` — set when the endpoint missed a replication delta (it was
  down or NACKed during a write fan-out).  A stale endpoint is excluded
  from reads *and from promotion* until it is rebuilt — serving from it
  would silently fork the byte-identity contract;
* ``sequence`` — the last replication sequence number the endpoint
  acknowledged; the set's own ``sequence`` is the committed write count.

Failover: :meth:`ReplicaSet.promote` moves the first healthy, in-sync
replica into the primary slot (the dead primary is demoted to the tail,
where a later health recovery makes it a read replica again — but never
silently a primary).

:func:`rebalance_document` is the offline counterpart for saved cluster
directories: move one document between shards as a remove+add delta pair
under a manifest version bump (the ``cluster-rebalance`` CLI).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cluster.partition import (
    ExplicitPartitioner,
    manifest_for_partitioner,
    partitioner_from_manifest,
    read_cluster_manifest,
    write_cluster_manifest,
)
from repro.cluster.shard import ShardDelta
from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.client import ServiceClient

#: consecutive ``overloaded`` responses after which an endpoint is shed
DEFAULT_OVERLOAD_THRESHOLD = 3


class ShardEndpoint:
    """One serving process of a shard: a client plus liveness state.

    The mutable health/replication fields are written under the owning
    :class:`ReplicaSet`'s lock; the endpoint itself is a dumb record.
    """

    def __init__(self, client: "ServiceClient", role: str = "replica"):
        if role not in ("primary", "replica"):
            raise ClusterError(f"endpoint role must be 'primary' or 'replica', got {role!r}")
        self.client = client
        self.role = role
        self.healthy = True
        self.stale = False
        self.sequence = 0
        self.overloaded_streak = 0

    @property
    def address(self) -> str:
        return f"{self.client.host}:{self.client.port}"

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "down"
        if self.stale:
            state += ",stale"
        return f"<ShardEndpoint {self.role} {self.address} seq={self.sequence} ({state})>"


class ReplicaSet:
    """The endpoints serving one shard: a primary plus read replicas.

    Endpoint 0 of ``endpoints`` is the primary.  All state transitions
    (mark up/down, staleness, promotion, the read-balancing cursor) happen
    under one lock so concurrent readers, the write path and the health
    monitor never observe a half-promoted set.
    """

    def __init__(self, shard_id: int, endpoints: Sequence[ShardEndpoint]):
        endpoint_list = list(endpoints)
        if not endpoint_list:
            raise ClusterError(f"replica set for shard {shard_id} needs at least one endpoint")
        self.shard_id = shard_id
        self._endpoints = endpoint_list
        self._endpoints[0].role = "primary"
        for endpoint in self._endpoints[1:]:
            endpoint.role = "replica"
        #: committed replication sequence (writes applied by the primary)
        self.sequence = 0
        self._cursor = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def primary(self) -> ShardEndpoint:
        with self._lock:
            return self._endpoints[0]

    @property
    def replicas(self) -> tuple[ShardEndpoint, ...]:
        with self._lock:
            return tuple(self._endpoints[1:])

    def endpoints(self) -> tuple[ShardEndpoint, ...]:
        with self._lock:
            return tuple(self._endpoints)

    def __len__(self) -> int:
        return len(self._endpoints)

    # ------------------------------------------------------------------ #
    # read balancing & failover
    # ------------------------------------------------------------------ #
    def read_candidates(self) -> list[ShardEndpoint]:
        """Endpoints to try for one read, in failover order.

        Healthy, in-sync endpoints rotated round-robin (so a stream of
        reads spreads across the set); when everything is marked down the
        non-stale endpoints are returned anyway — an endpoint that just
        recovered should get the read rather than the caller a guaranteed
        failure.  Stale endpoints never serve reads.
        """
        with self._lock:
            in_sync = [endpoint for endpoint in self._endpoints if not endpoint.stale]
            healthy = [endpoint for endpoint in in_sync if endpoint.healthy]
            candidates = healthy or in_sync
            if not candidates:
                return []
            start = self._cursor % len(candidates)
            self._cursor += 1
            return candidates[start:] + candidates[:start]

    def mark_down(self, endpoint: ShardEndpoint) -> None:
        with self._lock:
            endpoint.healthy = False

    def mark_up(self, endpoint: ShardEndpoint) -> None:
        """A health probe succeeded; staleness is *not* cleared — a stale
        endpoint is alive but diverged, and only a rebuild fixes that."""
        with self._lock:
            endpoint.healthy = True
            endpoint.overloaded_streak = 0

    def record_overloaded(
        self, endpoint: ShardEndpoint, threshold: int = DEFAULT_OVERLOAD_THRESHOLD
    ) -> bool:
        """Count one ``overloaded`` answer; shed the endpoint at the
        threshold.  Returns True when the endpoint was marked down."""
        with self._lock:
            endpoint.overloaded_streak += 1
            if endpoint.overloaded_streak >= threshold:
                endpoint.healthy = False
                return True
            return False

    def record_served(self, endpoint: ShardEndpoint) -> None:
        """A non-overloaded answer resets the endpoint's shed counter."""
        with self._lock:
            endpoint.overloaded_streak = 0

    # ------------------------------------------------------------------ #
    # replication bookkeeping
    # ------------------------------------------------------------------ #
    def record_commit(self, sequence: int) -> None:
        """The primary applied a write; the set is now at ``sequence``."""
        with self._lock:
            self.sequence = sequence
            self._endpoints[0].sequence = sequence

    def record_applied(self, endpoint: ShardEndpoint, sequence: int) -> None:
        """``endpoint`` acknowledged the delta for ``sequence``."""
        with self._lock:
            endpoint.sequence = sequence

    def mark_stale(self, endpoint: ShardEndpoint) -> None:
        """``endpoint`` missed a delta: exclude it from reads and promotion."""
        with self._lock:
            endpoint.stale = True

    # ------------------------------------------------------------------ #
    # failover
    # ------------------------------------------------------------------ #
    def promote(self) -> ShardEndpoint | None:
        """Promote a replica when the primary is down.

        No-op (returning the current primary) while the primary is
        healthy.  Otherwise the first healthy, in-sync replica moves into
        the primary slot and the dead primary is demoted to the tail;
        returns None when no replica qualifies — the shard is then
        write-unavailable until an endpoint recovers in sync.
        """
        with self._lock:
            current = self._endpoints[0]
            if current.healthy and not current.stale:
                return current
            for index, endpoint in enumerate(self._endpoints[1:], start=1):
                if endpoint.healthy and not endpoint.stale and endpoint.sequence == self.sequence:
                    self._endpoints.pop(index)
                    self._endpoints.pop(0)
                    self._endpoints.insert(0, endpoint)
                    self._endpoints.append(current)
                    endpoint.role = "primary"
                    current.role = "replica"
                    return endpoint
            return None

    def close(self) -> None:
        for endpoint in self.endpoints():
            endpoint.client.close()

    def __repr__(self) -> str:
        with self._lock:
            up = sum(1 for endpoint in self._endpoints if endpoint.healthy)
            return (
                f"<ReplicaSet shard={self.shard_id} endpoints={len(self._endpoints)} "
                f"up={up} seq={self.sequence}>"
            )


# ---------------------------------------------------------------------- #
# rebalancing
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RebalanceReport:
    """What one :func:`rebalance_document` move did."""

    document: str
    source_shard: int
    target_shard: int
    manifest_version: int
    #: the move expressed in replication terms: (remove on source, add on target)
    deltas: tuple[ShardDelta, ShardDelta]


def rebalance_document(
    directory: str | os.PathLike[str], document: str, target_shard: int
) -> RebalanceReport:
    """Move ``document`` to ``target_shard`` in a saved cluster directory.

    The move is a remove+add delta pair in journal terms: the document's
    index is snapshotted into the target shard (journalled as an ``add``),
    tombstoned on the source shard (journalled as a ``remove``), and the
    manifest version is bumped — with an explicit partitioner the
    assignment map is repointed so future updates route to the new home.

    Crash ordering (matters, so it is pinned here): the target's add lands
    **before** the source's remove, and the manifest bump is **last**.  A
    crash mid-move can therefore leave the document briefly registered on
    both shards (re-running the rebalance converges) but never on neither;
    and a stale manifest version never describes a half-moved cluster as
    committed.
    """
    from repro.corpus import Corpus, _subdir_for
    from repro.index.storage import (
        JournalRecord,
        append_journal_record,
        directory_documents,
        save_index,
    )
    from repro.xmltree.serialize import to_xml_string

    path = os.fspath(directory)
    manifest = read_cluster_manifest(path)
    if not isinstance(target_shard, int) or isinstance(target_shard, bool) or not (
        0 <= target_shard < manifest.shards
    ):
        raise ClusterError(
            f"target shard {target_shard!r} is outside this cluster's "
            f"range [0, {manifest.shards})"
        )

    source_shard: int | None = None
    source_subdir_of: dict[str, str] = {}
    registered: list[str] = []
    for shard_id, subdir in enumerate(manifest.shard_dirs):
        documents = directory_documents(os.path.join(path, subdir))
        registered.extend(documents.values())
        if source_shard is None and document in documents.values():
            source_shard = shard_id
            source_subdir_of = {name: sub for sub, name in documents.items()}
    if source_shard is None:
        raise ClusterError(
            f"no document named {document!r} in the cluster; "
            f"registered: {', '.join(sorted(registered)) or '(none)'}"
        )
    if source_shard == target_shard:
        raise ClusterError(
            f"document {document!r} already lives on shard {target_shard}; "
            "nothing to rebalance"
        )

    source_dir = os.path.join(path, manifest.shard_dirs[source_shard])
    target_dir = os.path.join(path, manifest.shard_dirs[target_shard])
    source_corpus = Corpus.load_dir(source_dir)
    system = source_corpus.system(document)

    # 1. Add on the target shard (snapshot + journalled add) — first, so a
    #    crash never leaves the document registered nowhere.
    used = {entry.lower() for entry in os.listdir(target_dir)}
    used.update(sub.lower() for sub in directory_documents(target_dir))
    snapshot = _subdir_for(document, used)
    save_index(system.index, os.path.join(target_dir, snapshot))
    append_journal_record(
        target_dir, JournalRecord(kind="add", subdir=snapshot, name=document)
    )

    # 2. Tombstone on the source shard.
    append_journal_record(
        source_dir, JournalRecord(kind="remove", subdir=source_subdir_of[document])
    )

    # 3. Commit point: repoint an explicit assignment and bump the version.
    partitioner = partitioner_from_manifest(manifest)
    if isinstance(partitioner, ExplicitPartitioner):
        assignments = dict(partitioner.assignments)
        assignments[document] = target_shard
        partitioner = ExplicitPartitioner(
            assignments, manifest.shards, default=partitioner.default
        )
    new_manifest = manifest_for_partitioner(
        partitioner, manifest.shard_dirs, version=manifest.version + 1
    )
    write_cluster_manifest(path, new_manifest)

    deltas = (
        ShardDelta(shard=source_shard, document=document, kind="remove"),
        ShardDelta(
            shard=target_shard,
            document=document,
            kind="add",
            xml=to_xml_string(system.index.tree),
        ),
    )
    return RebalanceReport(
        document=document,
        source_shard=source_shard,
        target_shard=target_shard,
        manifest_version=new_manifest.version,
        deltas=deltas,
    )
