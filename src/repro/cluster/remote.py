"""The distributed deployment layer: remote shards behind one coordinator.

Three pieces turn the in-process cluster into a process-per-shard
deployment without a single new serving abstraction — exactly the
composition the seams were built for (``ServiceClient`` is a
``ServingBackend``, ``ShardExecutor`` is an ``Executor``):

* :class:`ShardBackend` — what one ``serve --shard-of N`` process runs: a
  :class:`~repro.cluster.shard.ShardServer` behind the standard backend
  surface, plus the **replication ops** served on ``POST /v1/replicate``
  (``apply-update`` on a primary returns the response *and* the
  :class:`~repro.cluster.shard.ShardDelta`; ``apply-delta`` applies a
  primary's delta on a replica).  Replication deliberately bypasses the
  gateway middleware: update propagation is a separate path from read
  serving, so admission control shedding reads never stalls replication.
* :class:`RemoteClusterService` — the coordinator.  Routes exactly like
  :class:`~repro.cluster.router.ClusterService` (same ownership, same
  batch split/merge, same error bytes over the union registry) but its
  per-shard backends are :class:`~repro.api.client.ServiceClient`\\ s
  talking to spawned processes, fanned out through a
  :class:`RemoteShardExecutor`.  Reads load-balance across each shard's
  healthy, in-sync replicas and fail over on transport death; writes pin
  to the primary and fan the returned delta to the replicas; a dead
  primary is routed around by promoting an in-sync replica.
* :func:`spawn_shard_server` / :meth:`RemoteClusterService.spawn` — the
  process harness: spawn ``serve`` subprocesses with ``--port 0`` and an
  atomically-written ``--port-file``, poll the file, wire up clients.

The byte-identity contract survives the network hop: the default wire
responses of an N-shard × M-replica remote cluster are byte-identical to
a single-corpus :class:`~repro.api.SnippetService` holding the same
documents — including error bytes — because requests are forwarded
verbatim, responses round-trip losslessly through the typed protocol, and
the coordinator fabricates registry errors over the union of every
shard's documents exactly as the in-process router does.
"""

from __future__ import annotations

import http.client
import os
import subprocess
import sys
import tempfile
import threading
import time
from contextlib import nullcontext
from dataclasses import replace
from typing import Any, Mapping, Sequence

from repro.api.backend import ServingBackendBase, stats_envelope
from repro.api.client import ServiceClient
from repro.api.protocol import (
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
    parse_request,
    parse_response,
)
from repro.cluster.health import HealthMonitor
from repro.cluster.partition import (
    HashPartitioner,
    Partitioner,
    partitioner_from_manifest,
    read_cluster_manifest,
)
from repro.cluster.replication import (
    DEFAULT_OVERLOAD_THRESHOLD,
    ReplicaSet,
    ShardEndpoint,
)
from repro.cluster.router import ShardExecutor
from repro.cluster.shard import ShardDelta, ShardServer
from repro.errors import ClusterError, ExtractError, ProtocolError, UnknownDocumentError
from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import current_trace
from repro.utils.cache import DEFAULT_CACHE_SIZE

#: ops served on ``POST /v1/replicate``
REPLICATION_OPS = ("apply-update", "apply-delta")

#: transport-level failures that trigger read failover
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException, ProtocolError)


class RemoteShardExecutor(ShardExecutor):
    """Fan sub-requests over the wire, one worker per shard.

    Identical lifecycle to :class:`~repro.cluster.router.ShardExecutor`;
    the workers here block on HTTP I/O (which releases the GIL), so N
    remote shards make true wall-clock progress in parallel even though
    the coordinator is a single Python process.
    """

    name = "remote-shard"


class ShardBackend(ServingBackendBase):
    """One shard of a cluster served by its own process.

    The standard ``execute*`` surface delegates to the shard's
    :class:`~repro.api.SnippetService` (responses byte-identical to the
    single-corpus service for the documents this shard owns);
    :meth:`handle_replicate` adds the primary/replica replication ops.
    ``_sequence`` counts applied writes — the coordinator compares it
    across a replica set to detect endpoints that missed a delta.
    """

    backend_name = "shard-backend"

    def __init__(self, shard: ShardServer):
        self.shard = shard
        self._sequence = 0
        self._seq_lock = threading.Lock()

    @classmethod
    def load_dir(
        cls,
        cluster_dir: str | os.PathLike[str],
        shard_id: int,
        algorithm: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "ShardBackend":
        """Load one shard of a saved cluster directory (``serve --shard-of``)."""
        from repro.corpus import Corpus

        path = os.fspath(cluster_dir)
        manifest = read_cluster_manifest(path)
        if not isinstance(shard_id, int) or isinstance(shard_id, bool) or not (
            0 <= shard_id < manifest.shards
        ):
            raise ClusterError(
                f"--shard-of {shard_id!r} is outside this cluster's "
                f"range [0, {manifest.shards})"
            )
        corpus = Corpus.load_dir(
            os.path.join(path, manifest.shard_dirs[shard_id]),
            algorithm=algorithm,
            cache_size=cache_size,
        )
        return cls(ShardServer(shard_id, corpus=corpus))

    # ------------------------------------------------------------------ #
    # the backend surface
    # ------------------------------------------------------------------ #
    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        return self.shard.service.execute(request)

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        return self.shard.service.execute_batch(batch)

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        """Apply a lifecycle request directly (bypassing replication).

        Works exactly like the single-corpus service — and bumps the
        replication sequence, because the write happened.  In a replica
        set, direct updates belong on the primary via ``apply-update``;
        this path exists so a lone ``serve --shard-of`` process is still a
        fully functional backend.
        """
        try:
            response, _delta = self.shard.apply_update(request)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())
        self._bump_sequence()
        return response

    # ------------------------------------------------------------------ #
    # replication ops
    # ------------------------------------------------------------------ #
    def handle_replicate(self, payload: Any) -> dict[str, Any]:
        """Serve one ``POST /v1/replicate`` op.

        ``apply-update`` (primary): apply the update request, return the
        protocol response, the replication delta and the new sequence.
        An update the *library* rejects (unknown document, bad XML) is a
        structured response with a None delta — the coordinator forwards
        those bytes verbatim, so error bytes stay identical to the
        single-corpus service.  ``apply-delta`` (replica): apply a
        primary's delta through the incremental machinery; failures raise
        (the HTTP layer shapes them), which the coordinator reads as "this
        replica is now stale".
        """
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"replication payload must be a JSON object, got {type(payload).__name__}"
            )
        op = payload.get("op")
        if op == "apply-update":
            return self._apply_update_op(payload)
        if op == "apply-delta":
            return self._apply_delta_op(payload)
        raise ProtocolError(
            f"unknown replication op {op!r}; expected one of {REPLICATION_OPS}"
        )

    def _apply_update_op(self, payload: dict[str, Any]) -> dict[str, Any]:
        request = parse_request(payload.get("request"))
        if not isinstance(request, UpdateRequest):
            raise ProtocolError(
                f"replication op 'apply-update' needs an update request, "
                f"got kind {getattr(request, 'kind', None)!r}"
            )
        try:
            response, delta = self.shard.apply_update(request)
        except ExtractError as error:
            # The rejection is the primary's *answer*, not a transport
            # fault: ship it structured, with the byte-exact request echo.
            return {
                "op": "apply-update",
                "response": ErrorResponse.from_exception(
                    error, request=request.to_dict()
                ).to_dict(),
                "delta": None,
                "sequence": self.sequence,
            }
        sequence = self._bump_sequence()
        return {
            "op": "apply-update",
            # Full (meta-included) form: the coordinator re-serialises to
            # the caller's meta preference, so nothing may be dropped here.
            "response": response.to_dict(include_meta=True),
            "delta": delta.to_wire(),
            "sequence": sequence,
        }

    def _apply_delta_op(self, payload: dict[str, Any]) -> dict[str, Any]:
        delta = ShardDelta.from_wire(payload.get("delta"))
        if delta.shard != self.shard.shard_id:
            raise ClusterError(
                f"replication delta for shard {delta.shard} sent to shard "
                f"{self.shard.shard_id}; refusing to apply it"
            )
        self.shard.apply_delta(delta)
        sequence = payload.get("sequence")
        with self._seq_lock:
            if isinstance(sequence, int) and not isinstance(sequence, bool):
                self._sequence = sequence
            else:
                self._sequence += 1
            applied = self._sequence
        return {
            "op": "apply-delta",
            "applied": True,
            "document": delta.document,
            "sequence": applied,
        }

    def _bump_sequence(self) -> int:
        with self._seq_lock:
            self._sequence += 1
            return self._sequence

    @property
    def sequence(self) -> int:
        with self._seq_lock:
            return self._sequence

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def capabilities(self) -> dict[str, Any]:
        caps = super().capabilities()
        caps["shard"] = self.shard.shard_id
        caps["documents"] = len(self.shard)
        caps["replication_sequence"] = self.sequence
        return caps

    def stats(self) -> dict[str, Any]:
        stats = self.shard.service.stats()
        stats["shard"] = self.shard.shard_id
        stats["replication_sequence"] = self.sequence
        return stats

    def close(self) -> None:
        self.shard.service.close()

    def __repr__(self) -> str:
        return (
            f"<ShardBackend shard={self.shard.shard_id} "
            f"documents={len(self.shard)} seq={self.sequence}>"
        )


# ---------------------------------------------------------------------- #
# the process harness
# ---------------------------------------------------------------------- #
class ShardProcess:
    """One spawned ``serve --shard-of`` subprocess and where it listens."""

    def __init__(
        self, process: subprocess.Popen, shard_id: int, host: str, port: int
    ):
        self.process = process
        self.shard_id = shard_id
        self.host = host
        self.port = port

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """Hard-kill the process (the fault-injection hammer)."""
        if self.alive():
            self.process.kill()
        self.process.wait(timeout=10)

    def terminate(self, timeout: float = 5.0) -> None:
        """Graceful stop, escalating to kill if the process lingers."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)

    def __repr__(self) -> str:
        state = "alive" if self.alive() else f"exit={self.process.returncode}"
        return f"<ShardProcess shard={self.shard_id} {self.host}:{self.port} ({state})>"


def _python_path_env() -> dict[str, str]:
    """The child environment, with this repro package importable."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


def spawn_server(
    serve_args: Sequence[str],
    label: str = "serve",
    host: str = "127.0.0.1",
    workers: int = 2,
    timeout: float = 60.0,
    python: str | None = None,
    shard_id: int = -1,
) -> ShardProcess:
    """Spawn one ``repro.cli serve`` process; wait until it is listening.

    ``serve_args`` is the command-specific tail (``--cluster-dir``/
    ``--shard-of`` for a shard, ``--dataset``/``--max-in-flight``/… for a
    load-harness topology); the transport plumbing — ephemeral ``--port
    0``, the atomically-written ``--port-file`` this function polls,
    stderr capture for error tails — is identical for every spawned
    topology, which is why the shard spawner and the ablation runner
    share this one implementation.  ``label`` names the process in error
    messages.
    """
    handle, port_file = tempfile.mkstemp(prefix="repro-serve-", suffix=".port")
    os.close(handle)
    os.remove(port_file)
    stderr_path = port_file + ".stderr"
    command = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "serve",
        *[str(argument) for argument in serve_args],
        "--host",
        host,
        "--port",
        "0",
        "--port-file",
        port_file,
        "--workers",
        str(workers),
    ]
    with open(stderr_path, "w", encoding="utf-8") as stderr_handle:
        process = subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=stderr_handle,
            env=_python_path_env(),
        )
    try:
        deadline = monotonic() + timeout
        while True:
            if os.path.exists(port_file):
                with open(port_file, "r", encoding="utf-8") as handle:
                    port = int(handle.read().strip())
                break
            if process.poll() is not None:
                raise ClusterError(
                    f"{label} server exited with code "
                    f"{process.returncode} before publishing its port: "
                    f"{_tail(stderr_path)}"
                )
            if monotonic() > deadline:
                process.kill()
                raise ClusterError(
                    f"{label} server did not publish its port within "
                    f"{timeout:.0f}s: {_tail(stderr_path)}"
                )
            time.sleep(0.02)
    finally:
        for leftover in (port_file, stderr_path):
            if os.path.exists(leftover):
                os.remove(leftover)
    return ShardProcess(process, shard_id=shard_id, host=host, port=port)


def spawn_shard_server(
    cluster_dir: str | os.PathLike[str],
    shard_id: int,
    host: str = "127.0.0.1",
    workers: int = 2,
    timeout: float = 60.0,
    python: str | None = None,
) -> ShardProcess:
    """Spawn one ``serve --shard-of`` process; wait until it is listening.

    The child binds an ephemeral port (``--port 0``) and publishes it via
    ``--port-file``, whose write is atomic (temp + rename) — so polling
    the file can never read a partial line; a file that exists holds the
    complete port.
    """
    return spawn_server(
        ["--cluster-dir", os.fspath(cluster_dir), "--shard-of", str(shard_id)],
        label=f"shard {shard_id}",
        host=host,
        workers=workers,
        timeout=timeout,
        python=python,
        shard_id=shard_id,
    )


def _tail(path: str, limit: int = 800) -> str:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except OSError:
        return "(no stderr captured)"
    text = text.strip()
    return text[-limit:] if text else "(empty stderr)"


# ---------------------------------------------------------------------- #
# the coordinator
# ---------------------------------------------------------------------- #
class RemoteClusterService(ServingBackendBase):
    """One logical corpus served from N remote shards × M replicas.

    Drop-in for :class:`~repro.cluster.router.ClusterService` at the wire
    level; the difference is purely operational — shards live in their own
    processes, reads fail over across replicas, writes replicate through
    the primary, and a dead primary is promoted past.
    """

    backend_name = "remote-cluster"

    def __init__(
        self,
        replica_sets: Sequence[ReplicaSet],
        partitioner: Partitioner | None = None,
        documents: Mapping[str, int] | None = None,
        executor: ShardExecutor | None = None,
        processes: Sequence[ShardProcess] = (),
        overload_threshold: int = DEFAULT_OVERLOAD_THRESHOLD,
    ):
        sets = sorted(replica_sets, key=lambda replica_set: replica_set.shard_id)
        if not sets:
            raise ClusterError("a remote cluster needs at least one replica set")
        if [replica_set.shard_id for replica_set in sets] != list(range(len(sets))):
            raise ClusterError(
                "replica-set shard ids must be exactly 0..N-1 "
                f"(got {[replica_set.shard_id for replica_set in sets]})"
            )
        self.replica_sets = tuple(sets)
        self.partitioner = (
            partitioner if partitioner is not None else HashPartitioner(len(sets))
        )
        if self.partitioner.shards != len(self.replica_sets):
            raise ClusterError(
                f"partitioner covers {self.partitioner.shards} shard(s) but the "
                f"cluster has {len(self.replica_sets)}"
            )
        self.executor = (
            executor if executor is not None else RemoteShardExecutor(len(sets))
        )
        self.overload_threshold = overload_threshold
        self._documents = dict(documents or {})
        for name, shard_id in self._documents.items():
            if not 0 <= shard_id < len(self.replica_sets):
                raise ClusterError(
                    f"document {name!r} is registered to shard {shard_id}, outside "
                    f"this cluster's range [0, {len(self.replica_sets)})"
                )
        self._doc_lock = threading.Lock()
        self.processes = list(processes)
        self.monitor: HealthMonitor | None = None
        # Public so build_gateway adopts it: coordinator-side failover /
        # shed / health counters land in the same registry the gateway's
        # request metrics use, and GET /v1/metrics exports them together.
        self.registry = MetricsRegistry()
        self._failovers = self.registry.counter(
            "repro_shard_failovers_total",
            "Reads that failed over past a dead endpoint, by shard.",
            label_names=("shard",),
        )
        self._sheds = self.registry.counter(
            "repro_shard_shed_total",
            "Overloaded answers that pushed a read to another endpoint, by shard.",
            label_names=("shard",),
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def spawn(
        cls,
        cluster_dir: str | os.PathLike[str],
        replicas: int = 1,
        host: str = "127.0.0.1",
        workers: int = 2,
        request_timeout: float = 30.0,
        start_timeout: float = 60.0,
        health_interval: float | None = None,
        overload_threshold: int = DEFAULT_OVERLOAD_THRESHOLD,
        retry: "Any | None" = None,
    ) -> "RemoteClusterService":
        """Spawn a full remote cluster from a saved cluster directory.

        ``replicas`` is the endpoint count per shard (1 = primary only).
        Every replica loads the same shard snapshot, so the whole set
        starts in sync at sequence 0.  ``health_interval`` starts a
        background :class:`~repro.cluster.health.HealthMonitor`; leave it
        None for deterministic tests that drive ``check_once`` by hand.
        ``retry`` is an optional :class:`~repro.api.client.RetryPolicy`
        applied to the per-endpoint clients' idempotent reads.
        """
        if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
            raise ClusterError(f"replicas must be a positive integer, got {replicas!r}")
        from repro.index.storage import directory_documents

        path = os.fspath(cluster_dir)
        manifest = read_cluster_manifest(path)
        documents: dict[str, int] = {}
        for shard_id, subdir in enumerate(manifest.shard_dirs):
            for name in directory_documents(os.path.join(path, subdir)).values():
                documents[name] = shard_id

        processes: list[ShardProcess] = []
        replica_sets: list[ReplicaSet] = []
        try:
            for shard_id in range(manifest.shards):
                endpoints = []
                for index in range(replicas):
                    process = spawn_shard_server(
                        path,
                        shard_id,
                        host=host,
                        workers=workers,
                        timeout=start_timeout,
                    )
                    processes.append(process)
                    client = ServiceClient(
                        host, process.port, timeout=request_timeout, retry=retry
                    )
                    endpoints.append(
                        ShardEndpoint(
                            client, role="primary" if index == 0 else "replica"
                        )
                    )
                replica_sets.append(ReplicaSet(shard_id, endpoints))
        except (ExtractError, OSError):
            for process in processes:
                process.terminate()
            raise
        service = cls(
            replica_sets,
            partitioner=partitioner_from_manifest(manifest),
            documents=documents,
            processes=processes,
            overload_threshold=overload_threshold,
        )
        if health_interval is not None:
            service.start_monitor(health_interval)
        return service

    def start_monitor(self, interval: float = 0.25) -> HealthMonitor:
        """Start (or return) the background health monitor."""
        if self.monitor is None:
            self.monitor = HealthMonitor(
                self.replica_sets, interval=interval, registry=self.registry
            )
        if not self.monitor.running:
            self.monitor.start()
        return self.monitor

    # ------------------------------------------------------------------ #
    # registry & routing
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Every document registered anywhere in the cluster, sorted."""
        with self._doc_lock:
            return sorted(self._documents)

    def __contains__(self, document: str) -> bool:
        with self._doc_lock:
            return document in self._documents

    def __len__(self) -> int:
        with self._doc_lock:
            return len(self._documents)

    def _registry(self) -> dict[str, int]:
        with self._doc_lock:
            return dict(self._documents)

    def _unknown_document(self, document: str) -> ExtractError:
        # Byte-identical to Corpus.entry's error over the union registry —
        # the remote cluster is one logical corpus (same contract as the
        # in-process router).
        return UnknownDocumentError(
            f"no document named {document!r} in the corpus; "
            f"registered: {', '.join(self.names()) or '(none)'}"
        )

    def _placement_shard_id(self, document: str) -> int:
        shard_id = self.partitioner.shard_of(document)
        if not 0 <= shard_id < len(self.replica_sets):
            raise ClusterError(
                f"partitioner assigned document {document!r} to shard {shard_id}, "
                f"outside this cluster's range [0, {len(self.replica_sets)})"
            )
        return shard_id

    # ------------------------------------------------------------------ #
    # the read path (failover + load balancing)
    # ------------------------------------------------------------------ #
    def _post_shard(self, shard_id: int, payload: dict[str, Any]) -> dict[str, Any]:
        """POST one payload to a healthy endpoint of ``shard_id``.

        Endpoints are tried in the replica set's rotation order; a
        transport failure marks the endpoint down and moves on, an
        ``overloaded`` answer counts toward shedding and also moves on
        (falling back to the overloaded answer when every endpoint is
        loaded).  Raises :class:`ClusterError` when every endpoint is
        unreachable — the caller's ``execute*`` shapes that structurally.
        """
        replica_set = self.replica_sets[shard_id]
        trace = current_trace()
        overloaded_raw: dict[str, Any] | None = None
        for endpoint in replica_set.read_candidates():
            try:
                if trace is not None:
                    with trace.span(f"shard:{shard_id}", role=endpoint.role):
                        raw = endpoint.client.post(payload)
                else:
                    raw = endpoint.client.post(payload)
            # Failover, not a retry: each iteration tries a *different*
            # endpoint; the failed one is re-probed by the health monitor.
            # repro: ignore[no-unbounded-retry]
            except _TRANSPORT_ERRORS:
                replica_set.mark_down(endpoint)
                self._failovers.inc(shard=shard_id)
                continue
            if raw.get("kind") == "error" and raw.get("code") == "overloaded":
                replica_set.record_overloaded(endpoint, self.overload_threshold)
                self._sheds.inc(shard=shard_id)
                overloaded_raw = raw
                continue
            replica_set.record_served(endpoint)
            return raw
        if overloaded_raw is not None:
            return overloaded_raw
        raise ClusterError(
            f"every endpoint of shard {shard_id} is unreachable; "
            "reads cannot fail over"
        )

    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        try:
            request.validate()
            owner = self._registry().get(request.document)
            if owner is None:
                raise self._unknown_document(request.document)
            raw = self._post_shard(owner, request.to_dict())
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())
        parsed = parse_response(raw)
        if isinstance(parsed, ErrorResponse):
            # The shard received the request verbatim, so its echo (and
            # every other byte) already matches the single-corpus service.
            return parsed
        return replace(parsed, shard=owner)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        try:
            return self._run_batch(batch)
        except _RemoteShardFailure as failure:
            # A shard answered the sub-batch with a structured error;
            # re-echo the caller's full batch, as the in-process router's
            # exception path would.
            return replace(failure.response, request=batch.to_dict())
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=batch.to_dict())

    def _run_batch(self, batch: BatchRequest) -> BatchResponse:
        """Split by owning shard, fan out, merge positionally.

        The merge mirrors :meth:`ClusterService.run_batch` exactly:
        ``documents=None`` is every cluster document in name order, an
        explicit list is preserved verbatim (duplicates included), and per
        query the per-shard responses are stitched back into the global
        document order with ``seconds`` = the slowest shard.
        """
        batch.validate()
        registry = self._registry()
        if batch.documents is not None:
            names = list(batch.documents)
        else:
            names = sorted(registry)
        owners: list[int] = []
        for name in names:
            owner = registry.get(name)
            if owner is None:
                raise self._unknown_document(name)
            owners.append(owner)

        per_shard: dict[int, list[str]] = {}
        for name, owner in zip(names, owners):
            per_shard.setdefault(owner, []).append(name)

        def run_sub(item: tuple[int, list[str]]) -> tuple[int, BatchResponse]:
            shard_id, documents = item
            sub_batch = replace(batch, documents=tuple(documents))
            raw = self._post_shard(shard_id, sub_batch.to_dict())
            parsed = parse_response(raw)
            if isinstance(parsed, ErrorResponse):
                raise _RemoteShardFailure(parsed)
            return shard_id, parsed

        trace = current_trace()
        fanout_span = (
            trace.span("cluster:fanout", shards=len(per_shard))
            if trace is not None
            else nullcontext()
        )
        with fanout_span:
            shard_responses = dict(
                self.executor.map(run_sub, sorted(per_shard.items()))
            )

        merge_span = (
            trace.span("cluster:merge") if trace is not None else nullcontext()
        )
        with merge_span:
            entries: list[BatchEntry] = []
            for query_index, query in enumerate(batch.queries):
                cursors = {
                    shard_id: iter(response.entries[query_index].responses)
                    for shard_id, response in shard_responses.items()
                }
                responses = tuple(
                    replace(next(cursors[owner]), shard=owner) for owner in owners
                )
                seconds = max(
                    (
                        response.entries[query_index].seconds
                        for response in shard_responses.values()
                    ),
                    default=0.0,
                )
                entries.append(
                    BatchEntry(query=query, responses=responses, seconds=seconds)
                )
            return BatchResponse(entries=tuple(entries), documents=tuple(names))

    # ------------------------------------------------------------------ #
    # the write path (primary + delta fan-out)
    # ------------------------------------------------------------------ #
    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        try:
            request.validate()
            owner = self._registry().get(request.document)
            if owner is None:
                if request.action == "remove":
                    raise self._unknown_document(request.document)
                owner = self._placement_shard_id(request.document)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())

        replica_set = self.replica_sets[owner]
        primary = replica_set.primary
        try:
            raw = primary.client.replicate(
                {"op": "apply-update", "request": request.to_dict()}
            )
        except _TRANSPORT_ERRORS as exc:
            # Updates are never retried (the primary may already have
            # applied it); mark the primary down and promote so the *next*
            # update lands on a live primary.
            replica_set.mark_down(primary)
            replica_set.promote()
            return ErrorResponse(
                error=type(exc).__name__,
                message=(
                    f"transport failure talking to shard {owner}'s primary: {exc}"
                ),
                request=request.to_dict(),
                code="internal",
            )

        response_dict = raw.get("response")
        if not isinstance(response_dict, dict):
            # The envelope itself failed (unknown op, malformed request):
            # the body is a structured error — surface it.
            parsed_raw = parse_response(raw)
            if isinstance(parsed_raw, ErrorResponse):
                return replace(parsed_raw, request=request.to_dict())
            return ErrorResponse(
                error="ProtocolError",
                message=f"malformed replication reply from shard {owner}",
                request=request.to_dict(),
                code="internal",
            )
        parsed = parse_response(response_dict)
        if isinstance(parsed, ErrorResponse):
            # Library-level rejection: no state changed, nothing to fan out.
            return parsed

        sequence = raw.get("sequence")
        delta_wire = raw.get("delta")
        if isinstance(sequence, int) and not isinstance(sequence, bool):
            replica_set.record_commit(sequence)
            self._replicate_delta(replica_set, delta_wire, sequence)
        with self._doc_lock:
            if request.action == "remove":
                self._documents.pop(request.document, None)
            else:
                self._documents[request.document] = owner
        assert isinstance(parsed, UpdateResponse)
        return replace(parsed, shard=owner)

    def _replicate_delta(
        self, replica_set: ReplicaSet, delta_wire: Any, sequence: int
    ) -> None:
        """Fan the primary's delta to every replica; divergence = stale."""
        if delta_wire is None:
            return
        for endpoint in replica_set.replicas:
            if endpoint.stale:
                continue
            try:
                ack = endpoint.client.replicate(
                    {"op": "apply-delta", "delta": delta_wire, "sequence": sequence}
                )
            # Fan-out over distinct replicas, not a retry of one call: a
            # replica that missed the delta is stale until rebuilt.
            # repro: ignore[no-unbounded-retry]
            except _TRANSPORT_ERRORS:
                replica_set.mark_down(endpoint)
                replica_set.mark_stale(endpoint)
                continue
            if ack.get("applied") is True and ack.get("sequence") == sequence:
                replica_set.record_applied(endpoint, sequence)
            else:
                replica_set.mark_stale(endpoint)

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def capabilities(self) -> dict[str, Any]:
        caps = super().capabilities()
        caps["documents"] = len(self)
        caps["executor"] = self.executor.name
        caps["shards"] = len(self.replica_sets)
        caps["replicas"] = max(len(replica_set) for replica_set in self.replica_sets)
        caps["partitioner"] = self.partitioner.kind
        caps["remote"] = True
        return caps

    def stats(self) -> dict[str, Any]:
        return stats_envelope(
            self.backend_name,
            documents=len(self),
            shards=[
                {
                    "shard": replica_set.shard_id,
                    "endpoints": len(replica_set),
                    "healthy": sum(
                        1 for endpoint in replica_set.endpoints() if endpoint.healthy
                    ),
                    "sequence": replica_set.sequence,
                }
                for replica_set in self.replica_sets
            ],
        )

    def close(self) -> None:
        """Stop the monitor, release clients, terminate owned processes."""
        if self.monitor is not None:
            self.monitor.stop()
        self.executor.close()
        for replica_set in self.replica_sets:
            replica_set.close()
        for process in self.processes:
            process.terminate()

    def __enter__(self) -> "RemoteClusterService":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<RemoteClusterService shards={len(self.replica_sets)} "
            f"documents={len(self)} partitioner={self.partitioner.kind} "
            f"executor={self.executor.name}>"
        )


class _RemoteShardFailure(ExtractError):
    """A shard answered a fanned sub-request with a structured error."""

    def __init__(self, response: ErrorResponse):
        super().__init__(response.message)
        self.response = response
