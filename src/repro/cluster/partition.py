"""Document → shard assignment and the persisted cluster manifest.

A partitioner is a pure, deterministic function from a document name to a
shard id.  Determinism is load-bearing twice over: the router uses it to
place *new* documents (updates of registered documents always follow the
registry, so a partitioner change never strands an existing document), and
page-token follow-ups re-route through it, so a continuation token is a
per-shard cursor by construction — the same request always lands on the
same shard.

Two implementations:

* :class:`HashPartitioner` — a stable content hash (SHA-1, *not* Python's
  salted ``hash``) of the document name modulo the shard count, so the
  assignment is identical across processes, machines and restarts;
* :class:`ExplicitPartitioner` — an explicit name → shard map for
  operators that place documents by hand (hot documents on their own
  shard), with an optional default shard for unmapped names.

The **cluster manifest** (``cluster.manifest``) is the root artefact of a
persisted cluster directory: a versioned plain-text file naming the shard
snapshot subdirectories (each one a corpus directory written by
:meth:`repro.corpus.Corpus.save_dir`) and the partitioner that assigned
documents to them.  ``#version`` is a monotonically increasing update
counter — every ``cluster-update`` bumps it — and the ``#end`` sentinel
rejects truncated manifests before any shard directory is trusted, the
same discipline as the v3 index snapshots of :mod:`repro.index.storage`.

Format (UTF-8 text)::

    #extract-cluster v1
    #version <n>
    #partitioner hash|explicit
    #shards <n>
    #default <shard id>            (explicit partitioner only, optional)
    shard <subdirectory>           (one per shard, in shard-id order)
    assign <shard id> <json name>  (explicit partitioner only)
    #end
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ClusterError, StorageError

#: file name of the cluster manifest, beside the shard subdirectories
CLUSTER_MANIFEST_FILE = "cluster.manifest"
CLUSTER_MANIFEST_FORMAT_VERSION = 1
_MANIFEST_MAGIC = f"#extract-cluster v{CLUSTER_MANIFEST_FORMAT_VERSION}"
_END_SENTINEL = "#end"


def _require_shard_count(shards: int) -> int:
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ClusterError(f"shard count must be a positive integer, got {shards!r}")
    return shards


class Partitioner(abc.ABC):
    """Deterministic document-name → shard-id assignment."""

    #: discriminator persisted in the cluster manifest
    kind: str = "abstract"

    def __init__(self, shards: int):
        self.shards = _require_shard_count(shards)

    @abc.abstractmethod
    def shard_of(self, document: str) -> int:
        """The shard id (``0 <= id < shards``) owning ``document``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} shards={self.shards}>"


class HashPartitioner(Partitioner):
    """Stable-hash assignment: SHA-1 of the UTF-8 name modulo shard count.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so it
    cannot place documents consistently across a save/load cycle or across
    router and shard processes; a content hash can.
    """

    kind = "hash"

    def shard_of(self, document: str) -> int:
        digest = hashlib.sha1(document.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.shards


class ExplicitPartitioner(Partitioner):
    """Operator-supplied name → shard map, with an optional default shard.

    Unmapped names go to ``default`` when one is configured and are a
    :class:`ClusterError` otherwise — an explicit map that silently
    hash-placed stragglers would defeat its purpose.
    """

    kind = "explicit"

    def __init__(self, assignments: Mapping[str, int], shards: int, default: int | None = None):
        super().__init__(shards)
        for name, shard_id in assignments.items():
            self._check_shard_id(shard_id, f"assignment for document {name!r}")
        if default is not None:
            self._check_shard_id(default, "default shard")
        self.assignments = dict(assignments)
        self.default = default

    def _check_shard_id(self, shard_id: object, what: str) -> None:
        if not isinstance(shard_id, int) or isinstance(shard_id, bool) or not (
            0 <= shard_id < self.shards
        ):
            raise ClusterError(
                f"{what} must be a shard id in [0, {self.shards}), got {shard_id!r}"
            )

    def shard_of(self, document: str) -> int:
        shard_id = self.assignments.get(document, self.default)
        if shard_id is None:
            raise ClusterError(
                f"document {document!r} has no explicit shard assignment and the "
                "partitioner has no default shard"
            )
        return shard_id

    def __repr__(self) -> str:
        return (
            f"<ExplicitPartitioner shards={self.shards} "
            f"assignments={len(self.assignments)} default={self.default}>"
        )


#: partitioner kinds accepted in a cluster manifest
PARTITIONER_KINDS = {HashPartitioner.kind, ExplicitPartitioner.kind}


# ---------------------------------------------------------------------- #
# the cluster manifest
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClusterManifest:
    """The parsed ``cluster.manifest`` of a persisted cluster directory.

    ``version`` is the cluster's update counter (bumped by every
    ``cluster-update``), not the file-format version — that lives in the
    magic line.  ``shard_dirs`` is ordered by shard id.
    """

    version: int
    partitioner: str
    shard_dirs: tuple[str, ...]
    assignments: tuple[tuple[str, int], ...] = ()
    default_shard: int | None = None

    @property
    def shards(self) -> int:
        return len(self.shard_dirs)

    def validate(self) -> "ClusterManifest":
        if not isinstance(self.version, int) or isinstance(self.version, bool) or self.version < 1:
            raise ClusterError(
                f"cluster manifest version must be a positive integer, got {self.version!r}"
            )
        if self.partitioner not in PARTITIONER_KINDS:
            raise ClusterError(
                f"unknown partitioner kind {self.partitioner!r}; "
                f"expected one of {sorted(PARTITIONER_KINDS)}"
            )
        _require_shard_count(self.shards)
        if len(set(self.shard_dirs)) != len(self.shard_dirs):
            raise ClusterError("cluster manifest lists duplicate shard directories")
        if self.partitioner != ExplicitPartitioner.kind and (
            self.assignments or self.default_shard is not None
        ):
            raise ClusterError(
                "explicit assignments are only valid with the 'explicit' partitioner"
            )
        # Range-check assignment targets here, not first at partitioner
        # construction: a malformed manifest must be rejected while it is
        # being read (as StorageError), before any shard is loaded.
        for name, shard_id in self.assignments:
            if not isinstance(shard_id, int) or isinstance(shard_id, bool) or not (
                0 <= shard_id < self.shards
            ):
                raise ClusterError(
                    f"assignment for document {name!r} names shard {shard_id!r}, "
                    f"outside [0, {self.shards})"
                )
        if self.default_shard is not None and not (
            isinstance(self.default_shard, int)
            and not isinstance(self.default_shard, bool)
            and 0 <= self.default_shard < self.shards
        ):
            raise ClusterError(
                f"default shard {self.default_shard!r} is outside [0, {self.shards})"
            )
        return self

    def bumped(self) -> "ClusterManifest":
        """The manifest for the next cluster version (after an update)."""
        from dataclasses import replace

        return replace(self, version=self.version + 1)


def partitioner_from_manifest(manifest: ClusterManifest) -> Partitioner:
    """Reconstruct the partitioner a manifest describes."""
    manifest.validate()
    if manifest.partitioner == ExplicitPartitioner.kind:
        return ExplicitPartitioner(
            dict(manifest.assignments), manifest.shards, default=manifest.default_shard
        )
    return HashPartitioner(manifest.shards)


def manifest_for_partitioner(
    partitioner: Partitioner, shard_dirs: list[str] | tuple[str, ...], version: int = 1
) -> ClusterManifest:
    """The manifest describing ``partitioner`` over ``shard_dirs``."""
    if len(shard_dirs) != partitioner.shards:
        raise ClusterError(
            f"partitioner covers {partitioner.shards} shard(s) but "
            f"{len(shard_dirs)} shard directories were given"
        )
    assignments: tuple[tuple[str, int], ...] = ()
    default_shard: int | None = None
    if isinstance(partitioner, ExplicitPartitioner):
        assignments = tuple(sorted(partitioner.assignments.items()))
        default_shard = partitioner.default
    return ClusterManifest(
        version=version,
        partitioner=partitioner.kind,
        shard_dirs=tuple(shard_dirs),
        assignments=assignments,
        default_shard=default_shard,
    ).validate()


def write_cluster_manifest(
    directory: str | os.PathLike[str], manifest: ClusterManifest
) -> None:
    """Write ``cluster.manifest`` into ``directory`` (the commit point of a
    cluster save: shard snapshots are written first, the manifest last).

    The write is atomic (temp file + rename): the manifest is the one
    artefact the whole cluster hangs off, so a crash mid-write — e.g.
    during a routine ``cluster-update`` version bump — must leave either
    the old manifest or the new one, never a truncated file that makes an
    intact cluster unloadable.
    """
    manifest.validate()
    path = os.path.join(os.fspath(directory), CLUSTER_MANIFEST_FILE)
    lines = [
        _MANIFEST_MAGIC,
        f"#version {manifest.version}",
        f"#partitioner {manifest.partitioner}",
        f"#shards {manifest.shards}",
    ]
    if manifest.default_shard is not None:
        lines.append(f"#default {manifest.default_shard}")
    lines.extend(f"shard {subdir}" for subdir in manifest.shard_dirs)
    for name, shard_id in manifest.assignments:
        # JSON string encoding keeps arbitrary document names (spaces,
        # unicode) on one parseable line — same trick as the update journal.
        lines.append(f"assign {shard_id} {json.dumps(name)}")
    lines.append(_END_SENTINEL)
    staging = f"{path}.tmp"
    try:
        with open(staging, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        os.replace(staging, path)
    except OSError as exc:
        raise StorageError(f"failed to write cluster manifest {path}: {exc}") from exc


def read_cluster_manifest(directory: str | os.PathLike[str]) -> ClusterManifest:
    """Parse the cluster manifest written by :func:`write_cluster_manifest`.

    Raises :class:`StorageError` for a missing, truncated or malformed
    manifest — a cluster whose root artefact cannot be trusted must not
    load any shard.
    """
    path = os.path.join(os.fspath(directory), CLUSTER_MANIFEST_FILE)
    if not os.path.exists(path):
        raise StorageError(
            f"{os.fspath(directory)} does not contain a saved eXtract cluster "
            f"(missing {CLUSTER_MANIFEST_FILE})"
        )
    version: int | None = None
    partitioner: str | None = None
    declared_shards: int | None = None
    default_shard: int | None = None
    shard_dirs: list[str] = []
    assignments: list[tuple[str, int]] = []
    end_seen = False
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
            if first != _MANIFEST_MAGIC:
                raise StorageError(f"unrecognised cluster manifest header: {first!r}")
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line == _END_SENTINEL:
                    end_seen = True
                    break
                if line.startswith("#version "):
                    version = _parse_int(line, "version")
                    continue
                if line.startswith("#partitioner "):
                    partitioner = line.partition(" ")[2]
                    continue
                if line.startswith("#shards "):
                    declared_shards = _parse_int(line, "shards")
                    continue
                if line.startswith("#default "):
                    default_shard = _parse_int(line, "default")
                    continue
                if line.startswith("#"):
                    continue
                kind, _, rest = line.partition(" ")
                if kind == "shard":
                    if not rest:
                        raise StorageError(f"malformed cluster manifest shard line: {line!r}")
                    shard_dirs.append(rest)
                elif kind == "assign":
                    shard_text, _, encoded = rest.partition(" ")
                    try:
                        shard_id = int(shard_text)
                        name = json.loads(encoded)
                    except ValueError as exc:
                        raise StorageError(
                            f"malformed cluster manifest assign line: {line!r}"
                        ) from exc
                    if not isinstance(name, str):
                        raise StorageError(f"malformed cluster manifest assign line: {line!r}")
                    assignments.append((name, shard_id))
                else:
                    raise StorageError(f"unknown cluster manifest line: {line!r}")
    except OSError as exc:
        raise StorageError(f"failed to read cluster manifest {path}: {exc}") from exc
    if not end_seen:
        raise StorageError(
            f"cluster manifest {path} is truncated: missing the {_END_SENTINEL!r} sentinel"
        )
    if version is None or partitioner is None:
        raise StorageError(f"cluster manifest {path} is missing its #version/#partitioner header")
    if declared_shards is not None and declared_shards != len(shard_dirs):
        raise StorageError(
            f"cluster manifest {path} declares {declared_shards} shard(s) but lists "
            f"{len(shard_dirs)} shard directories"
        )
    manifest = ClusterManifest(
        version=version,
        partitioner=partitioner,
        shard_dirs=tuple(shard_dirs),
        assignments=tuple(assignments),
        default_shard=default_shard,
    )
    try:
        return manifest.validate()
    except ClusterError as exc:
        raise StorageError(f"invalid cluster manifest {path}: {exc}") from exc


def _parse_int(line: str, what: str) -> int:
    try:
        return int(line.split(" ", 1)[1])
    except (IndexError, ValueError) as exc:
        raise StorageError(f"malformed cluster manifest #{what} line: {line!r}") from exc
