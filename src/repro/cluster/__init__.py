"""``repro.cluster`` — one logical corpus served from N shards.

The scale-out layer of the reproduction's serving stack (the executor seam
of :mod:`repro.api` and the update journal of :mod:`repro.index.storage`
were built so this package could ship journal deltas, not documents):

* :mod:`repro.cluster.partition` — deterministic document → shard
  assignment (:class:`HashPartitioner`, :class:`ExplicitPartitioner`) and
  the versioned ``cluster.manifest`` persisted beside the shard snapshot
  directories;
* :mod:`repro.cluster.shard` — :class:`ShardServer`, one shard's corpus
  plus service, producing and applying replication deltas
  (:class:`ShardDelta`) so replicas stay byte-identical to their primary;
* :mod:`repro.cluster.router` — :class:`ClusterService`, a drop-in
  replacement for :class:`repro.api.SnippetService` that fans requests out
  across shards through a :class:`ShardExecutor` and merges the results
  deterministically;
* :mod:`repro.cluster.replication` — :class:`ReplicaSet` (per-shard
  primary + replicas, read rotation, staleness and promotion) and
  :func:`rebalance_document`, which moves a document between shards as a
  remove+add delta pair under a manifest version bump;
* :mod:`repro.cluster.health` — :class:`HealthMonitor`, the background
  prober that marks endpoints down/up and promotes past dead primaries;
* :mod:`repro.cluster.remote` — the distributed deployment layer:
  :class:`ShardBackend` (one ``serve --shard-of`` process),
  :func:`spawn_shard_server` / :class:`ShardProcess` (the process
  harness) and :class:`RemoteClusterService`, the coordinator that serves
  the same bytes as :class:`ClusterService` from spawned processes.

Quick start::

    from repro import Corpus
    from repro.api import SearchRequest
    from repro.cluster import ClusterService

    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    cluster = ClusterService.from_corpus(corpus, shards=2)
    response = cluster.run(SearchRequest(query="store texas", document="stores"))
"""

from repro.cluster.partition import (
    CLUSTER_MANIFEST_FILE,
    ClusterManifest,
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    partitioner_from_manifest,
    read_cluster_manifest,
    write_cluster_manifest,
)
from repro.cluster.health import HealthMonitor
from repro.cluster.remote import (
    RemoteClusterService,
    RemoteShardExecutor,
    ShardBackend,
    ShardProcess,
    spawn_server,
    spawn_shard_server,
)
from repro.cluster.replication import (
    RebalanceReport,
    ReplicaSet,
    ShardEndpoint,
    rebalance_document,
)
from repro.cluster.router import ClusterService, ShardExecutor
from repro.cluster.shard import ShardDelta, ShardServer

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ExplicitPartitioner",
    "ClusterManifest",
    "CLUSTER_MANIFEST_FILE",
    "read_cluster_manifest",
    "write_cluster_manifest",
    "partitioner_from_manifest",
    "ShardServer",
    "ShardDelta",
    "ClusterService",
    "ShardExecutor",
    "ShardEndpoint",
    "ReplicaSet",
    "RebalanceReport",
    "rebalance_document",
    "HealthMonitor",
    "ShardBackend",
    "ShardProcess",
    "spawn_server",
    "spawn_shard_server",
    "RemoteShardExecutor",
    "RemoteClusterService",
]
