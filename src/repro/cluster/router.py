"""The cluster router: one service surface over N shards.

:class:`ClusterService` implements the same ``run*`` / ``execute*`` /
``handle_dict`` / ``handle_json`` surface as
:class:`repro.api.SnippetService` and is **drop-in compatible at the wire
level**: for any shard count, the default (meta-free) JSON responses are
byte-identical to a single corpus holding the same documents — the
property the cluster test suite and hypothesis property test pin down.

How the fan-out works:

* **Search** — a :class:`~repro.api.SearchRequest` names one document;
  the partition layer makes ownership deterministic, so the router sends
  the request to the one shard that owns it.  Pagination follows for
  free: a ``next_page`` token re-routes to the same shard (deterministic
  ownership *is* the per-shard cursor), so tokens never point at an empty
  trailing page that a different shard would have served.
* **Batch** — documents are grouped by owning shard, each shard executes
  its sub-batch (keeping the per-shard shared-parse and shared-postings
  wins) through the :class:`ShardExecutor`, and the per-shard responses
  are merged back into the global document order — by name when the batch
  asked for "all documents", in the caller's order otherwise — so the
  merged :class:`~repro.api.BatchResponse` is exactly what a single
  corpus would have produced.
* **Update** — routed to the owning shard (registered documents) or to
  the partitioner's assignment (new documents); the shard returns the
  response plus a :class:`~repro.cluster.shard.ShardDelta` for
  replication/journalling (exposed as :attr:`ClusterService.last_delta`;
  the ``cluster-update`` CLI appends it to the owning shard's journal).

Shard provenance is volatile serving metadata: responses are stamped with
the serving shard id, emitted only inside the opt-in ``meta`` block — the
default wire form stays byte-identical to the single-corpus service.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import replace
from typing import Any, Sequence

from repro.api.executors import ConcurrentExecutor, Executor
from repro.api.protocol import (
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.api.backend import ServingBackendBase, stats_envelope
from repro.obs.trace import current_trace
from repro.cluster.partition import (
    CLUSTER_MANIFEST_FILE,
    ClusterManifest,
    HashPartitioner,
    Partitioner,
    _require_shard_count,
    manifest_for_partitioner,
    partitioner_from_manifest,
    read_cluster_manifest,
    write_cluster_manifest,
)
from repro.cluster.shard import ShardDelta, ShardServer
from repro.errors import ClusterError, ExtractError, StorageError, UnknownDocumentError
from repro.utils.cache import DEFAULT_CACHE_SIZE


class ShardExecutor(ConcurrentExecutor):
    """Thread-backed fan-out across shards.

    One worker per shard: the router submits at most one sub-request per
    shard at a time, so more workers would idle.  It satisfies the full
    :class:`~repro.api.executors.Executor` lifecycle contract (idempotent
    close, closed submissions raise, context-manager re-entry re-opens);
    a process-pool or remote-shard executor plugs into the same ABC seam
    later without touching the router.
    """

    name = "shard"

    def __init__(self, shards: int = 4):
        super().__init__(max_workers=_require_shard_count(shards))


class ClusterService(ServingBackendBase):
    """Serve one logical corpus from N shards, drop-in for SnippetService.

    >>> from repro.corpus import Corpus
    >>> from repro.api import SearchRequest
    >>> from repro.cluster import ClusterService
    >>> corpus = Corpus()
    >>> _ = corpus.add_builtin("figure5-stores", name="stores")
    >>> cluster = ClusterService.from_corpus(corpus, shards=2)
    >>> cluster.run(SearchRequest(query="store texas", document="stores")).total_results >= 2
    True
    """

    backend_name = "cluster-service"

    def __init__(
        self,
        shards: Sequence[ShardServer],
        partitioner: Partitioner | None = None,
        executor: Executor | None = None,
    ):
        shard_list = list(shards)
        if not shard_list:
            raise ClusterError("a cluster needs at least one shard")
        if sorted(shard.shard_id for shard in shard_list) != list(range(len(shard_list))):
            raise ClusterError(
                "shard ids must be exactly 0..N-1 "
                f"(got {[shard.shard_id for shard in shard_list]})"
            )
        self.shards = tuple(sorted(shard_list, key=lambda shard: shard.shard_id))
        self.partitioner = (
            partitioner if partitioner is not None else HashPartitioner(len(self.shards))
        )
        if self.partitioner.shards != len(self.shards):
            raise ClusterError(
                f"partitioner covers {self.partitioner.shards} shard(s) but the "
                f"cluster has {len(self.shards)}"
            )
        self.executor = executor if executor is not None else ShardExecutor(len(self.shards))
        #: the replication delta of the most recent update served by this
        #: router (None before the first update).  A convenience for
        #: single-threaded callers (the walkthroughs, one-shot CLI flows);
        #: anything journalling or replicating from concurrent threads must
        #: use :meth:`run_update_with_delta`, which returns the delta of
        #: *its own* operation instead of a shared last-writer-wins slot.
        self.last_delta: ShardDelta | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_corpus(
        cls,
        corpus,
        shards: int | None = None,
        partitioner: Partitioner | None = None,
        executor: Executor | None = None,
    ) -> "ClusterService":
        """Partition an existing corpus's documents into a new cluster.

        The already-built per-document systems are adopted as-is (no
        re-indexing); the source corpus must be discarded afterwards — a
        document belongs to exactly one registry at a time.
        """
        if partitioner is None:
            if shards is None:
                raise ClusterError("from_corpus needs a shard count or a partitioner")
            partitioner = HashPartitioner(shards)
        elif shards is not None and shards != partitioner.shards:
            raise ClusterError(
                f"shards={shards} disagrees with the partitioner's {partitioner.shards}"
            )
        from repro.corpus import Corpus

        shard_corpora = [
            Corpus(algorithm=corpus.algorithm, cache_size=corpus.cache_size)
            for _ in range(partitioner.shards)
        ]
        for entry in corpus.entries_snapshot():
            shard_corpora[partitioner.shard_of(entry.name)].add_system(entry.name, entry.system)
        servers = [
            ShardServer(shard_id, corpus=shard_corpus)
            for shard_id, shard_corpus in enumerate(shard_corpora)
        ]
        return cls(servers, partitioner=partitioner, executor=executor)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Every document registered anywhere in the cluster, sorted."""
        names: list[str] = []
        for shard in self.shards:
            names.extend(shard.corpus.names())
        return sorted(names)

    def __contains__(self, document: str) -> bool:
        return any(document in shard for shard in self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def _owning_shard(self, document: str) -> ShardServer | None:
        for shard in self.shards:
            if document in shard:
                return shard
        return None

    def _unknown_document(self, document: str) -> ExtractError:
        # Byte-identical to Corpus.entry's error over the union of every
        # shard's registry — the cluster is one logical corpus.
        return UnknownDocumentError(
            f"no document named {document!r} in the corpus; "
            f"registered: {', '.join(self.names()) or '(none)'}"
        )

    def _require_owner(self, document: str) -> ShardServer:
        shard = self._owning_shard(document)
        if shard is None:
            raise self._unknown_document(document)
        return shard

    def _capture_entry(self, document: str) -> tuple[ShardServer, object]:
        """The owning shard plus its captured corpus entry, atomically.

        Fan-outs pin requests to the captured entry (snapshot semantics):
        the per-shard ``Corpus.entry`` lookup is atomic, so there is no
        check-then-resolve window in which a concurrent remove could fail
        a multi-document operation part-way.
        """
        for shard in self.shards:
            try:
                return shard, shard.corpus.entry(document)
            except ExtractError:
                continue
        raise self._unknown_document(document)

    def _placement_shard(self, document: str) -> ShardServer:
        """The shard a *new* document belongs on (partitioner-assigned)."""
        shard_id = self.partitioner.shard_of(document)
        if not 0 <= shard_id < len(self.shards):
            raise ClusterError(
                f"partitioner assigned document {document!r} to shard {shard_id}, "
                f"outside this cluster's range [0, {len(self.shards)})"
            )
        return self.shards[shard_id]

    # ------------------------------------------------------------------ #
    # single requests
    # ------------------------------------------------------------------ #
    def run(self, request: SearchRequest, validate: bool = True) -> SearchResponse:
        """Execute one request on the owning shard; raises on failure."""
        if validate:
            request.validate()
        shard, entry = self._capture_entry(request.document)
        trace = current_trace()
        if trace is not None:
            with trace.span("cluster:route", shard=shard.shard_id):
                response = shard.service.run(request, validate=False, entry=entry)
        else:
            response = shard.service.run(request, validate=False, entry=entry)
        return replace(response, shard=shard.shard_id)

    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        """Like :meth:`run`, but failures become an :class:`ErrorResponse`."""
        try:
            return self.run(request)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())

    def run_many(self, requests: list[SearchRequest]) -> list[SearchResponse]:
        """Execute independent requests, fanning across shards."""
        return self.executor.map(self.run, requests)

    def execute_many(self, requests: list[SearchRequest]) -> list[SearchResponse | ErrorResponse]:
        """Per-request error isolation: one bad request never kills the rest."""
        return self.executor.map(self.execute, requests)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def run_batch(self, batch: BatchRequest, validate: bool = True) -> BatchResponse:
        """Fan a batch out across shards and merge deterministically.

        Each shard runs the sub-batch of documents it owns (one executor
        item per shard), then per query the per-shard responses are
        stitched back into the global document order.  Ordering contract:
        ``documents=None`` means every cluster document in name order
        (exactly :meth:`names`); an explicit list is preserved verbatim,
        duplicates included.
        """
        if validate:
            batch.validate()
        if batch.documents is not None:
            names = list(batch.documents)
            captured = [self._capture_entry(name) for name in names]
        else:
            # Snapshot semantics for "every registered document": one pass
            # over the per-shard registry snapshots yields the global name
            # order, each name's owner *and* its pinned entry, so a
            # concurrent remove cannot fail the batch part-way (mirrors
            # SnippetService.entries_snapshot).
            captured = sorted(
                (
                    (shard, entry)
                    for shard in self.shards
                    for entry in shard.corpus.entries_snapshot()
                ),
                key=lambda pair: pair[1].name,
            )
            names = [entry.name for _, entry in captured]
        owners = [shard for shard, _ in captured]

        # Group by owning shard, preserving each shard's slice of the
        # global order so per-shard responses can be merged positionally;
        # the captured entries travel with the sub-batch (snapshot
        # semantics all the way down to the shard service).
        per_shard: dict[int, tuple[list[str], list]] = {}
        for name, (shard, entry) in zip(names, captured):
            documents, entries = per_shard.setdefault(shard.shard_id, ([], []))
            documents.append(name)
            entries.append(entry)

        def run_sub(item: tuple[int, tuple[list[str], list]]) -> tuple[int, BatchResponse]:
            shard_id, (documents, entries) = item
            sub_batch = replace(batch, documents=tuple(documents))
            return shard_id, self.shards[shard_id].service.run_batch(
                sub_batch, validate=False, entries=entries
            )

        trace = current_trace()
        fanout_span = (
            trace.span("cluster:fanout", shards=len(per_shard))
            if trace is not None
            else nullcontext()
        )
        with fanout_span:
            shard_responses = dict(
                self.executor.map(run_sub, sorted(per_shard.items()))
            )

        merge_span = (
            trace.span("cluster:merge") if trace is not None else nullcontext()
        )
        with merge_span:
            entries: list[BatchEntry] = []
            for query_index, query in enumerate(batch.queries):
                cursors = {
                    shard_id: iter(response.entries[query_index].responses)
                    for shard_id, response in shard_responses.items()
                }
                responses = tuple(
                    replace(next(cursors[shard.shard_id]), shard=shard.shard_id)
                    for shard in owners
                )
                seconds = max(
                    (
                        response.entries[query_index].seconds
                        for response in shard_responses.values()
                    ),
                    default=0.0,
                )
                entries.append(
                    BatchEntry(query=query, responses=responses, seconds=seconds)
                )
        return BatchResponse(entries=tuple(entries), documents=tuple(names))

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        try:
            return self.run_batch(batch)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=batch.to_dict())

    # ------------------------------------------------------------------ #
    # document lifecycle
    # ------------------------------------------------------------------ #
    def run_update(self, request: UpdateRequest, validate: bool = True) -> UpdateResponse:
        """Route a lifecycle request to the owning (or assigned) shard.

        Registered documents update in place on their current shard; new
        documents go where the partitioner places them; removals must name
        a registered document.  The shard's replication delta is returned
        by :meth:`run_update_with_delta` (and mirrored on
        :attr:`last_delta` for single-threaded convenience).
        """
        return self.run_update_with_delta(request, validate=validate)[0]

    def run_update_with_delta(
        self, request: UpdateRequest, validate: bool = True
    ) -> tuple[UpdateResponse, ShardDelta]:
        """Like :meth:`run_update`, but also returns the replication delta.

        This is the journalling/replication entry point: the returned
        delta belongs to *this* call, so concurrent updaters each get
        their own (reading :attr:`last_delta` instead would race).
        """
        if validate:
            request.validate()
        shard = self._owning_shard(request.document)
        if shard is None:
            if request.action == "remove":
                self._require_owner(request.document)  # raises the corpus-shaped error
            shard = self._placement_shard(request.document)
        response, delta = shard.apply_update(request, validate=False)
        self.last_delta = delta
        return replace(response, shard=shard.shard_id), delta

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        try:
            return self.run_update(request)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_dir(
        self,
        directory: str | os.PathLike[str],
        format_version: int | None = None,
    ) -> list[str]:
        """Snapshot the whole cluster under ``directory``.

        ``format_version`` is forwarded to each shard's
        :meth:`Corpus.save_dir` (text default, or the binary v4 format
        for mmap-fast shard bootstrap); loading auto-detects per snapshot.

        Layout: one corpus directory per shard (``shard-<id>/``, each a
        full :meth:`Corpus.save_dir` snapshot) plus the versioned
        ``cluster.manifest``.  The manifest is written **last** — it is
        the commit point, so a crash mid-save leaves a directory that
        :meth:`load_dir` rejects instead of a half-cluster it trusts.
        Re-saving over an existing cluster bumps the manifest version; the
        old manifest is *parked* (``cluster.manifest.prev``) before the
        shard directories are rewritten, so the commit-point guarantee
        holds for re-saves too — a stale manifest can never describe a
        mix of old and new shard state — while a failed re-save still
        loses nothing: the previous manifest (and with it an explicit
        partitioner's operator-pinned assignment map) sits in the parked
        file for inspection or manual restore.
        """
        path = os.fspath(directory)
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, CLUSTER_MANIFEST_FILE)
        if os.path.exists(manifest_path):
            # A present-but-unreadable manifest must stop the save: guessing
            # version 1 would silently reset the monotonic update counter
            # that replicas and tooling compare against.
            version = read_cluster_manifest(path).version + 1
        else:
            version = 1
        parked = f"{manifest_path}.prev"
        if os.path.exists(manifest_path):
            try:
                os.replace(manifest_path, parked)
            except OSError as exc:
                raise StorageError(
                    f"failed to retire the previous cluster manifest {manifest_path}: {exc}"
                ) from exc
        shard_dirs = [f"shard-{shard.shard_id}" for shard in self.shards]
        for shard, subdir in zip(self.shards, shard_dirs):
            shard_path = os.path.join(path, subdir)
            if format_version is None:
                shard.corpus.save_dir(shard_path)
            else:
                shard.corpus.save_dir(shard_path, format_version=format_version)
        write_cluster_manifest(
            path, manifest_for_partitioner(self.partitioner, shard_dirs, version=version)
        )
        if os.path.exists(parked):
            os.remove(parked)
        return shard_dirs

    @classmethod
    def load_dir(
        cls,
        directory: str | os.PathLike[str],
        algorithm: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        executor: Executor | None = None,
    ) -> "ClusterService":
        """Restore a cluster written by :meth:`save_dir`.

        The load is staged like :meth:`Corpus.load_dir`: every shard
        corpus (base snapshots plus its replayed update journal) must
        validate cleanly before the service is constructed — a corrupt
        shard raises :class:`StorageError` and leaves no partial cluster.
        """
        from repro.corpus import Corpus

        path = os.fspath(directory)
        manifest = read_cluster_manifest(path)
        servers = [
            ShardServer(
                shard_id,
                corpus=Corpus.load_dir(
                    os.path.join(path, subdir), algorithm=algorithm, cache_size=cache_size
                ),
            )
            for shard_id, subdir in enumerate(manifest.shard_dirs)
        ]
        service = cls(
            servers, partitioner=partitioner_from_manifest(manifest), executor=executor
        )
        service.manifest_version = manifest.version
        return service

    # ------------------------------------------------------------------ #
    # observability & lifecycle
    # ------------------------------------------------------------------ #
    #: manifest version of the loaded cluster (None for in-memory clusters)
    manifest_version: int | None = None

    def cache_stats(self) -> dict[str, dict[str, dict[str, float]]]:
        """Per-document serving-cache counters, merged across shards.

        Same shape as :meth:`SnippetService.cache_stats` — documents are
        unique cluster-wide, so the merge is a plain union.
        """
        stats: dict[str, dict[str, dict[str, float]]] = {}
        for shard in self.shards:
            stats.update(shard.service.cache_stats())
        return stats

    def capabilities(self) -> dict[str, Any]:
        caps = super().capabilities()
        caps["documents"] = len(self)
        caps["executor"] = self.executor.name
        caps["shards"] = len(self.shards)
        caps["partitioner"] = self.partitioner.kind
        return caps

    def stats(self) -> dict[str, Any]:
        return stats_envelope(
            self.backend_name,
            documents=len(self),
            shards=[
                {"shard": shard.shard_id, "documents": len(shard)}
                for shard in self.shards
            ],
            caches=self.cache_stats(),
        )

    def shard_summary(self) -> list[dict[str, object]]:
        """One row per shard: id, document count, document names."""
        return [
            {
                "shard": shard.shard_id,
                "documents": len(shard),
                "names": ", ".join(shard.names()),
            }
            for shard in self.shards
        ]

    def close(self) -> None:
        """Release the fan-out executor and every shard service (idempotent)."""
        self.executor.close()
        for shard in self.shards:
            shard.service.close()

    def __enter__(self) -> "ClusterService":
        # Service-level context-manager re-entry re-opens the fan-out
        # executor and every shard service, mirroring the executor
        # lifecycle contract one level up.
        self.executor.__enter__()
        for shard in self.shards:
            shard.service.__enter__()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ClusterService shards={len(self.shards)} documents={len(self)} "
            f"partitioner={self.partitioner.kind} executor={self.executor.name}>"
        )
