"""Health-checked failover: the background prober of a remote cluster.

:class:`HealthMonitor` owns the liveness view of every
:class:`~repro.cluster.replication.ReplicaSet`: it polls each endpoint's
``GET /v1/health`` on a fixed interval, marks endpoints down on transport
failure and back up when a probe succeeds, and promotes a replica when it
finds a shard whose primary is dead.  The serving path feeds it too —
repeated ``overloaded`` answers shed an endpoint through
:meth:`ReplicaSet.record_overloaded` — but the monitor is the only
component that ever marks an endpoint *up* again, so flapping endpoints
converge on the prober's view.

The monitor is deliberately synchronous-at-heart: :meth:`check_once` does
one full probe sweep and is what the fault-injection tests drive
deterministically; :meth:`start` merely runs it on a daemon thread every
``interval`` seconds.
"""

from __future__ import annotations

import http.client
import threading
from typing import Sequence

from repro.cluster.replication import ReplicaSet
from repro.errors import ProtocolError
from repro.obs.metrics import MetricsRegistry


class HealthMonitor:
    """Poll every endpoint's health; route around and promote past death.

    ``interval`` is the probe period in seconds.  The monitor never raises
    out of a sweep: a probe failure *is* the signal, recorded as endpoint
    state.  Passing a :class:`~repro.obs.metrics.MetricsRegistry` exports
    ``repro_health_transitions_total{shard,direction}`` — a counter that
    ticks only on *edges* (healthy endpoint found dead, dead endpoint
    revived, primary promoted past), not on steady-state probes.
    """

    def __init__(
        self,
        replica_sets: Sequence[ReplicaSet],
        interval: float = 0.25,
        registry: MetricsRegistry | None = None,
    ):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval!r}")
        self.replica_sets = tuple(replica_sets)
        self.interval = interval
        self.probes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._transitions = (
            registry.counter(
                "repro_health_transitions_total",
                "Endpoint liveness edges seen by the health monitor, "
                "by shard and direction (down/up/promote).",
                label_names=("shard", "direction"),
            )
            if registry is not None
            else None
        )

    def _record_transition(self, shard_id: int, direction: str) -> None:
        if self._transitions is not None:
            self._transitions.inc(shard=shard_id, direction=direction)

    # ------------------------------------------------------------------ #
    # one sweep
    # ------------------------------------------------------------------ #
    def check_once(self) -> None:
        """Probe every endpoint once; promote where a primary is dead."""
        for replica_set in self.replica_sets:
            for endpoint in replica_set.endpoints():
                was_healthy = endpoint.healthy
                try:
                    endpoint.client.health()
                # Not a retry: each iteration probes a *different* endpoint,
                # and the failed one is retried by the next scheduled sweep.
                # repro: ignore[no-unbounded-retry]
                except (OSError, http.client.HTTPException, ProtocolError):
                    replica_set.mark_down(endpoint)
                    if was_healthy:
                        self._record_transition(replica_set.shard_id, "down")
                else:
                    replica_set.mark_up(endpoint)
                    if not was_healthy:
                        self._record_transition(replica_set.shard_id, "up")
            primary = replica_set.primary
            if not primary.healthy or primary.stale:
                replica_set.promote()
                self._record_transition(replica_set.shard_id, "promote")
        self.probes += 1

    # ------------------------------------------------------------------ #
    # background lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "HealthMonitor":
        """Run probe sweeps on a daemon thread until :meth:`stop`."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("the health monitor is already running")
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="repro-health", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        # Event.wait is both the pacing and the prompt shutdown path.
        while not self._stop.wait(self.interval):
            self.check_once()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the probe thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"<HealthMonitor sets={len(self.replica_sets)} "
            f"interval={self.interval} probes={self.probes} ({state})>"
        )
