"""One shard of a cluster: a corpus, its service, and replication deltas.

A :class:`ShardServer` owns the per-shard :class:`~repro.corpus.Corpus`
and :class:`~repro.api.SnippetService`; the router delegates the requests
a shard owns to it.  Its contribution beyond plain delegation is the
**replication primitive**: every document-lifecycle operation is described
as a :class:`ShardDelta` — the same shapes the on-disk update journal uses
(node-level text edits for incremental updates, full XML only for
structural changes and additions, tombstones for removals) — and
:meth:`ShardServer.apply_delta` applies such a delta through the exact
incremental machinery (:mod:`repro.index.incremental` via
:meth:`repro.corpus.Corpus.update_document`) the primary used.  A replica
that applies a primary's deltas in order therefore serves responses
byte-identical to the primary: ship journal deltas, not documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.protocol import UpdateRequest, UpdateResponse
from repro.api.service import SnippetService
from repro.corpus import Corpus
from repro.errors import ClusterError
from repro.utils.cache import DEFAULT_CACHE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus import DocumentUpdate

#: delta kinds, mirroring the update-journal record kinds
DELTA_KINDS = ("update", "replace", "add", "remove")


@dataclass(frozen=True)
class ShardDelta:
    """One replicated document-lifecycle operation on one shard.

    ``kind`` mirrors the journal record kinds of
    :mod:`repro.index.storage`:

    * ``update`` — text-only edit carried as ``(dewey label, new text)``
      pairs; replicas re-apply it through the incremental-update path;
    * ``replace`` — structural edit, carried as the full new XML;
    * ``add`` — a new document, carried as full XML;
    * ``remove`` — a tombstone.
    """

    shard: int
    document: str
    kind: str
    xml: str | None = None
    edits: tuple[tuple[str, str], ...] = ()

    def to_wire(self) -> dict:
        """The JSON-ready form shipped over ``POST /v1/replicate``.

        Keys with empty defaults are omitted so the wire form is minimal
        and deterministic; :meth:`from_wire` restores the exact dataclass.
        """
        wire: dict = {"shard": self.shard, "document": self.document, "kind": self.kind}
        if self.xml is not None:
            wire["xml"] = self.xml
        if self.edits:
            wire["edits"] = [[label, text] for label, text in self.edits]
        return wire

    @classmethod
    def from_wire(cls, wire: object) -> "ShardDelta":
        """Parse a :meth:`to_wire` dict; malformed input raises ClusterError."""
        if not isinstance(wire, dict):
            raise ClusterError(
                f"a replication delta must be a JSON object, got {type(wire).__name__}"
            )
        shard = wire.get("shard")
        document = wire.get("document")
        kind = wire.get("kind")
        if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
            raise ClusterError(f"replication delta has no valid shard id: {shard!r}")
        if not isinstance(document, str) or not document:
            raise ClusterError(f"replication delta has no valid document name: {document!r}")
        if kind not in DELTA_KINDS:
            raise ClusterError(
                f"unknown replication delta kind {kind!r}; expected one of {DELTA_KINDS}"
            )
        xml = wire.get("xml")
        if xml is not None and not isinstance(xml, str):
            raise ClusterError("replication delta 'xml' must be a string when present")
        raw_edits = wire.get("edits", [])
        if not isinstance(raw_edits, (list, tuple)):
            raise ClusterError("replication delta 'edits' must be a list of [label, text] pairs")
        edits: list[tuple[str, str]] = []
        for pair in raw_edits:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(part, str) for part in pair)
            ):
                raise ClusterError(
                    f"replication delta edit {pair!r} is not a [label, text] string pair"
                )
            edits.append((pair[0], pair[1]))
        return cls(shard=shard, document=document, kind=kind, xml=xml, edits=tuple(edits))

    def __repr__(self) -> str:
        payload = f"edits={len(self.edits)}" if self.kind == "update" else (
            "tombstone" if self.kind == "remove" else f"xml={len(self.xml or '')}B"
        )
        return f"<ShardDelta shard={self.shard} {self.kind} {self.document!r} {payload}>"


class ShardServer:
    """One shard's corpus behind the standard service facade.

    The shard's own service runs a :class:`~repro.api.executors.
    SerialExecutor` — cross-shard concurrency is the router's job (the
    :class:`~repro.cluster.router.ShardExecutor`), and nesting a thread
    pool per shard would oversubscribe the machine without changing any
    observable result.
    """

    def __init__(
        self,
        shard_id: int,
        corpus: Corpus | None = None,
        algorithm: str = "slca",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        if not isinstance(shard_id, int) or isinstance(shard_id, bool) or shard_id < 0:
            raise ClusterError(f"shard id must be a non-negative integer, got {shard_id!r}")
        self.shard_id = shard_id
        self.corpus = corpus if corpus is not None else Corpus(
            algorithm=algorithm, cache_size=cache_size
        )
        self.service = SnippetService(self.corpus)

    # ------------------------------------------------------------------ #
    # registry views
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        return self.corpus.names()

    def __contains__(self, document: str) -> bool:
        return document in self.corpus

    def __len__(self) -> int:
        return len(self.corpus)

    # ------------------------------------------------------------------ #
    # the replication primitive
    # ------------------------------------------------------------------ #
    def apply_update(
        self, request: UpdateRequest, validate: bool = True
    ) -> tuple[UpdateResponse, ShardDelta]:
        """Apply a lifecycle request to this shard; return the replication delta.

        The response is exactly what a single-corpus
        :meth:`~repro.api.SnippetService.run_update` would return; the
        delta describes the operation in journal terms so a replica (or
        the cluster-update journaller) can re-apply it without shipping
        the whole document when a node-level delta suffices.
        """
        response, report = self.service.run_update_with_report(request, validate=validate)
        return response, self._delta_for(request, report)

    def _delta_for(self, request: UpdateRequest, report: "DocumentUpdate") -> ShardDelta:
        if report.action == "removed":
            return ShardDelta(shard=self.shard_id, document=report.document, kind="remove")
        if report.action == "added":
            return ShardDelta(
                shard=self.shard_id, document=report.document, kind="add", xml=request.xml
            )
        if report.incremental:
            edits = tuple((str(edit.label), edit.new_text) for edit in report.text_edits)
            return ShardDelta(
                shard=self.shard_id, document=report.document, kind="update", edits=edits
            )
        return ShardDelta(
            shard=self.shard_id, document=report.document, kind="replace", xml=request.xml
        )

    def apply_delta(self, delta: ShardDelta) -> "DocumentUpdate":
        """Apply a primary's delta to this shard (the replica side).

        Text deltas flow through :meth:`Corpus.update_document` — the same
        incremental path the primary took — so the replica's postings,
        caches-to-invalidate decisions and served bytes match the primary
        exactly; full-XML deltas re-register through the upsert path, and
        tombstones remove.  Raises :class:`ClusterError` when the delta
        references a node or document this shard does not have — a replica
        that silently skipped a delta would drift forever.
        """
        from repro.xmltree.dewey import Dewey
        from repro.xmltree.diff import clone_tree
        from repro.xmltree.dtd import dtd_for_tree_text
        from repro.xmltree.parser import parse_xml

        if delta.kind == "remove":
            if delta.document not in self.corpus:
                raise ClusterError(
                    f"replication delta removes unknown document {delta.document!r} "
                    f"on shard {self.shard_id}"
                )
            return self.corpus.remove_document(delta.document)
        if delta.kind == "update":
            if delta.document not in self.corpus:
                raise ClusterError(
                    f"replication delta edits unknown document {delta.document!r} "
                    f"on shard {self.shard_id}"
                )
            edited = clone_tree(self.corpus.system(delta.document).index.tree)
            for label_text, new_text in delta.edits:
                label = Dewey.parse(label_text)
                if not edited.has_node(label):
                    raise ClusterError(
                        f"replication delta references missing node {label_text} "
                        f"in document {delta.document!r} on shard {self.shard_id}"
                    )
                edited.node(label).text = new_text if new_text else None
            return self.corpus.update_document(delta.document, edited)
        if delta.kind in ("replace", "add"):
            parsed = parse_xml(delta.xml or "", name=delta.document)
            dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
            return self.corpus.apply_update(delta.document, parsed.tree, dtd=dtd)
        raise ClusterError(f"unknown replication delta kind {delta.kind!r}")

    def __repr__(self) -> str:
        return f"<ShardServer id={self.shard_id} documents={len(self.corpus)}>"
