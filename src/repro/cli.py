"""Command-line interface for the eXtract reproduction.

The original demo was a web site; the closest offline equivalent is a small
CLI that drives the same pipeline.  Sub-commands:

``analyze``
    Parse an XML file (or built-in dataset), print document statistics, the
    entity/attribute/connection breakdown and the mined keys.
``search``
    Run a keyword query and print the ranked result snippets (optionally as
    an HTML page, the Figure 5 stand-in).
``ilist``
    Print the Snippet Information List of each result of a query —
    the Figure 3 view.
``datasets``
    List the built-in synthetic datasets.
``generate``
    Write a built-in dataset to an XML file (with an inferred DOCTYPE).
``experiment``
    Run one or more registered experiments (F1–F5, E1–E7, A1–A2) and print
    their tables.
``batch``
    Run every query of a query file (one per line, ``#`` comments) over one
    or more documents in a single pass and print per-query timing rows.
``corpus-save``
    Index one or more documents and snapshot the corpus to a directory that
    ``batch --corpus-dir`` can reload without re-indexing.
``corpus-update``
    Apply one document edit (update, add or remove) to a saved corpus and
    append it to the corpus's append-only update journal: text-only edits
    are recorded as node-level deltas (replayed incrementally on the next
    load), structural edits and additions as fresh snapshot
    subdirectories — the base snapshot is never rewritten.
``serve-request``
    Execute one JSON request of the typed service protocol
    (:mod:`repro.api`) against a corpus and print the JSON response — the
    offline stand-in for one round trip of the demo's web service.
``serve``
    Run the asyncio HTTP frontend (:mod:`repro.api.http`) over a corpus
    or a sharded cluster: ``POST /v1/search``, ``/v1/batch``,
    ``/v1/update`` and ``GET /v1/health``, ``/v1/stats``, with the
    gateway middleware stack (validation, optional admission control and
    per-request deadlines, metrics) in front of the backend.
``corpus-compact``
    Fold a saved corpus's append-only update journal back into fresh base
    snapshots (staged, atomic, byte-identical search results) — the cheap
    bootstrap form for new shard replicas.
``cluster-init``
    Partition documents across N shards and save the cluster (shard
    corpus directories plus a versioned ``cluster.manifest``).
``cluster-serve-request``
    Execute one JSON request against a sharded cluster through the
    fan-out router (:class:`repro.cluster.ClusterService`) — byte-
    identical responses to ``serve-request`` over the same documents.
``cluster-update``
    Apply one document edit (update, add or remove) to a saved cluster:
    the edit is routed to the owning shard, journalled in that shard's
    ``corpus.journal``, and the cluster manifest version is bumped.
``cluster-spawn``
    Spawn one ``serve --shard-of`` process per shard (× ``--replicas``)
    from a saved cluster and serve the whole cluster over HTTP through
    the remote coordinator (:class:`repro.cluster.RemoteClusterService`):
    reads load-balance across healthy replicas with failover, writes
    replicate through each shard's primary.
``cluster-rebalance``
    Move one document to a different shard of a saved cluster as a
    remove+add journal-delta pair under a manifest version bump.
``lint``
    Run the :mod:`repro.analysis` invariant linter (lock discipline,
    wire determinism, error-contract exhaustiveness, …) over the source
    tree.  Exit codes: 0 clean, 1 findings (with ``--strict`` also stale
    baseline entries), 2 usage error.  See ``docs/analysis.md``.
``trace``
    Pretty-print request traces from a running server's bounded trace
    buffer (``GET /v1/trace`` / ``/v1/trace/<request_id>``) as an
    indented span tree.  See ``docs/observability.md``.
``metrics``
    Print a running server's metrics (``GET /v1/metrics``) as a summary
    table, the versioned JSON snapshot, or the Prometheus text format.

Examples::

    python -m repro.cli analyze --dataset figure5-stores
    python -m repro.cli search --dataset figure5-stores --query "store texas" --bound 6
    python -m repro.cli search --file catalogue.xml --query "movie drama" --html out.html
    python -m repro.cli experiment F3 E4
    python -m repro.cli corpus-save --dataset retail --dataset movies --output ./corpus
    python -m repro.cli batch --queries queries.txt --corpus-dir ./corpus
    echo '{"kind": "search", "schema_version": 1, "query": "store texas",
           "document": "figure5-stores"}' |
        python -m repro.cli serve-request --dataset figure5-stores --request -
    python -m repro.cli cluster-init --dataset retail --dataset movies \\
        --shards 4 --output ./cluster
    echo '{"kind": "search", "schema_version": 1, "query": "movie drama",
           "document": "movies"}' |
        python -m repro.cli cluster-serve-request --cluster-dir ./cluster --request -
    python -m repro.cli corpus-compact --corpus-dir ./corpus
    python -m repro.cli serve --dataset figure5-stores --port 8080 \\
        --max-in-flight 16 --deadline 30
    python -m repro.cli cluster-spawn --cluster-dir ./cluster --replicas 2 --port 8080
    python -m repro.cli cluster-rebalance --cluster-dir ./cluster \\
        --document movies --to-shard 1
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.corpus import builtin_dataset_names
from repro.errors import ExtractError
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.snippet.generator import DEFAULT_SIZE_BOUND
from repro.snippet.render import write_result_page
from repro.system import ExtractSystem
from repro.xmltree.export import export_doctype
from repro.xmltree.serialize import to_xml_string


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="extract",
        description="eXtract: snippet generation for XML keyword search (VLDB 2008 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_source_arguments(sub: argparse.ArgumentParser) -> None:
        group = sub.add_mutually_exclusive_group(required=True)
        group.add_argument("--file", help="path to an XML document")
        group.add_argument(
            "--dataset",
            choices=builtin_dataset_names(),
            help="use a built-in synthetic dataset instead of a file",
        )

    analyze = subparsers.add_parser("analyze", help="analyze a document: schema, entities, keys")
    add_source_arguments(analyze)

    search = subparsers.add_parser("search", help="keyword search with snippets")
    add_source_arguments(search)
    search.add_argument("--query", required=True, help='keyword query, e.g. "store texas"')
    search.add_argument("--bound", type=int, default=DEFAULT_SIZE_BOUND, help="snippet size bound (edges)")
    search.add_argument("--limit", type=int, default=None, help="show only the top-k results")
    search.add_argument("--algorithm", choices=("slca", "elca"), default="slca")
    search.add_argument("--show-ilist", action="store_true", help="print each result's IList")
    search.add_argument("--html", metavar="PATH", help="also write an HTML result page")

    ilist = subparsers.add_parser("ilist", help="print the IList of each query result")
    add_source_arguments(ilist)
    ilist.add_argument("--query", required=True)
    ilist.add_argument("--limit", type=int, default=None)

    subparsers.add_parser("datasets", help="list built-in datasets")

    generate = subparsers.add_parser("generate", help="write a built-in dataset to an XML file")
    generate.add_argument("--dataset", choices=builtin_dataset_names(), required=True)
    generate.add_argument("--output", required=True, help="path of the XML file to write")
    generate.add_argument(
        "--with-doctype", action="store_true", help="embed a DOCTYPE inferred from the data"
    )

    experiment = subparsers.add_parser("experiment", help="run registered experiments")
    experiment.add_argument("ids", nargs="*", help="experiment ids (default: list them)")

    def add_corpus_source_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            action="append",
            default=[],
            choices=builtin_dataset_names(),
            metavar="NAME",
            help="add a built-in dataset to the corpus (repeatable)",
        )
        sub.add_argument(
            "--file",
            action="append",
            default=[],
            metavar="PATH",
            help="add an XML document to the corpus (repeatable)",
        )

    def add_observability_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--request-log", metavar="PATH",
            help="append one JSON line per served request to PATH "
                 "(request_id, kind, code, duration; see docs/observability.md)",
        )
        sub.add_argument(
            "--slow-query-ms", type=float, default=None, metavar="MS",
            help="flag requests slower than MS milliseconds; without "
                 "--request-log, only the slow ones are logged (to stderr)",
        )

    batch = subparsers.add_parser(
        "batch", help="run a file of queries over a corpus in one pass"
    )
    batch.add_argument(
        "--queries", required=True, metavar="PATH",
        help="query file: one keyword query per line, '#' starts a comment",
    )
    add_corpus_source_arguments(batch)
    batch.add_argument(
        "--corpus-dir", metavar="DIR",
        help="load a corpus saved by corpus-save instead of (re-)indexing sources",
    )
    batch.add_argument("--bound", type=int, default=DEFAULT_SIZE_BOUND, help="snippet size bound (edges)")
    batch.add_argument("--limit", type=int, default=None, help="top-k results per document")
    batch.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    batch.add_argument("--no-cache", action="store_true", help="disable the query-result cache")
    batch.add_argument(
        "--repeat", type=int, default=1,
        help="run the batch N times (cache warm-up demonstration; timings per round)",
    )
    batch.add_argument("--show-snippets", action="store_true", help="print each query's snippets")

    corpus_save = subparsers.add_parser(
        "corpus-save", help="index documents and snapshot the corpus to a directory"
    )
    add_corpus_source_arguments(corpus_save)
    corpus_save.add_argument("--output", required=True, metavar="DIR", help="snapshot directory")
    corpus_save.add_argument("--algorithm", choices=("slca", "elca"), default="slca")
    corpus_save.add_argument(
        "--format", choices=("v3", "v4"), default="v3", dest="snapshot_format",
        help="snapshot format: v3 diff-friendly text (default) or v4 mmap-able binary",
    )

    corpus_update = subparsers.add_parser(
        "corpus-update",
        help="apply a document update/add/remove to a saved corpus (journalled)",
    )
    corpus_update.add_argument(
        "--corpus-dir", required=True, metavar="DIR",
        help="corpus directory written by corpus-save",
    )
    update_action = corpus_update.add_mutually_exclusive_group(required=True)
    update_action.add_argument(
        "--file", metavar="PATH",
        help="XML file holding the new version of the document (update or add)",
    )
    update_action.add_argument(
        "--remove", metavar="NAME", help="unregister the named document"
    )
    corpus_update.add_argument(
        "--name", metavar="NAME",
        help="document name for --file (default: the file's base name)",
    )

    serve_request = subparsers.add_parser(
        "serve-request",
        help="execute one JSON request of the typed service protocol",
    )
    add_corpus_source_arguments(serve_request)
    serve_request.add_argument(
        "--corpus-dir", metavar="DIR",
        help="load a corpus saved by corpus-save instead of (re-)indexing sources",
    )
    serve_request.add_argument(
        "--request", required=True, metavar="PATH",
        help="file holding the JSON request object ('-' reads standard input)",
    )
    serve_request.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    serve_request.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="thread-pool size for batch requests (1 = serial execution)",
    )
    serve_request.add_argument(
        "--pretty", action="store_true", help="indent the JSON response for humans"
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a corpus or cluster over HTTP (gateway + asyncio frontend)",
    )
    add_corpus_source_arguments(serve)
    serve.add_argument(
        "--corpus-dir", metavar="DIR",
        help="load a corpus saved by corpus-save instead of (re-)indexing sources",
    )
    serve.add_argument(
        "--cluster-dir", metavar="DIR",
        help="serve a sharded cluster written by cluster-init (fan-out router backend)",
    )
    serve.add_argument(
        "--shard-of", type=int, default=None, metavar="SHARD",
        help="with --cluster-dir: serve only this shard's corpus (a remote-cluster "
             "shard process; also answers POST /v1/replicate)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (default: 8080; 0 binds an ephemeral port)",
    )
    serve.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    serve.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="LRU entries per document for the query/snippet caches "
             "(0 disables serving caches; default 256)",
    )
    serve.add_argument(
        "--workers", type=int, default=8, metavar="N",
        help="HTTP worker threads executing backend calls (default: 8)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="admission control: reject (503 overloaded) beyond N concurrent requests",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; a miss answers 504 deadline_exceeded",
    )
    serve.add_argument(
        "--no-validate", action="store_true",
        help="skip the request-validation middleware (backend still validates)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="stop after serving N requests (scripted smoke runs)",
    )
    serve.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port to PATH once listening (for scripts using --port 0)",
    )
    add_observability_arguments(serve)

    def add_load_profile_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="traffic RNG seed (default: 0)")
        sub.add_argument(
            "--requests", type=int, default=100, metavar="N",
            help="number of requests to plan (default: 100)",
        )
        sub.add_argument(
            "--concurrency", type=int, default=4, metavar="N",
            help="worker threads, one keep-alive connection each (default: 4)",
        )
        sub.add_argument(
            "--duration", type=float, default=None, metavar="SECONDS",
            help="stop firing after SECONDS even if requests remain",
        )
        sub.add_argument(
            "--mix", default="search=0.8,batch=0.15,update=0.05", metavar="KIND=W,...",
            help="request mix weights (default: search=0.8,batch=0.15,update=0.05)",
        )
        sub.add_argument(
            "--zipf", type=float, default=1.1, metavar="S",
            help="Zipf skew of document/query popularity (default: 1.1)",
        )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="fire a seeded mixed workload at a serving endpoint and measure it",
    )
    add_corpus_source_arguments(loadgen)
    loadgen.add_argument(
        "--corpus-dir", metavar="DIR",
        help="plan over a corpus saved by corpus-save (must mirror the server's)",
    )
    loadgen.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    loadgen.add_argument("--port", type=int, default=8080, help="server port (default: 8080)")
    loadgen.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    add_load_profile_arguments(loadgen)
    loadgen.add_argument(
        "--arrival", choices=("closed", "poisson", "fixed"), default="closed",
        help="arrival process: closed loop (default) or open-loop poisson/fixed",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="aggregate target arrival rate (required for poisson/fixed)",
    )
    loadgen.add_argument(
        "--plan-only", action="store_true",
        help="print the planned request sequence as JSON without firing it",
    )
    loadgen.add_argument("--json", action="store_true", help="print the report as JSON")
    loadgen.add_argument(
        "--report", metavar="PATH",
        help="also write the report as a BENCH_loadgen.json-shaped file to PATH",
    )

    loadgen_ablate = subparsers.add_parser(
        "loadgen-ablate",
        help="measure serving flags one flip at a time, each against a fresh server",
    )
    add_corpus_source_arguments(loadgen_ablate)
    loadgen_ablate.add_argument(
        "--corpus-dir", metavar="DIR",
        help="serve (and plan over) a corpus saved by corpus-save",
    )
    loadgen_ablate.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    add_load_profile_arguments(loadgen_ablate)
    loadgen_ablate.add_argument(
        "--smoke", action="store_true",
        help="the CI matrix: caches on/off × two admission limits (4 configurations)",
    )
    loadgen_ablate.add_argument(
        "--server-workers", type=int, default=4, metavar="N",
        help="HTTP worker threads for each spawned server (default: 4)",
    )
    loadgen_ablate.add_argument("--json", action="store_true", help="print rows as JSON")

    corpus_compact = subparsers.add_parser(
        "corpus-compact",
        help="fold a saved corpus's update journal back into fresh base snapshots",
    )
    corpus_compact.add_argument(
        "--corpus-dir", required=True, metavar="DIR",
        help="corpus directory written by corpus-save (a cluster shard directory works too)",
    )

    cluster_init = subparsers.add_parser(
        "cluster-init", help="partition documents across N shards and save the cluster"
    )
    add_corpus_source_arguments(cluster_init)
    cluster_init.add_argument("--output", required=True, metavar="DIR", help="cluster directory")
    cluster_init.add_argument(
        "--shards", type=int, default=2, metavar="N", help="number of shards (default: 2)"
    )
    cluster_init.add_argument("--algorithm", choices=("slca", "elca"), default="slca")
    cluster_init.add_argument(
        "--assign", action="append", default=[], metavar="NAME=SHARD",
        help="pin a document to a shard (repeatable; implies the explicit partitioner)",
    )
    cluster_init.add_argument(
        "--default-shard", type=int, default=None, metavar="N",
        help="shard for documents without an --assign pin (explicit partitioner only)",
    )

    cluster_serve = subparsers.add_parser(
        "cluster-serve-request",
        help="execute one JSON request against a sharded cluster (fan-out router)",
    )
    cluster_serve.add_argument(
        "--cluster-dir", required=True, metavar="DIR",
        help="cluster directory written by cluster-init",
    )
    cluster_serve.add_argument(
        "--request", required=True, metavar="PATH",
        help="file holding the JSON request object ('-' reads standard input)",
    )
    cluster_serve.add_argument("--algorithm", choices=("slca", "elca"), default=None)
    cluster_serve.add_argument(
        "--pretty", action="store_true", help="indent the JSON response for humans"
    )

    cluster_update = subparsers.add_parser(
        "cluster-update",
        help="apply a document update/add/remove to a saved cluster (journalled per shard)",
    )
    cluster_update.add_argument(
        "--cluster-dir", required=True, metavar="DIR",
        help="cluster directory written by cluster-init",
    )
    cluster_action = cluster_update.add_mutually_exclusive_group(required=True)
    cluster_action.add_argument(
        "--file", metavar="PATH",
        help="XML file holding the new version of the document (update or add)",
    )
    cluster_action.add_argument(
        "--remove", metavar="NAME", help="unregister the named document"
    )
    cluster_update.add_argument(
        "--name", metavar="NAME",
        help="document name for --file (default: the file's base name)",
    )

    cluster_spawn = subparsers.add_parser(
        "cluster-spawn",
        help="spawn per-shard serve processes and serve the cluster over HTTP "
             "(remote coordinator with replicas, failover and replication)",
    )
    cluster_spawn.add_argument(
        "--cluster-dir", required=True, metavar="DIR",
        help="cluster directory written by cluster-init",
    )
    cluster_spawn.add_argument(
        "--replicas", type=int, default=1, metavar="M",
        help="endpoints per shard (1 = primary only; default: 1)",
    )
    cluster_spawn.add_argument("--host", default="127.0.0.1", help="coordinator bind address")
    cluster_spawn.add_argument(
        "--port", type=int, default=8080,
        help="coordinator TCP port (default: 8080; 0 binds an ephemeral port)",
    )
    cluster_spawn.add_argument(
        "--workers", type=int, default=8, metavar="N",
        help="coordinator HTTP worker threads (default: 8)",
    )
    cluster_spawn.add_argument(
        "--shard-workers", type=int, default=2, metavar="N",
        help="HTTP worker threads per spawned shard process (default: 2)",
    )
    cluster_spawn.add_argument(
        "--health-interval", type=float, default=0.25, metavar="SECONDS",
        help="health-probe period for the failover monitor (default: 0.25)",
    )
    cluster_spawn.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="admission control: reject (503 overloaded) beyond N concurrent requests",
    )
    cluster_spawn.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; a miss answers 504 deadline_exceeded",
    )
    cluster_spawn.add_argument(
        "--no-validate", action="store_true",
        help="skip the request-validation middleware (shards still validate)",
    )
    cluster_spawn.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="stop after serving N requests (scripted smoke runs)",
    )
    cluster_spawn.add_argument(
        "--port-file", metavar="PATH",
        help="write the coordinator's bound port to PATH once listening",
    )
    add_observability_arguments(cluster_spawn)

    cluster_rebalance = subparsers.add_parser(
        "cluster-rebalance",
        help="move a document to a different shard of a saved cluster "
             "(remove+add delta pair, manifest version bump)",
    )
    cluster_rebalance.add_argument(
        "--cluster-dir", required=True, metavar="DIR",
        help="cluster directory written by cluster-init",
    )
    cluster_rebalance.add_argument(
        "--document", required=True, metavar="NAME", help="document to move"
    )
    cluster_rebalance.add_argument(
        "--to-shard", required=True, type=int, metavar="SHARD",
        help="destination shard id",
    )

    lint = subparsers.add_parser(
        "lint", help="run the repro.analysis invariant linter over the source tree"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyse (default: the repro source tree)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON report instead of text",
    )
    lint.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule id (repeatable; default: every registered rule)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file of grandfathered findings "
             "(default: ./analysis-baseline.json when it exists)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover every current finding, then exit 0",
    )

    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rule ids and their invariants, then exit 0",
    )

    trace = subparsers.add_parser(
        "trace",
        help="pretty-print request traces from a running server (GET /v1/trace)",
    )
    trace.add_argument("request_id", nargs="?", default=None, metavar="REQUEST_ID",
                       help="print one trace by id (default: the newest traces)")
    trace.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    trace.add_argument("--port", type=int, default=8080, help="server port (default: 8080)")
    trace.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw JSON trace payload instead of the span tree",
    )

    metrics = subparsers.add_parser(
        "metrics",
        help="print a running server's metrics (GET /v1/metrics)",
    )
    metrics.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    metrics.add_argument("--port", type=int, default=8080, help="server port (default: 8080)")
    metrics.add_argument(
        "--format", choices=("summary", "json", "prometheus"), default="summary",
        help="summary: human-readable series table; json: the versioned "
             "snapshot; prometheus: the text exposition format",
    )

    return parser


def _load_system(args: argparse.Namespace, algorithm: str = "slca") -> ExtractSystem:
    if getattr(args, "file", None):
        return ExtractSystem.from_file(args.file, algorithm=algorithm)
    from repro.corpus import Corpus

    corpus = Corpus(algorithm=algorithm)
    entry = corpus.add_builtin(args.dataset)
    return entry.system


# ---------------------------------------------------------------------- #
# sub-command implementations
# ---------------------------------------------------------------------- #
def _command_analyze(args: argparse.Namespace, out) -> int:
    system = _load_system(args)
    stats = system.document_stats()
    print(stats.format_summary(), file=out)
    analyzer = system.analyzer
    counts = analyzer.summary()
    print(
        f"schema nodes    : {counts['entity']} entity, {counts['attribute']} attribute, "
        f"{counts['connection']} connection",
        file=out,
    )
    print("entity types:", file=out)
    for entity in analyzer.entity_types.values():
        key_name = entity.key.attribute_tag if entity.key else "(no key)"
        print(
            f"  {entity.tag:<12s} instances={entity.instance_count:<6d} key={key_name:<10s} "
            f"attributes={', '.join(entity.attribute_tags)}",
            file=out,
        )
    return 0


def _command_search(args: argparse.Namespace, out) -> int:
    system = _load_system(args, algorithm=args.algorithm)
    outcome = system.query(args.query, size_bound=args.bound, limit=args.limit)
    print(outcome.render_text(show_ilist=args.show_ilist), file=out)
    if args.html:
        write_result_page(outcome.snippets, args.html)
        print(f"\nwrote HTML result page to {args.html}", file=out)
    return 0


def _command_ilist(args: argparse.Namespace, out) -> int:
    system = _load_system(args)
    outcome = system.query(args.query, limit=args.limit)
    for generated in outcome.snippets:
        print(f"Result #{generated.result.result_id}:", file=out)
        for position, item in enumerate(generated.ilist, start=1):
            score = f"  (DS {item.score:.2f})" if item.kind.value == "feature" else ""
            print(f"  {position:2d}. [{item.kind.value:<7s}] {item.text}{score}", file=out)
    if len(outcome.snippets) == 0:
        print("(no results)", file=out)
    return 0


def _command_datasets(args: argparse.Namespace, out) -> int:
    for name in builtin_dataset_names():
        print(name, file=out)
    return 0


def _command_generate(args: argparse.Namespace, out) -> int:
    from repro.corpus import Corpus
    from repro.xmltree.schema import infer_schema

    corpus = Corpus()
    entry = corpus.add_builtin(args.dataset)
    tree = entry.system.index.tree
    body = to_xml_string(tree, include_declaration=True)
    if args.with_doctype:
        schema = infer_schema(tree)
        declaration, _, rest = body.partition("\n")
        body = declaration + "\n" + export_doctype(schema, tree.root.tag) + rest
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(body)
    print(f"wrote {tree.size_nodes} nodes to {args.output}", file=out)
    return 0


def _command_experiment(args: argparse.Namespace, out) -> int:
    if not args.ids:
        print("registered experiments:", file=out)
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"  {experiment_id:<4s} {spec.description}", file=out)
        return 0
    unknown = [experiment_id for experiment_id in args.ids if experiment_id not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=out)
        return 2
    for experiment_id in args.ids:
        table = run_experiment(experiment_id)
        print(table.format_text(), file=out)
        print(file=out)
    return 0


def _build_corpus(args: argparse.Namespace, algorithm: str = "slca"):
    """Assemble a Corpus from --dataset/--file flags (or --corpus-dir)."""
    from repro.corpus import Corpus
    from repro.utils.cache import DEFAULT_CACHE_SIZE

    cache_size = getattr(args, "cache_size", None)
    if cache_size is None:
        cache_size = DEFAULT_CACHE_SIZE
    elif cache_size < 0:
        raise ExtractError(f"--cache-size must be >= 0, got {cache_size}")
    if getattr(args, "corpus_dir", None):
        if args.dataset or args.file:
            raise ExtractError(
                "--corpus-dir cannot be combined with --dataset/--file: the snapshot "
                "is authoritative (re-run corpus-save to change its contents)"
            )
        return Corpus.load_dir(
            args.corpus_dir,
            algorithm=getattr(args, "algorithm", None),
            cache_size=cache_size,
        )
    corpus = Corpus(algorithm=algorithm, cache_size=cache_size)
    for dataset in args.dataset:
        if dataset not in corpus:
            corpus.add_builtin(dataset)
    for path in args.file:
        corpus.add_file(path)
    if len(corpus) == 0:
        raise ExtractError("no documents given: pass --dataset/--file (or --corpus-dir)")
    return corpus


def _read_query_file(path: str) -> list[str]:
    """Queries from a text file: one per line, blank lines and '#' comments
    (inline or full-line) skipped."""
    queries: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.split("#", 1)[0].strip()
            if text:
                queries.append(text)
    return queries


def _command_batch(args: argparse.Namespace, out) -> int:
    from repro.search.query import KeywordQuery

    corpus = _build_corpus(args, algorithm=args.algorithm or "slca")
    lines = _read_query_file(args.queries)
    if not lines:
        print(f"error: no queries found in {args.queries}", file=out)
        return 2
    queries: list[KeywordQuery] = []
    for line in lines:
        try:
            queries.append(KeywordQuery.parse(line))
        except ExtractError as error:
            print(f"skipping unparsable query {line!r}: {error}", file=out)
    if not queries:
        print("error: no usable query remained after parsing", file=out)
        return 2

    repeat = max(1, args.repeat)
    report = None
    for round_number in range(1, repeat + 1):
        report = corpus.search_batch(
            queries, size_bound=args.bound, limit=args.limit, use_cache=not args.no_cache
        )
        if repeat > 1:
            print(f"round {round_number}/{repeat}  ({report.total_seconds:.6f}s)", file=out)
        print(report.format_table(), file=out)
        print(file=out)
    print(f"documents: {', '.join(report.document_names)}", file=out)
    if args.show_snippets:
        for entry in report:
            for document_name, outcome in entry.outcomes.items():
                print(f"\n=== {document_name} :: {entry.raw} ===", file=out)
                print(outcome.render_text(), file=out)
    return 0


def _command_serve_request(args: argparse.Namespace, out) -> int:
    import json

    from repro.api.executors import ConcurrentExecutor, SerialExecutor
    from repro.api.protocol import parse_request
    from repro.api.service import SnippetService
    from repro.corpus import Corpus

    if args.request == "-":
        request_text = sys.stdin.read()
    else:
        with open(args.request, "r", encoding="utf-8") as handle:
            request_text = handle.read()

    def emit(response: dict) -> int:
        # An error response is still printed (it IS the protocol answer),
        # but the exit code tells shell callers the request failed.
        print(
            json.dumps(response, indent=2 if args.pretty else None, sort_keys=True),
            file=out,
        )
        return 1 if response.get("kind") == "error" else 0

    # Parse and structurally validate the request before building the
    # corpus: a malformed request must fail fast, not after paying for
    # dataset generation + indexing.  Only document-existence errors need
    # the corpus; error shaping stays in the service (an empty service is
    # enough to produce the error response).
    try:
        payload = json.loads(request_text)
        request = parse_request(payload)
    except (json.JSONDecodeError, ExtractError):
        return emit(SnippetService(Corpus()).handle_text(request_text))

    from repro.api.protocol import ErrorResponse, UpdateRequest

    if isinstance(request, UpdateRequest):
        # serve-request builds a throwaway corpus per invocation: an update
        # applied here would vanish on exit while the response claims
        # success.  Lifecycle edits belong to the journalled surface.
        return emit(
            ErrorResponse(
                error="ProtocolError",
                message=(
                    "serve-request is stateless and cannot apply document "
                    "updates; use 'corpus-update --corpus-dir ...' so the "
                    "edit is journalled and survives reloads"
                ),
                request=payload,
            ).to_dict()
        )

    corpus = _build_corpus(args, algorithm=args.algorithm or "slca")
    executor = ConcurrentExecutor(max_workers=args.workers) if args.workers > 1 else SerialExecutor()
    with SnippetService(corpus, executor=executor) as service:
        return emit(service.handle_dict(payload, request=request))


def _apply_journalled_update(
    directory: str,
    corpus,
    file: str | None,
    remove: str | None,
    name: str | None,
    out,
) -> int:
    """Apply one lifecycle operation to a loaded corpus directory, journal it.

    Shared by ``corpus-update`` (directory = the corpus dir) and
    ``cluster-update`` (directory = the owning shard's dir): same routing
    of incremental edits to journal deltas, structural edits and additions
    to fresh snapshot subdirectories, removals to tombstones.
    """
    from repro.corpus import _subdir_for
    from repro.index.storage import (
        JournalRecord,
        append_journal_record,
        directory_documents,
        save_index,
    )
    from repro.xmltree.parser import parse_xml_file

    mapping = directory_documents(directory)  # subdir -> name
    subdir_of = {doc_name: subdir for subdir, doc_name in mapping.items()}

    def fresh_subdir(name: str) -> str:
        used = {subdir.lower() for subdir in mapping}
        used.update(entry.lower() for entry in os.listdir(directory))
        return _subdir_for(name, used)

    if remove:
        name = remove
        report = corpus.remove_document(name)
        append_journal_record(directory, JournalRecord(kind="remove", subdir=subdir_of[name]))
        print(
            f"removed {name!r} from {directory} "
            f"({report.cache_entries_invalidated} cache entries invalidated, journalled)",
            file=out,
        )
        return 0

    from repro.xmltree.dtd import dtd_for_tree_text

    name = name or os.path.splitext(os.path.basename(file))[0]
    parsed = parse_xml_file(file)
    # The DTD only matters on the *add* path (updates keep the registered
    # document's original DTD context) — same contract as the service's
    # UpdateRequest handling, and same ingestion semantics as corpus-save.
    dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
    report = corpus.apply_update(name, parsed.tree, dtd=dtd)
    if report.action == "added":
        snapshot = fresh_subdir(name)
        save_index(corpus.system(name).index, os.path.join(directory, snapshot))
        append_journal_record(
            directory, JournalRecord(kind="add", subdir=snapshot, name=name)
        )
        print(
            f"added {name!r} ({report.nodes} nodes); snapshot in {snapshot}/",
            file=out,
        )
    elif report.changed_nodes == 0:
        print(f"{name!r} is unchanged; nothing journalled", file=out)
    elif report.incremental:
        edits = tuple((str(edit.label), edit.new_text) for edit in report.text_edits)
        append_journal_record(
            directory,
            JournalRecord(kind="update", subdir=subdir_of[name], edits=edits),
        )
        print(
            f"updated {name!r} incrementally: {report.changed_nodes} node(s), "
            f"{report.changed_terms} term(s); cache kept={report.cache_entries_kept} "
            f"invalidated={report.cache_entries_invalidated} (journalled as deltas)",
            file=out,
        )
    else:
        snapshot = fresh_subdir(name)
        save_index(corpus.system(name).index, os.path.join(directory, snapshot))
        append_journal_record(
            directory,
            JournalRecord(kind="replace", subdir=subdir_of[name], snapshot=snapshot),
        )
        print(
            f"updated {name!r} with a full re-index "
            f"({report.structural_reason}); new snapshot in {snapshot}/",
            file=out,
        )
    return 0


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (temp + rename).

    Spawners poll the path and read it the moment it exists; a plain
    ``open(...).write`` can expose an empty or partial file between
    create and flush, so the content lands under a temp name first and
    the rename makes it visible complete or not at all.
    """
    staging = f"{path}.tmp"
    with open(staging, "w", encoding="utf-8") as handle:
        handle.write(f"{port}\n")
    os.replace(staging, path)


def _build_request_logger(args: argparse.Namespace):
    """--request-log / --slow-query-ms → (logger | None, closer).

    ``--request-log PATH`` logs every request to PATH (with the slow flag
    when a threshold is set); ``--slow-query-ms`` alone is the classic
    slow-query log — only the offenders, to stderr.
    """
    from repro.obs import RequestLogger

    if args.request_log:
        handle = open(args.request_log, "a", encoding="utf-8")
        return RequestLogger(handle, slow_query_ms=args.slow_query_ms), handle.close
    if args.slow_query_ms is not None:
        logger = RequestLogger(
            sys.stderr, slow_query_ms=args.slow_query_ms, only_slow=True
        )
        return logger, lambda: None
    return None, lambda: None


def _command_serve(args: argparse.Namespace, out) -> int:
    """Serve a corpus, cluster, or single cluster shard over HTTP."""
    from repro.api.executors import ConcurrentExecutor
    from repro.api.gateway import build_gateway
    from repro.api.http import HttpServer

    if args.cache_size is not None and args.cache_size < 0:
        raise ExtractError(f"--cache-size must be >= 0, got {args.cache_size}")
    replicate_backend = None
    if args.cluster_dir:
        if args.dataset or args.file or args.corpus_dir:
            raise ExtractError(
                "--cluster-dir cannot be combined with --dataset/--file/--corpus-dir: "
                "the cluster manifest is authoritative"
            )
        from repro.utils.cache import DEFAULT_CACHE_SIZE

        cache_size = args.cache_size if args.cache_size is not None else DEFAULT_CACHE_SIZE
        if args.shard_of is not None:
            from repro.cluster import ShardBackend

            backend = ShardBackend.load_dir(
                args.cluster_dir,
                args.shard_of,
                algorithm=args.algorithm,
                cache_size=cache_size,
            )
            # Replication bypasses the gateway stack: delta application
            # must not compete with reads for admission-control slots.
            replicate_backend = backend
        else:
            from repro.cluster import ClusterService

            backend = ClusterService.load_dir(
                args.cluster_dir, algorithm=args.algorithm, cache_size=cache_size
            )
    elif args.shard_of is not None:
        raise ExtractError("--shard-of requires --cluster-dir (a saved cluster)")
    else:
        from repro.api.service import SnippetService

        corpus = _build_corpus(args, algorithm=args.algorithm or "slca")
        backend = SnippetService(corpus)

    logger, close_log = _build_request_logger(args)
    stack = build_gateway(
        backend,
        validate=not args.no_validate,
        max_in_flight=args.max_in_flight,
        deadline=args.deadline,
        log=logger,
        process_name=(
            f"shard-{args.shard_of}" if args.shard_of is not None else "local"
        ),
    )
    http_executor = ConcurrentExecutor(max_workers=args.workers)
    server = HttpServer(
        stack,
        host=args.host,
        port=args.port,
        executor=http_executor,
        max_requests=args.max_requests,
        replicate_backend=replicate_backend,
    )
    server.start()
    try:
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        print(
            f"serving {backend!r}\n"
            f"  http://{server.host}:{server.port}/v1/search (POST; also /v1/batch, /v1/update)\n"
            f"  http://{server.host}:{server.port}/v1/health (GET; also /v1/stats, "
            f"/v1/metrics, /v1/trace)",
            file=out,
        )
        try:
            server.join()  # returns when --max-requests is spent
        except KeyboardInterrupt:
            print("shutting down", file=out)
    finally:
        server.stop()
        http_executor.close()
        stack.close()
        close_log()
    print(f"served {server.requests_served} request(s)", file=out)
    return 0


def _load_profile_from_args(args: argparse.Namespace):
    """--seed/--requests/--mix/… → a validated LoadProfile."""
    from repro.eval.loadgen import LoadProfile, parse_mix

    weights = parse_mix(args.mix)
    return LoadProfile(
        seed=args.seed,
        requests=args.requests,
        duration_seconds=args.duration,
        concurrency=args.concurrency,
        arrival=getattr(args, "arrival", "closed"),
        rate_rps=getattr(args, "rate", None),
        search_weight=weights["search"],
        batch_weight=weights["batch"],
        update_weight=weights["update"],
        zipf_skew=args.zipf,
    ).validate()


def _format_load_report(report) -> str:
    def _ms(value):
        return f"{value * 1000:.2f}ms" if value is not None else "-"

    def _pct(value):
        return f"{value * 100:.1f}%" if value is not None else "-"

    latency = report.latency
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.by_kind.items())
    )
    return (
        f"sent {report.requests_sent} requests in {report.duration_seconds:.3f}s "
        f"({report.throughput_rps:.1f} req/s; {kinds})\n"
        f"latency p50={_ms(latency.get('p50'))} p95={_ms(latency.get('p95'))} "
        f"p99={_ms(latency.get('p99'))}\n"
        f"errors={report.errors} ({_pct(report.error_rate)})  "
        f"shed={report.shed} ({_pct(report.shed_rate)})  "
        f"cache hit rate={_pct(report.cache_hit_rate)}"
    )


def _command_loadgen(args: argparse.Namespace, out) -> int:
    """Plan (and optionally fire) one seeded load run."""
    import json

    from repro.eval.loadgen import (
        build_plan,
        report_rows,
        run_load,
        write_report_file,
    )

    profile = _load_profile_from_args(args)
    corpus = _build_corpus(args, algorithm=args.algorithm or "slca")
    plan = build_plan(corpus, profile)
    if args.plan_only:
        print(
            json.dumps(
                {"signature": plan.signature(), "sequence": plan.sequence()},
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
        return 0
    report = run_load(plan, host=args.host, port=args.port)
    if args.report:
        write_report_file(report_rows(report), args.report)
        print(f"report written to {args.report}", file=out)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(_format_load_report(report), file=out)
    return 1 if report.errors else 0


def _command_loadgen_ablate(args: argparse.Namespace, out) -> int:
    """Run the baseline-plus-one-flip matrix against spawned servers."""
    import json

    from repro.eval.loadgen import (
        ablation_matrix,
        default_flags,
        run_ablation,
        smoke_flags,
    )

    if not (args.dataset or args.file or args.corpus_dir):
        raise ExtractError(
            "loadgen-ablate needs corpus sources the spawned servers can load: "
            "pass --dataset/--file (or --corpus-dir)"
        )
    profile = _load_profile_from_args(args)
    corpus = _build_corpus(args, algorithm=args.algorithm or "slca")
    serve_args: list[str] = []
    if args.corpus_dir:
        serve_args += ["--corpus-dir", args.corpus_dir]
    for dataset in args.dataset:
        serve_args += ["--dataset", dataset]
    for path in args.file:
        serve_args += ["--file", path]
    if args.algorithm:
        serve_args += ["--algorithm", args.algorithm]
    configs = ablation_matrix(smoke_flags() if args.smoke else default_flags())
    outcomes, table = run_ablation(
        corpus,
        serve_args,
        configs,
        profile,
        workers=args.server_workers,
    )
    if args.json:
        rows = [
            {"config": outcome.config.name, **outcome.report.to_dict()}
            for outcome in outcomes
        ]
        print(json.dumps(rows, indent=2, sort_keys=True), file=out)
    else:
        print(table.format_text(), file=out)
    return 0


def _command_corpus_update(args: argparse.Namespace, out) -> int:
    """Apply one lifecycle operation to a saved corpus and journal it."""
    from repro.corpus import Corpus

    corpus = Corpus.load_dir(args.corpus_dir)
    return _apply_journalled_update(
        args.corpus_dir, corpus, args.file, args.remove, args.name, out
    )


def _command_corpus_compact(args: argparse.Namespace, out) -> int:
    """Fold the update journal of a saved corpus into fresh base snapshots."""
    from repro.corpus import compact_corpus_dir

    report = compact_corpus_dir(args.corpus_dir)
    print(
        f"compacted {report.directory}: folded {report.records_folded} journal "
        f"record(s) into {report.documents} base snapshot(s)",
        file=out,
    )
    for subdir in report.subdirs:
        print(f"  {subdir}/", file=out)
    return 0


def _parse_assignments(pairs: list[str], shards: int):
    """--assign NAME=SHARD pairs → an ExplicitPartitioner (None when empty)."""
    from repro.cluster import ExplicitPartitioner

    if not pairs:
        return None
    assignments: dict[str, int] = {}
    for pair in pairs:
        name, separator, shard_text = pair.rpartition("=")
        try:
            shard_id = int(shard_text)
        except ValueError:
            shard_id = -1
        if not separator or not name or shard_id < 0:
            raise ExtractError(
                f"--assign expects NAME=SHARD with a non-negative shard id, got {pair!r}"
            )
        assignments[name] = shard_id
    return ExplicitPartitioner(assignments, shards)


def _command_cluster_init(args: argparse.Namespace, out) -> int:
    """Partition documents across N shards and save the cluster."""
    from repro.cluster import ClusterService, ExplicitPartitioner

    corpus = _build_corpus(args, algorithm=args.algorithm)
    partitioner = _parse_assignments(args.assign, args.shards)
    if partitioner is not None and args.default_shard is not None:
        partitioner = ExplicitPartitioner(
            partitioner.assignments, args.shards, default=args.default_shard
        )
    elif partitioner is None and args.default_shard is not None:
        raise ExtractError("--default-shard only applies with --assign (explicit partitioner)")
    cluster = ClusterService.from_corpus(
        corpus, shards=args.shards, partitioner=partitioner
    )
    subdirs = cluster.save_dir(args.output)
    print(
        f"saved {len(subdirs)}-shard cluster ({len(cluster)} document(s), "
        f"{cluster.partitioner.kind} partitioner) to {args.output}",
        file=out,
    )
    for row in cluster.shard_summary():
        print(f"  shard-{row['shard']}  documents={row['documents']}  [{row['names']}]", file=out)
    return 0


def _command_cluster_serve_request(args: argparse.Namespace, out) -> int:
    """Execute one JSON protocol request through the cluster router."""
    import json

    from repro.api.protocol import ErrorResponse, UpdateRequest, parse_request
    from repro.api.service import SnippetService
    from repro.cluster import ClusterService
    from repro.corpus import Corpus

    if args.request == "-":
        request_text = sys.stdin.read()
    else:
        with open(args.request, "r", encoding="utf-8") as handle:
            request_text = handle.read()

    def emit(response: dict) -> int:
        print(
            json.dumps(response, indent=2 if args.pretty else None, sort_keys=True),
            file=out,
        )
        return 1 if response.get("kind") == "error" else 0

    # Fail fast on malformed requests before paying for the cluster load —
    # same discipline as serve-request.
    try:
        payload = json.loads(request_text)
        request = parse_request(payload)
    except (json.JSONDecodeError, ExtractError):
        return emit(SnippetService(Corpus()).handle_text(request_text))

    if isinstance(request, UpdateRequest):
        # cluster-serve-request loads a throwaway cluster per invocation;
        # lifecycle edits belong to the journalled cluster-update surface.
        return emit(
            ErrorResponse(
                error="ProtocolError",
                message=(
                    "cluster-serve-request is stateless and cannot apply "
                    "document updates; use 'cluster-update --cluster-dir ...' "
                    "so the edit is journalled on the owning shard"
                ),
                request=payload,
            ).to_dict()
        )

    with ClusterService.load_dir(args.cluster_dir, algorithm=args.algorithm) as cluster:
        return emit(cluster.handle_dict(payload, request=request))


def _command_cluster_update(args: argparse.Namespace, out) -> int:
    """Route a lifecycle edit to the owning shard, journal it there, and
    bump the cluster manifest version."""
    from repro.cluster import partitioner_from_manifest, read_cluster_manifest, write_cluster_manifest
    from repro.corpus import Corpus
    from repro.index.storage import directory_documents

    directory = args.cluster_dir
    manifest = read_cluster_manifest(directory)
    name = args.remove or args.name or os.path.splitext(os.path.basename(args.file))[0]

    # Route on journal bookkeeping alone (no shard index is loaded until
    # the owner is known, and the scan stops at the owning shard): the
    # cheap path a large cluster needs.
    owner: int | None = None
    for shard_id, subdir in enumerate(manifest.shard_dirs):
        documents = directory_documents(os.path.join(directory, subdir))
        if name in documents.values():
            owner = shard_id
            break
    if owner is None:
        if args.remove:
            registered = sorted(
                doc_name
                for subdir in manifest.shard_dirs
                for doc_name in directory_documents(
                    os.path.join(directory, subdir)
                ).values()
            )
            raise ExtractError(
                f"no document named {name!r} in the cluster; "
                f"registered: {', '.join(registered) or '(none)'}"
            )
        owner = partitioner_from_manifest(manifest).shard_of(name)

    shard_dir = os.path.join(directory, manifest.shard_dirs[owner])
    corpus = Corpus.load_dir(shard_dir)
    print(f"routing {name!r} to shard {owner} ({manifest.shard_dirs[owner]}/)", file=out)
    code = _apply_journalled_update(shard_dir, corpus, args.file, args.remove, args.name, out)
    if code == 0:
        write_cluster_manifest(directory, manifest.bumped())
        print(f"cluster manifest version {manifest.version} -> {manifest.version + 1}", file=out)
    return code


def _command_cluster_spawn(args: argparse.Namespace, out) -> int:
    """Spawn per-shard serve processes; serve the cluster as one backend."""
    import signal

    from repro.api.executors import ConcurrentExecutor
    from repro.api.gateway import build_gateway
    from repro.api.http import HttpServer
    from repro.cluster import RemoteClusterService

    # SIGTERM (systemd stop, `kill`, container shutdown) must unwind the
    # try/finally below — Python's default handler would exit without
    # running it, orphaning every spawned shard process.
    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _terminate)

    cluster = RemoteClusterService.spawn(
        args.cluster_dir,
        replicas=args.replicas,
        workers=args.shard_workers,
        health_interval=args.health_interval,
    )
    logger, close_log = _build_request_logger(args)
    stack = build_gateway(
        cluster,
        validate=not args.no_validate,
        max_in_flight=args.max_in_flight,
        deadline=args.deadline,
        log=logger,
    )
    http_executor = ConcurrentExecutor(max_workers=args.workers)
    server = HttpServer(
        stack,
        host=args.host,
        port=args.port,
        executor=http_executor,
        max_requests=args.max_requests,
    )
    try:
        server.start()
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        shards = len(cluster.replica_sets)
        print(
            f"spawned {shards} shard(s) × {args.replicas} replica(s) "
            f"({len(cluster.processes)} process(es)) from {args.cluster_dir}",
            file=out,
        )
        for replica_set in cluster.replica_sets:
            addresses = ", ".join(endpoint.address for endpoint in replica_set.endpoints())
            print(f"  shard-{replica_set.shard_id}  [{addresses}]", file=out)
        print(
            f"serving {cluster!r}\n"
            f"  http://{server.host}:{server.port}/v1/search (POST; also /v1/batch, /v1/update)\n"
            f"  http://{server.host}:{server.port}/v1/health (GET; also /v1/stats, "
            f"/v1/metrics, /v1/trace)",
            file=out,
        )
        try:
            server.join()  # returns when --max-requests is spent
        except KeyboardInterrupt:
            print("shutting down", file=out)
    finally:
        server.stop()
        http_executor.close()
        stack.close()  # closes the cluster: monitor, clients, child processes
        close_log()
        signal.signal(signal.SIGTERM, previous_sigterm)
    print(f"served {server.requests_served} request(s)", file=out)
    return 0


def _command_cluster_rebalance(args: argparse.Namespace, out) -> int:
    """Move one document between shards of a saved cluster."""
    from repro.cluster import rebalance_document

    report = rebalance_document(args.cluster_dir, args.document, args.to_shard)
    print(
        f"moved {report.document!r}: shard {report.source_shard} -> "
        f"shard {report.target_shard} (manifest version {report.manifest_version})",
        file=out,
    )
    for delta in report.deltas:
        print(f"  {delta!r}", file=out)
    return 0


def _command_lint(args: argparse.Namespace, out) -> int:
    """Run the invariant linter; exit 0 clean, 1 findings, 2 usage error."""
    import json

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        Analyzer,
        apply_baseline,
        build_rules,
        read_baseline,
        report_to_dict,
        write_baseline,
    )
    from repro.errors import AnalysisError

    try:
        if args.list_rules:
            for rule in build_rules():
                print(f"{rule.rule_id:<22s} {rule.description}", file=out)
            return 0

        # Default scan root: the directory holding the 'repro' package —
        # works from any cwd, installed or from a source checkout.
        paths = args.paths or [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]
        report = Analyzer(build_rules(args.rule)).analyze_paths(paths)

        if args.update_baseline:
            target = args.baseline or DEFAULT_BASELINE_NAME
            entries = write_baseline(target, report.findings)
            print(f"wrote {len(entries)} baseline entry(ies) to {target}", file=out)
            return 0

        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
        entries = read_baseline(baseline_path) if baseline_path else []
    except AnalysisError as error:
        print(f"error: {error}", file=out)
        return 2

    new_findings, stale = apply_baseline(report.findings, entries)
    baselined = len(report.findings) - len(new_findings)
    failed = bool(new_findings) or (args.strict and bool(stale))

    if args.as_json:
        payload = report_to_dict(
            new_findings,
            rules_run=report.rules_run,
            files_analyzed=report.files_analyzed,
            baselined=baselined,
            stale_baseline=[entry.to_dict() for entry in stale],
        )
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 1 if failed else 0

    for finding in new_findings:
        print(finding.format(), file=out)
    for entry in stale:
        print(
            f"stale baseline entry (finding no longer occurs): "
            f"{entry.rule_id}: {entry.path}: {entry.message}",
            file=out,
        )
    summary = (
        f"{len(new_findings)} finding(s) in {report.files_analyzed} file(s), "
        f"{len(report.rules_run)} rule(s)"
    )
    if baselined:
        summary += f", {baselined} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entry(ies)"
    print(summary, file=out)
    return 1 if failed else 0


def _command_corpus_save(args: argparse.Namespace, out) -> int:
    from repro.index.storage import BINARY_FORMAT_VERSION, TEXT_FORMAT_VERSION

    corpus = _build_corpus(args, algorithm=args.algorithm)
    format_version = (
        BINARY_FORMAT_VERSION if args.snapshot_format == "v4" else TEXT_FORMAT_VERSION
    )
    subdirs = corpus.save_dir(args.output, format_version=format_version)
    total_nodes = sum(entry.node_count for entry in corpus)
    print(
        f"saved {len(subdirs)} document index(es), {total_nodes} nodes total, to {args.output}",
        file=out,
    )
    for row in corpus.summary():
        print(f"  {row['name']:<16s} nodes={row['nodes']}", file=out)
    return 0


def _command_trace(args: argparse.Namespace, out) -> int:
    """Fetch and pretty-print traces from a running server."""
    import http.client as http_client
    import json

    from repro.api.client import ServiceClient
    from repro.errors import ProtocolError
    from repro.obs.trace import format_trace

    client = ServiceClient(args.host, args.port)
    try:
        payload = client.trace(args.request_id)
    except (OSError, http_client.HTTPException, ProtocolError) as exc:
        print(f"error: cannot reach http://{args.host}:{args.port}: {exc}", file=out)
        return 1
    finally:
        client.close()
    if payload.get("kind") == "error":
        print(f"error: {payload.get('message', 'trace endpoint error')}", file=out)
        return 1
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    traces = payload["traces"] if "traces" in payload else [payload]
    if not traces:
        print("(no traces recorded yet)", file=out)
        return 0
    for wire in traces:
        print(format_trace(wire), file=out)
    return 0


def _command_metrics(args: argparse.Namespace, out) -> int:
    """Fetch and print a running server's metrics."""
    import http.client as http_client
    import json

    from repro.api.client import ServiceClient
    from repro.errors import ProtocolError

    client = ServiceClient(args.host, args.port)
    try:
        if args.format == "prometheus":
            print(client.metrics_text(), end="", file=out)
            return 0
        payload = client.metrics()
    except (OSError, http_client.HTTPException, ProtocolError) as exc:
        print(f"error: cannot reach http://{args.host}:{args.port}: {exc}", file=out)
        return 1
    finally:
        client.close()
    if payload.get("kind") == "error":
        print(f"error: {payload.get('message', 'metrics endpoint error')}", file=out)
        return 1
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    print(f"metrics schema v{payload.get('schema_version', '?')}", file=out)
    for name, metric in sorted(payload.get("metrics", {}).items()):
        print(f"{name} ({metric.get('type', '?')})", file=out)
        for row in metric.get("series", []):
            labels = row.get("labels", {})
            rendered = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if metric.get("type") == "histogram":
                quantiles = row.get("quantiles", {})
                detail = (
                    f"count={row.get('count')} sum={row.get('sum'):.6f} "
                    + " ".join(
                        f"{q}={'-' if value is None else format(value, '.6f')}"
                        for q, value in sorted(quantiles.items())
                    )
                )
            else:
                detail = f"{row.get('value')}"
            print(f"  {rendered or '(no labels)'}  {detail}", file=out)
    return 0


_COMMANDS = {
    "analyze": _command_analyze,
    "search": _command_search,
    "ilist": _command_ilist,
    "datasets": _command_datasets,
    "generate": _command_generate,
    "experiment": _command_experiment,
    "batch": _command_batch,
    "corpus-save": _command_corpus_save,
    "corpus-update": _command_corpus_update,
    "corpus-compact": _command_corpus_compact,
    "serve-request": _command_serve_request,
    "serve": _command_serve,
    "loadgen": _command_loadgen,
    "loadgen-ablate": _command_loadgen_ablate,
    "cluster-init": _command_cluster_init,
    "cluster-serve-request": _command_cluster_serve_request,
    "cluster-update": _command_cluster_update,
    "cluster-spawn": _command_cluster_spawn,
    "cluster-rebalance": _command_cluster_rebalance,
    "lint": _command_lint,
    "trace": _command_trace,
    "metrics": _command_metrics,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args, out)
    except ExtractError as error:
        print(f"error: {error}", file=out)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
