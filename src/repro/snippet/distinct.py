"""Result-set-aware snippet generation: make snippets differentiate results.

The paper's abstract states that snippets should "effectively summarize the
query results **and differentiate them from one another**".  The per-result
pipeline achieves this primarily through the result key (§2.2), but when
two results share the same key value — or have no key — and the same
dominant features, their snippets can come out identical.

:class:`DistinctSnippetGenerator` is a thin post-processing layer over
:class:`~repro.snippet.generator.SnippetGenerator`: after generating the
standard snippet for every result of a result set, it detects groups of
results whose snippets show identical content and regenerates the later
members of each group with *discriminating features* (features of the
result whose tag/value does not appear in the clashing snippet) promoted
into the IList right after the result key.  The size bound is never
exceeded — discrimination only changes which items compete for the budget.
"""

from __future__ import annotations

from repro.classify.analyzer import DataAnalyzer
from repro.eval.metrics import snippet_signature
from repro.search.results import ResultSet
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.generator import DEFAULT_SIZE_BOUND, GeneratedSnippet, SnippetBatch, SnippetGenerator
from repro.snippet.ilist import IList, IListItem, ItemKind
from repro.snippet.instance_selector import GreedyInstanceSelector


class DistinctSnippetGenerator:
    """Generates snippets that differentiate the results of one query."""

    def __init__(self, analyzer: DataAnalyzer, max_rounds: int = 2, max_discriminators: int = 3):
        self.analyzer = analyzer
        self.base = SnippetGenerator(analyzer)
        self.dominant_identifier = DominantFeatureIdentifier(analyzer)
        #: how many clash-resolution passes to run over the batch
        self.max_rounds = max_rounds
        #: how many discriminating features are promoted per regeneration
        self.max_discriminators = max_discriminators
        self._selector = GreedyInstanceSelector()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate_all(self, results: ResultSet, size_bound: int = DEFAULT_SIZE_BOUND) -> SnippetBatch:
        """Generate snippets for a result set, then resolve content clashes."""
        batch = self.base.generate_all(results, size_bound=size_bound)
        for _ in range(self.max_rounds):
            if not self._resolve_clashes(batch, size_bound):
                break
        return batch

    # ------------------------------------------------------------------ #
    # clash resolution
    # ------------------------------------------------------------------ #
    def _resolve_clashes(self, batch: SnippetBatch, size_bound: int) -> bool:
        """Regenerate later members of identical-content groups.

        Returns True when at least one snippet was regenerated (another
        round may then be useful).
        """
        changed = False
        seen: dict[frozenset[str], int] = {}
        for position, generated in enumerate(batch.snippets):
            signature = snippet_signature(generated)
            if signature not in seen:
                seen[signature] = position
                continue
            rival = batch.snippets[seen[signature]]
            regenerated = self._regenerate_with_discriminators(generated, rival, size_bound)
            if regenerated is not None and snippet_signature(regenerated) != signature:
                batch.snippets[position] = regenerated
                changed = True
        return changed

    def _regenerate_with_discriminators(
        self, generated: GeneratedSnippet, rival: GeneratedSnippet, size_bound: int
    ) -> GeneratedSnippet | None:
        discriminators = self._discriminating_items(generated, rival)
        if not discriminators:
            return None
        ilist = self._ilist_with_discriminators(generated.ilist, discriminators)
        snippet = self._selector.select(generated.result, ilist, size_bound)
        return GeneratedSnippet(
            result=generated.result, ilist=ilist, snippet=snippet, size_bound=size_bound
        )

    def _discriminating_items(
        self, generated: GeneratedSnippet, rival: GeneratedSnippet
    ) -> list[IListItem]:
        """Features of ``generated``'s result that the rival snippet does not show."""
        rival_content = snippet_signature(rival)
        own_identities = set(generated.ilist.identities())
        scored = self.dominant_identifier.score_all(generated.result, generated.ilist.statistics)
        items: list[IListItem] = []
        for feature in scored:
            marker = f"{feature.feature.attribute}={feature.feature.value}"
            if marker in rival_content:
                continue
            if feature.feature.value in own_identities:
                # already in the IList (it simply lost the budget race);
                # promoting it is handled by re-insertion below
                pass
            items.append(
                IListItem(
                    kind=ItemKind.DOMINANT_FEATURE,
                    text=feature.display_value,
                    identity=feature.feature.value,
                    instances=list(feature.instances),
                    score=feature.score,
                    feature=feature,
                )
            )
            if len(items) >= self.max_discriminators:
                break
        return items

    def _ilist_with_discriminators(self, original: IList, discriminators: list[IListItem]) -> IList:
        """A copy of the IList with discriminating items right after the key."""
        promoted_identities = {item.identity for item in discriminators}
        items: list[IListItem] = []
        for item in original.items:
            if item.identity in promoted_identities:
                continue  # re-inserted at the promoted position instead
            items.append(item)
        # insertion point: after keywords, entity names and key items
        insert_at = 0
        for index, item in enumerate(items):
            if item.kind in (ItemKind.KEYWORD, ItemKind.ENTITY_NAME, ItemKind.RESULT_KEY):
                insert_at = index + 1
        items[insert_at:insert_at] = discriminators
        return IList(
            items=items,
            return_entity_decision=original.return_entity_decision,
            statistics=original.statistics,
        )
