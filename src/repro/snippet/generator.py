"""The SnippetGenerator façade — eXtract's primary contribution.

Given a keyword query, a query result and a snippet size bound, the
generator runs the full Figure 4 pipeline:

1. build the IList (keywords → entity names → result key → dominant
   features) via :class:`~repro.snippet.ilist.IListBuilder`,
2. run the greedy Instance Selector to build the snippet tree within the
   size bound.

The default size bound of 14 edges is what reproduces the Figure 2 snippet
of the running example; the demo UI (Figure 5) uses a user-chosen bound
such as 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.analyzer import DataAnalyzer
from repro.errors import InvalidSizeBoundError
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult, ResultSet
from repro.snippet.ilist import IList, IListBuilder
from repro.snippet.instance_selector import GreedyInstanceSelector, SelectionStrategy
from repro.snippet.snippet_tree import Snippet
from repro.utils.cache import DEFAULT_CACHE_SIZE, LRUCache
from repro.utils.paging import page_slice
from repro.utils.timing import TimingBreakdown

#: the default snippet size bound (edges); matches the Figure 2 example
DEFAULT_SIZE_BOUND = 14


@dataclass
class GeneratedSnippet:
    """A snippet together with the intermediate artefacts that produced it."""

    result: QueryResult
    ilist: IList
    snippet: Snippet
    size_bound: int

    @property
    def covered_items(self) -> int:
        return len(self.snippet.covered_items)

    @property
    def coverage(self) -> float:
        """Fraction of coverable IList items captured by the snippet."""
        coverable = len(self.ilist.coverable_items())
        if coverable == 0:
            return 1.0
        return self.covered_items / coverable

    def __repr__(self) -> str:
        return (
            f"<GeneratedSnippet result=#{self.result.result_id} "
            f"edges={self.snippet.size_edges}/{self.size_bound} "
            f"items={self.covered_items}/{len(self.ilist.coverable_items())}>"
        )


@dataclass
class SnippetBatch:
    """Snippets for a whole result set (one per result, rank order)."""

    query: KeywordQuery
    size_bound: int
    snippets: list[GeneratedSnippet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snippets)

    def __iter__(self):
        return iter(self.snippets)

    def __getitem__(self, index: int) -> GeneratedSnippet:
        return self.snippets[index]

    def mean_coverage(self) -> float:
        if not self.snippets:
            return 0.0
        return sum(generated.coverage for generated in self.snippets) / len(self.snippets)

    def page(self, page: int, page_size: int | None) -> list[GeneratedSnippet]:
        """The snippets of one result page (conventions in
        :mod:`repro.utils.paging`)."""
        return page_slice(self.snippets, page, page_size)


class SnippetGenerator:
    """Generates eXtract snippets for query results.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> from repro.index.builder import IndexBuilder
    >>> from repro.search.engine import SearchEngine
    >>> tree = tree_from_dict("shops", {"store": [
    ...     {"name": "Levis", "state": "Texas", "clothes": [{"category": "jeans"}]},
    ...     {"name": "ESprit", "state": "Oregon", "clothes": [{"category": "outwear"}]},
    ... ]})
    >>> index = IndexBuilder().build(tree)
    >>> results = SearchEngine(index).search("store texas")
    >>> generator = SnippetGenerator(index.analyzer)
    >>> generated = generator.generate(results[0], size_bound=6)
    >>> generated.snippet.size_edges <= 6
    True
    """

    def __init__(
        self,
        analyzer: DataAnalyzer,
        strategy: SelectionStrategy = SelectionStrategy.GREEDY_CLOSEST,
        skip_unfitting_items: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.analyzer = analyzer
        self.ilist_builder = IListBuilder(analyzer)
        self.selector = GreedyInstanceSelector(
            strategy=strategy, skip_unfitting_items=skip_unfitting_items
        )
        self.timings = TimingBreakdown()
        #: snippet cache: (document, result root, normalised query, bound) →
        #: GeneratedSnippet.  The document and its analysis are immutable
        #: for the lifetime of a generator, so identical requests can reuse
        #: the IList and the selected snippet tree verbatim.
        self.cache = LRUCache(cache_size)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build_ilist(self, result: QueryResult, query: KeywordQuery | None = None) -> IList:
        """Build the IList of a result (exposed for tests and experiments)."""
        return self.ilist_builder.build(query or result.query, result)

    def generate(
        self,
        result: QueryResult,
        size_bound: int = DEFAULT_SIZE_BOUND,
        query: KeywordQuery | None = None,
        timings: TimingBreakdown | None = None,
    ) -> GeneratedSnippet:
        """Generate the snippet of one query result.

        Identical requests (same document, result root, normalised query
        and size bound) are answered from the snippet cache; the cached
        IList and snippet tree are rewrapped around the caller's ``result``
        object so ranking metadata (``result_id``, score) stays current.

        ``timings`` redirects the phase measurements into a caller-owned
        breakdown (the thread-safe service pipeline passes a per-request
        one); without it the generator's own :attr:`timings` accumulate.
        """
        if not isinstance(size_bound, int) or isinstance(size_bound, bool) or size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)
        breakdown = timings if timings is not None else self.timings
        effective_query = query or result.query
        key = (result.source.name, result.root, effective_query.keywords, size_bound)
        cached = self.cache.get(key)
        if cached is not None:
            return GeneratedSnippet(
                result=result, ilist=cached.ilist, snippet=cached.snippet, size_bound=size_bound
            )
        with breakdown.measure("ilist"):
            ilist = self.ilist_builder.build(effective_query, result)
        with breakdown.measure("instance_selection"):
            snippet = self.selector.select(result, ilist, size_bound)
        generated = GeneratedSnippet(result=result, ilist=ilist, snippet=snippet, size_bound=size_bound)
        self.cache.put(key, generated)
        return generated

    def generate_all(
        self,
        results: ResultSet,
        size_bound: int = DEFAULT_SIZE_BOUND,
        timings: TimingBreakdown | None = None,
    ) -> SnippetBatch:
        """Generate snippets for every result of a result set."""
        batch = SnippetBatch(query=results.query, size_bound=size_bound)
        for result in results:
            batch.snippets.append(
                self.generate(result, size_bound=size_bound, query=results.query, timings=timings)
            )
        return batch

    def invalidate_cache(self) -> int:
        """Drop every cached snippet; returns the number of entries removed."""
        return self.cache.clear()
