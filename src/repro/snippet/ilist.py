"""The Snippet Information List (IList) of a query result (§2, Figure 3).

The IList holds "the most important information from each query result ...
in the order of their importances":

1. the query keywords (the IList is *initialised* with them, in query
   order),
2. the names of the entities involved in the query result (§2.1,
   self-containment),
3. the key of the query result — the key value of the return entity (§2.2,
   distinguishability),
4. the dominant features, in decreasing dominance-score order (§2.3,
   representativeness).

Duplicates are kept out: in the running example the entity name
``retailer`` is already present as a keyword, and the trivially dominant
feature value ``Texas`` is already present as a keyword, which is exactly
why neither appears twice in Figure 3.

Every item carries the node instances of the query result that *cover* it,
because the Instance Selector (§2.4) chooses among those instances.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

from repro.classify.analyzer import DataAnalyzer
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult
from repro.snippet.dominant import DominantFeatureIdentifier, ScoredFeature
from repro.snippet.features import FeatureStatistics, extract_features
from repro.snippet.result_key import QueryResultKeyIdentifier, ResultKey
from repro.snippet.return_entity import ReturnEntityDecision, ReturnEntityIdentifier
from repro.utils.text import matches_keyword, normalize_token, normalize_value
from repro.xmltree.dewey import Dewey


class ItemKind(str, Enum):
    """Why an item is in the IList."""

    KEYWORD = "keyword"
    ENTITY_NAME = "entity"
    RESULT_KEY = "key"
    DOMINANT_FEATURE = "feature"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class IListItem:
    """One entry of the IList."""

    kind: ItemKind
    #: display text (what the user reads in the snippet / Figure 3)
    text: str
    #: normalised identity used for de-duplication
    identity: str
    #: candidate node instances in the query result covering this item
    instances: list[Dewey] = field(default_factory=list)
    #: dominance score for feature items, 0 otherwise
    score: float = 0.0
    #: the scored feature / result key behind the item, when applicable
    feature: ScoredFeature | None = None
    result_key: ResultKey | None = None

    @property
    def has_instances(self) -> bool:
        return bool(self.instances)

    def __repr__(self) -> str:
        return f"<IListItem {self.kind.value}:{self.text!r} instances={len(self.instances)}>"


@dataclass
class IList:
    """The ordered Snippet Information List of one query result."""

    items: list[IListItem] = field(default_factory=list)
    return_entity_decision: ReturnEntityDecision | None = None
    statistics: FeatureStatistics | None = None

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[IListItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> IListItem:
        return self.items[index]

    def texts(self) -> list[str]:
        """The display texts in order — directly comparable to Figure 3."""
        return [item.text for item in self.items]

    def identities(self) -> list[str]:
        return [item.identity for item in self.items]

    def items_of_kind(self, kind: ItemKind) -> list[IListItem]:
        return [item for item in self.items if item.kind == kind]

    def coverable_items(self) -> list[IListItem]:
        """Items that have at least one instance in the result."""
        return [item for item in self.items if item.has_instances]

    def __repr__(self) -> str:
        return f"<IList {', '.join(self.texts())}>"


class IListBuilder:
    """Builds the IList of a query result (ties §2.1–§2.3 together)."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer
        self.return_entity_identifier = ReturnEntityIdentifier(analyzer)
        self.key_identifier = QueryResultKeyIdentifier(analyzer)
        self.dominant_identifier = DominantFeatureIdentifier(analyzer)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build(self, query: KeywordQuery, result: QueryResult) -> IList:
        """Construct the IList of ``result`` for ``query``.

        The four groups are appended in the paper's order; duplicates
        (same normalised identity) keep their earliest, most important
        position.
        """
        statistics = extract_features(self.analyzer, result)
        decision = self.return_entity_identifier.identify(query, result)

        ilist = IList(return_entity_decision=decision, statistics=statistics)
        seen: set[str] = set()

        for item in self._keyword_items(query, result):
            self._append(ilist, item, seen)
        for item in self._entity_name_items(decision, result):
            self._append(ilist, item, seen)
        for item in self._key_items(result, decision):
            self._append(ilist, item, seen)
        for item in self._feature_items(result, statistics):
            self._append(ilist, item, seen)
        return ilist

    # ------------------------------------------------------------------ #
    # item construction
    # ------------------------------------------------------------------ #
    def _append(self, ilist: IList, item: IListItem, seen: set[str]) -> None:
        if item.identity in seen:
            return
        seen.add(item.identity)
        ilist.items.append(item)

    def _keyword_items(self, query: KeywordQuery, result: QueryResult) -> list[IListItem]:
        items: list[IListItem] = []
        for keyword in query.keywords:
            instances = list(result.matches.get(keyword, ()))
            if not instances:
                instances = self._scan_keyword_instances(result, keyword)
            items.append(
                IListItem(
                    kind=ItemKind.KEYWORD,
                    text=keyword,
                    identity=normalize_token(keyword),
                    instances=instances,
                )
            )
        return items

    def _scan_keyword_instances(self, result: QueryResult, keyword: str) -> list[Dewey]:
        """Fallback when the result carries no precomputed match labels."""
        instances: list[Dewey] = []
        for node in result.iter_nodes():
            if matches_keyword(node.tag, keyword) or (
                node.has_text_value and matches_keyword(node.text or "", keyword)
            ):
                instances.append(node.dewey)
        return instances

    def _entity_name_items(
        self, decision: ReturnEntityDecision, result: QueryResult
    ) -> list[IListItem]:
        """Entity names, most frequent entity type in the result first.

        The paper's Figure 3 lists ``clothes`` before ``store``; ordering
        entity names by decreasing instance count inside the result
        reproduces that (the result has far more clothes than stores) and
        is a sensible importance proxy: the more instances an entity type
        has, the more of the result it describes.
        """
        counts: Counter[str] = Counter()
        instances_by_tag: dict[str, list[Dewey]] = {}
        for node in result.iter_nodes():
            if self.analyzer.is_entity(node) or node.dewey == result.root:
                counts[node.tag] += 1
                instances_by_tag.setdefault(node.tag, []).append(node.dewey)
        ordered = sorted(counts, key=lambda tag: (-counts[tag], tag))
        return [
            IListItem(
                kind=ItemKind.ENTITY_NAME,
                text=tag,
                identity=normalize_token(tag),
                instances=instances_by_tag[tag],
            )
            for tag in ordered
        ]

    def _key_items(self, result: QueryResult, decision: ReturnEntityDecision) -> list[IListItem]:
        keys = self.key_identifier.identify(result, decision)
        return [
            IListItem(
                kind=ItemKind.RESULT_KEY,
                text=key.value,
                identity=normalize_value(key.value),
                instances=list(key.instances),
                result_key=key,
            )
            for key in keys
        ]

    def _feature_items(
        self, result: QueryResult, statistics: FeatureStatistics
    ) -> list[IListItem]:
        dominant = self.dominant_identifier.identify(result, statistics)
        return [
            IListItem(
                kind=ItemKind.DOMINANT_FEATURE,
                text=scored.display_value,
                identity=scored.feature.value,
                instances=list(scored.instances),
                score=scored.score,
                feature=scored,
            )
            for scored in dominant
        ]
