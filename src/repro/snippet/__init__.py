"""The eXtract core: snippet generation for XML keyword search results.

The pipeline mirrors Figure 4 of the paper:

* :mod:`repro.snippet.features` — feature triples ``(entity, attribute,
  value)`` and their occurrence statistics inside one query result,
* :mod:`repro.snippet.return_entity` — the Return Entity Identifier (§2.2),
* :mod:`repro.snippet.result_key` — the Query Result Key Identifier (§2.2),
* :mod:`repro.snippet.dominant` — the Dominant Feature Identifier (§2.3),
* :mod:`repro.snippet.ilist` — Snippet Information List construction (§2),
* :mod:`repro.snippet.snippet_tree` — the snippet tree and its size/coverage
  accounting,
* :mod:`repro.snippet.instance_selector` — the greedy Instance Selector
  (§2.4),
* :mod:`repro.snippet.optimal` — an exact (exponential) selector used to
  validate the greedy algorithm on small inputs,
* :mod:`repro.snippet.generator` — the :class:`SnippetGenerator` façade,
* :mod:`repro.snippet.baselines` — comparison snippet generators,
* :mod:`repro.snippet.render` — text/HTML presentation.
"""

from repro.snippet.features import Feature, FeatureStatistics, extract_features
from repro.snippet.return_entity import ReturnEntityIdentifier, ReturnEntityDecision
from repro.snippet.result_key import QueryResultKeyIdentifier, ResultKey
from repro.snippet.dominant import DominantFeatureIdentifier, ScoredFeature
from repro.snippet.ilist import IList, IListItem, ItemKind, IListBuilder
from repro.snippet.snippet_tree import Snippet
from repro.snippet.instance_selector import GreedyInstanceSelector, SelectionStrategy
from repro.snippet.optimal import OptimalInstanceSelector
from repro.snippet.generator import SnippetGenerator
from repro.snippet.baselines import (
    FirstEdgesSnippetGenerator,
    RawFrequencySnippetGenerator,
    RandomSubtreeSnippetGenerator,
    TextWindowSnippetGenerator,
    TextSnippet,
)
from repro.snippet.distinct import DistinctSnippetGenerator
from repro.snippet.render import render_snippet_text, render_snippet_html, render_result_page

__all__ = [
    "Feature",
    "FeatureStatistics",
    "extract_features",
    "ReturnEntityIdentifier",
    "ReturnEntityDecision",
    "QueryResultKeyIdentifier",
    "ResultKey",
    "DominantFeatureIdentifier",
    "ScoredFeature",
    "IList",
    "IListItem",
    "ItemKind",
    "IListBuilder",
    "Snippet",
    "GreedyInstanceSelector",
    "SelectionStrategy",
    "OptimalInstanceSelector",
    "SnippetGenerator",
    "FirstEdgesSnippetGenerator",
    "RawFrequencySnippetGenerator",
    "RandomSubtreeSnippetGenerator",
    "TextWindowSnippetGenerator",
    "TextSnippet",
    "DistinctSnippetGenerator",
    "render_snippet_text",
    "render_snippet_html",
    "render_result_page",
]
