"""Dominant Feature Identifier (§2.3, Figure 4).

"Dominant Feature Identifier traverses the query result and calculates the
dominance score for each feature.  Then dominant features are identified
according to their dominance scores."

A feature is dominant when its dominance score exceeds 1 — i.e. it occurs
more often than the average value of its feature type — with the single
exception of types whose domain size is 1, which are trivially dominant at
score exactly 1 (§2.3).  Dominant features enter the IList in decreasing
score order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.analyzer import DataAnalyzer
from repro.search.results import QueryResult
from repro.snippet.features import Feature, FeatureStatistics, extract_features
from repro.xmltree.dewey import Dewey


@dataclass
class ScoredFeature:
    """A feature together with its §2.3 statistics inside one result."""

    feature: Feature
    display_value: str
    score: float
    value_count: int
    type_count: int
    domain_size: int
    instances: list[Dewey]

    @property
    def is_trivially_dominant(self) -> bool:
        """Dominant only because its type has a single value (D = 1)."""
        return self.domain_size == 1

    def __repr__(self) -> str:
        return f"<ScoredFeature {self.feature} DS={self.score:.2f} n={self.value_count}>"


class DominantFeatureIdentifier:
    """Computes dominance scores and ranks the dominant features."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def score_all(
        self, result: QueryResult, statistics: FeatureStatistics | None = None
    ) -> list[ScoredFeature]:
        """Score every feature of the result (dominant or not).

        Features are returned in decreasing score order; ties break by
        value count (more occurrences first) and then alphabetically so
        the ordering — and hence the IList — is deterministic.
        """
        statistics = statistics if statistics is not None else extract_features(self.analyzer, result)
        scored: list[ScoredFeature] = []
        for feature in statistics.features():
            scored.append(
                ScoredFeature(
                    feature=feature,
                    display_value=statistics.display_value(feature),
                    score=statistics.dominance_score(feature),
                    value_count=statistics.value_count(feature),
                    type_count=statistics.type_count(feature.entity, feature.attribute),
                    domain_size=statistics.domain_size(feature.entity, feature.attribute),
                    instances=statistics.instances_of(feature),
                )
            )
        scored.sort(key=lambda item: (-item.score, -item.value_count, str(item.feature)))
        return scored

    def identify(
        self, result: QueryResult, statistics: FeatureStatistics | None = None
    ) -> list[ScoredFeature]:
        """The dominant features of the result, best first.

        >>> # dominance requires DS > 1, or a domain of size 1
        """
        statistics = statistics if statistics is not None else extract_features(self.analyzer, result)
        return [
            scored
            for scored in self.score_all(result, statistics)
            if statistics.is_dominant(scored.feature)
        ]

    def dominance_table(
        self, result: QueryResult, statistics: FeatureStatistics | None = None
    ) -> dict[str, float]:
        """value → dominance score for every feature (used by tests/F3).

        When the same display value appears under several feature types
        (rare), the highest score wins, which matches how the paper refers
        to features "by value when there is no ambiguity".
        """
        table: dict[str, float] = {}
        for scored in self.score_all(result, statistics):
            key = scored.feature.value
            if key not in table or scored.score > table[key]:
                table[key] = scored.score
        return table
