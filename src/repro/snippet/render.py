"""Snippet presentation: plain text and static HTML.

The original demo presented snippets on a PHP web page (Figure 5) with a
link from each snippet to its full query result.  The reproduction renders
the same artefacts without a server: a terminal-friendly text rendering
used by the example scripts, and a standalone HTML page that can be opened
in a browser.
"""

from __future__ import annotations

import html
import os

from repro.snippet.baselines import TextSnippet
from repro.snippet.generator import GeneratedSnippet, SnippetBatch
from repro.xmltree.node import XMLNode
from repro.xmltree.serialize import to_xml_string


# ---------------------------------------------------------------------- #
# text rendering
# ---------------------------------------------------------------------- #
def render_snippet_text(generated: GeneratedSnippet, show_ilist: bool = False) -> str:
    """Render one snippet as an indented outline (terminal friendly).

    >>> # see examples/quickstart.py for output samples
    """
    tree = generated.snippet.to_tree()
    lines: list[str] = []
    header = f"Result #{generated.result.result_id}"
    key_texts = [item.text for item in generated.ilist.items if item.kind.value == "key"]
    if key_texts:
        header += f" — {key_texts[0]}"
    header += (
        f"  [snippet: {generated.snippet.size_edges} edges, "
        f"{generated.covered_items}/{len(generated.ilist.coverable_items())} items]"
    )
    lines.append(header)
    _render_node_text(tree.root, lines, 1)
    if show_ilist:
        lines.append("  IList: " + ", ".join(generated.ilist.texts()))
    return "\n".join(lines)


def _render_node_text(node: XMLNode, lines: list[str], level: int) -> None:
    suffix = f": {node.text}" if node.text else ""
    lines.append(f"{'  ' * level}{node.tag}{suffix}")
    for child in node.children:
        _render_node_text(child, lines, level + 1)


def render_batch_text(batch: SnippetBatch, show_ilist: bool = False) -> str:
    """Render all snippets of a result set, rank order."""
    blocks = [render_snippet_text(generated, show_ilist=show_ilist) for generated in batch]
    title = f'Query: "{batch.query.raw}"  (size bound: {batch.size_bound} edges, {len(batch)} results)'
    return "\n\n".join([title] + blocks)


def render_text_snippet(snippet: TextSnippet) -> str:
    """Render a flat text-window snippet (the Google-Desktop baseline)."""
    return f"Result #{snippet.result.result_id} — ...{snippet.text}..."


# ---------------------------------------------------------------------- #
# HTML rendering (Figure 5 analogue)
# ---------------------------------------------------------------------- #
_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>eXtract — {query}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
.snippet {{ border: 1px solid #ccc; border-radius: 6px; padding: 0.8em 1.2em; margin: 1em 0; }}
.snippet h3 {{ margin: 0 0 0.4em 0; }}
.snippet ul {{ list-style: none; padding-left: 1.2em; margin: 0.2em 0; }}
.tag {{ color: #7b2d8b; }}
.value {{ color: #1a4d8f; font-weight: bold; }}
.meta {{ color: #777; font-size: 0.85em; }}
details {{ margin-top: 0.5em; }}
pre {{ background: #f7f7f7; padding: 0.6em; overflow-x: auto; }}
</style>
</head>
<body>
<h1>eXtract result snippets</h1>
<p>Query: <b>{query}</b> &nbsp;|&nbsp; snippet size bound: {bound} edges &nbsp;|&nbsp; {count} results</p>
{snippets}
</body>
</html>
"""

_SNIPPET_TEMPLATE = """<div class="snippet">
<h3>Result #{rank}{key}</h3>
{tree}
<p class="meta">snippet: {edges} edges &middot; IList items covered: {covered}/{total}</p>
<details><summary>full query result</summary><pre>{full}</pre></details>
</div>
"""


def render_snippet_html(generated: GeneratedSnippet) -> str:
    """Render one snippet as an HTML fragment (nested list + result link)."""
    tree = generated.snippet.to_tree()
    key_texts = [item.text for item in generated.ilist.items if item.kind.value == "key"]
    key = f" — {html.escape(key_texts[0])}" if key_texts else ""
    return _SNIPPET_TEMPLATE.format(
        rank=generated.result.result_id,
        key=key,
        tree=_render_node_html(tree.root),
        edges=generated.snippet.size_edges,
        covered=generated.covered_items,
        total=len(generated.ilist.coverable_items()),
        full=html.escape(to_xml_string(generated.result.to_tree(), include_declaration=False)),
    )


def _render_node_html(node: XMLNode) -> str:
    value = f' <span class="value">{html.escape(node.text)}</span>' if node.text else ""
    children = "".join(f"<li>{_render_node_html(child)}</li>" for child in node.children)
    children_html = f"<ul>{children}</ul>" if children else ""
    return f'<span class="tag">{html.escape(node.tag)}</span>{value}{children_html}'


def render_result_page(batch: SnippetBatch) -> str:
    """Render a complete standalone HTML page for a snippet batch."""
    snippets = "\n".join(render_snippet_html(generated) for generated in batch)
    return _PAGE_TEMPLATE.format(
        query=html.escape(batch.query.raw),
        bound=batch.size_bound,
        count=len(batch),
        snippets=snippets,
    )


def write_result_page(batch: SnippetBatch, path: str | os.PathLike[str]) -> str:
    """Write the HTML page to disk and return the path written."""
    target = os.fspath(path)
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(render_result_page(batch))
    return target
