"""The snippet tree: a small, connected fragment of a query result.

A snippet is a subtree of the query result (Figure 2 is a snippet of the
Figure 1 result): it is rooted at the result root, it is connected, and its
*size* is its number of edges (§4: the size bound "is defined as the number
of edges in the tree").  The snippet grows by adding the path from the
result root to a chosen item instance; the cost of adding an instance is
the number of new edges that path contributes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SnippetError
from repro.search.results import QueryResult
from repro.snippet.ilist import IListItem
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.order import is_ancestor_or_self
from repro.xmltree.tree import XMLTree


class Snippet:
    """A growing snippet tree over one query result."""

    def __init__(self, result: QueryResult):
        self.result = result
        self.root: Dewey = result.root
        #: pre/post span table of the result's source tree (O(1) subtree tests)
        self._order = result.source.order
        #: the labels of the selected nodes; always contains the root and is
        #: closed under "parent within the result subtree"
        self.node_labels: set[Dewey] = {self.root}
        #: the IList items covered so far, in coverage order
        self.covered_items: list[IListItem] = []
        #: per covered item identity, the instance label chosen to cover it
        self.chosen_instances: dict[str, Dewey] = {}

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    @property
    def size_edges(self) -> int:
        """Number of edges of the snippet tree (nodes - 1)."""
        return len(self.node_labels) - 1

    @property
    def size_nodes(self) -> int:
        return len(self.node_labels)

    def path_labels(self, instance: Dewey) -> list[Dewey]:
        """The labels on the path from the snippet root to ``instance``."""
        if not is_ancestor_or_self(self.root, instance, self._order):
            raise SnippetError(
                f"instance {instance} lies outside the result rooted at {self.root}"
            )
        return [instance.prefix(depth) for depth in range(self.root.depth, instance.depth + 1)]

    def cost_of(self, instance: Dewey) -> int:
        """Number of *new* edges added by selecting ``instance``."""
        return sum(1 for label in self.path_labels(instance) if label not in self.node_labels)

    def cheapest_instance(self, instances: Iterable[Dewey]) -> tuple[Dewey, int] | None:
        """The instance with the lowest addition cost (ties: document order)."""
        best: tuple[int, Dewey] | None = None
        for instance in instances:
            if not is_ancestor_or_self(self.root, instance, self._order):
                continue
            cost = self.cost_of(instance)
            if best is None or (cost, instance) < best:
                best = (cost, instance)
        if best is None:
            return None
        return best[1], best[0]

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add_instance(self, item: IListItem, instance: Dewey) -> int:
        """Cover ``item`` using ``instance``; returns the edges added."""
        new_labels = [label for label in self.path_labels(instance) if label not in self.node_labels]
        self.node_labels.update(new_labels)
        self.covered_items.append(item)
        self.chosen_instances[item.identity] = instance
        return len(new_labels)

    def would_fit(self, instance: Dewey, bound: int) -> bool:
        """Would adding ``instance`` keep the snippet within ``bound`` edges?"""
        return self.size_edges + self.cost_of(instance) <= bound

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def covered_texts(self) -> list[str]:
        return [item.text for item in self.covered_items]

    def covers(self, identity: str) -> bool:
        return identity in self.chosen_instances

    def contains_label(self, label: Dewey) -> bool:
        return label in self.node_labels

    def is_connected(self) -> bool:
        """Every selected node's parent (down to the root) is selected too."""
        for label in self.node_labels:
            if label == self.root:
                continue
            if label.parent() not in self.node_labels:
                return False
        return True

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def to_tree(self) -> XMLTree:
        """Copy the selected nodes into a standalone tree (for rendering).

        Only the selected labels are copied — unlike
        :meth:`XMLTree.extract_projection`, subtrees below selected nodes
        are *not* pulled in, because the snippet's size bound is defined
        over exactly the selected edges.
        """
        source = self.result.source
        root_copy = self._copy_selected(source.node(self.root))
        return XMLTree(root_copy, name=f"snippet:{source.name}#{self.result.result_id}")

    def _copy_selected(self, node: XMLNode) -> XMLNode:
        copy = XMLNode(node.tag, node.text)
        for child in node.children:
            if child.dewey in self.node_labels:
                copy.append_child(self._copy_selected(child))
        return copy

    def selected_nodes(self) -> list[XMLNode]:
        """The selected source nodes in document order."""
        return [self.result.source.node(label) for label in sorted(self.node_labels)]

    def __repr__(self) -> str:
        return (
            f"<Snippet result=#{self.result.result_id} edges={self.size_edges} "
            f"covered={len(self.covered_items)}>"
        )
