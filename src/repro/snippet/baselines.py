"""Baseline snippet generators used in the evaluation.

The demo compares eXtract with the snippets Google Desktop produces for the
same XML files (§4): a text search engine "ignores XML tags and all
structural information".  The companion evaluation additionally needs
structure-aware but naive baselines.  Four baselines are provided:

* :class:`TextWindowSnippetGenerator` — the Google-Desktop stand-in: the
  result's text is flattened, and a window of words around the first
  keyword occurrences is returned.  Produces a :class:`TextSnippet`
  (plain text, no tree).
* :class:`FirstEdgesSnippetGenerator` — takes the first *B* edges of the
  result subtree in document order (what a system without an IList would
  show).
* :class:`RawFrequencySnippetGenerator` — identical pipeline to eXtract
  but ranks features by raw occurrence count instead of dominance score
  (the §2.3 ablation, experiment A1).
* :class:`RandomSubtreeSnippetGenerator` — adds random result nodes until
  the bound is reached; a sanity-check lower bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.classify.analyzer import DataAnalyzer
from repro.errors import InvalidSizeBoundError
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult
from repro.snippet.generator import GeneratedSnippet
from repro.snippet.ilist import IList, IListBuilder, IListItem, ItemKind
from repro.snippet.instance_selector import GreedyInstanceSelector
from repro.snippet.snippet_tree import Snippet
from repro.utils.text import normalize_token, tokenize


# ---------------------------------------------------------------------- #
# text-window baseline ("Google Desktop" stand-in)
# ---------------------------------------------------------------------- #
@dataclass
class TextSnippet:
    """A flat text snippet (no structure), like a text search engine's."""

    result: QueryResult
    text: str
    window_words: int

    @property
    def word_count(self) -> int:
        return len(self.text.split())

    def __repr__(self) -> str:
        return f"<TextSnippet words={self.word_count} {self.text[:40]!r}...>"


class TextWindowSnippetGenerator:
    """Flattens the result to text and keeps windows around keyword hits.

    The size bound is interpreted as a *word* budget: an XML snippet of
    ``B`` edges shows about ``B`` tag/value pairs, so the same number of
    words keeps the comparison with eXtract honest.
    """

    def __init__(self, words_per_window: int = 8):
        self.words_per_window = words_per_window

    def generate(
        self, result: QueryResult, size_bound: int, query: KeywordQuery | None = None
    ) -> TextSnippet:
        if size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)
        effective_query = query or result.query
        words = tokenize(result.text_content())
        keywords = {normalize_token(keyword) for keyword in effective_query.keywords}

        hit_positions = [
            position for position, word in enumerate(words) if normalize_token(word) in keywords
        ]
        budget = size_bound
        pieces: list[str] = []
        used: set[int] = set()
        for position in hit_positions:
            if budget <= 0:
                break
            half = self.words_per_window // 2
            start = max(0, position - half)
            end = min(len(words), position + half + 1)
            window = [words[i] for i in range(start, end) if i not in used]
            used.update(range(start, end))
            if not window:
                continue
            take = window[:budget]
            budget -= len(take)
            pieces.append(" ".join(take))
        if not pieces:
            take = words[:size_bound]
            pieces.append(" ".join(take))
        return TextSnippet(result=result, text=" ... ".join(pieces), window_words=self.words_per_window)


# ---------------------------------------------------------------------- #
# first-K-edges baseline
# ---------------------------------------------------------------------- #
class FirstEdgesSnippetGenerator:
    """Shows the first ``size_bound`` edges of the result in document order."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer
        self._ilist_builder = IListBuilder(analyzer)

    def generate(
        self, result: QueryResult, size_bound: int, query: KeywordQuery | None = None
    ) -> GeneratedSnippet:
        if size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)
        effective_query = query or result.query
        ilist = self._ilist_builder.build(effective_query, result)
        snippet = Snippet(result)
        for node in result.iter_nodes():
            if node.dewey == result.root:
                continue
            if snippet.size_edges + snippet.cost_of(node.dewey) > size_bound:
                break
            item = IListItem(
                kind=ItemKind.ENTITY_NAME,
                text=node.tag,
                identity=f"first-edges:{node.dewey}",
                instances=[node.dewey],
            )
            snippet.add_instance(item, node.dewey)
        # Re-attribute coverage in terms of the real IList so quality
        # metrics compare like with like: an item counts as covered when
        # one of its instances happens to be inside the snippet.
        snippet.covered_items = [
            item
            for item in ilist
            if item.has_instances
            and any(snippet.contains_label(instance) for instance in item.instances)
        ]
        return GeneratedSnippet(result=result, ilist=ilist, snippet=snippet, size_bound=size_bound)


# ---------------------------------------------------------------------- #
# raw-frequency ablation baseline
# ---------------------------------------------------------------------- #
class _RawFrequencyIListBuilder(IListBuilder):
    """IList builder that ranks features by raw count, not dominance score."""

    def _feature_items(self, result, statistics):  # type: ignore[override]
        scored = self.dominant_identifier.score_all(result, statistics)
        # Raw-frequency ranking: order by N(e, a, v) alone and keep the same
        # number of feature items as the dominance-based IList would, so the
        # two pipelines only differ in *which* features they consider
        # important — the ablation the experiment A1 isolates.
        dominant_count = sum(1 for item in scored if statistics.is_dominant(item.feature))
        by_count = sorted(scored, key=lambda item: (-item.value_count, str(item.feature)))
        chosen = by_count[:dominant_count] if dominant_count else by_count[: len(by_count)]
        return [
            IListItem(
                kind=ItemKind.DOMINANT_FEATURE,
                text=item.display_value,
                identity=item.feature.value,
                instances=list(item.instances),
                score=float(item.value_count),
                feature=item,
            )
            for item in chosen
        ]


class RawFrequencySnippetGenerator:
    """eXtract pipeline with raw-frequency feature ranking (ablation A1)."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer
        self._ilist_builder = _RawFrequencyIListBuilder(analyzer)
        self._selector = GreedyInstanceSelector()

    def build_ilist(self, result: QueryResult, query: KeywordQuery | None = None) -> IList:
        return self._ilist_builder.build(query or result.query, result)

    def generate(
        self, result: QueryResult, size_bound: int, query: KeywordQuery | None = None
    ) -> GeneratedSnippet:
        if size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)
        ilist = self.build_ilist(result, query)
        snippet = self._selector.select(result, ilist, size_bound)
        return GeneratedSnippet(result=result, ilist=ilist, snippet=snippet, size_bound=size_bound)


# ---------------------------------------------------------------------- #
# random baseline
# ---------------------------------------------------------------------- #
class RandomSubtreeSnippetGenerator:
    """Adds random result nodes until the bound is reached (sanity floor)."""

    def __init__(self, analyzer: DataAnalyzer, seed: int = 0):
        self.analyzer = analyzer
        self._ilist_builder = IListBuilder(analyzer)
        self._seed = seed

    def generate(
        self, result: QueryResult, size_bound: int, query: KeywordQuery | None = None
    ) -> GeneratedSnippet:
        if size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)
        effective_query = query or result.query
        ilist = self._ilist_builder.build(effective_query, result)
        rng = random.Random(self._seed + result.result_id)
        snippet = Snippet(result)
        nodes = [node.dewey for node in result.iter_nodes() if node.dewey != result.root]
        rng.shuffle(nodes)
        for label in nodes:
            if snippet.size_edges >= size_bound:
                break
            if snippet.size_edges + snippet.cost_of(label) > size_bound:
                continue
            item = IListItem(
                kind=ItemKind.ENTITY_NAME,
                text=str(label),
                identity=f"random:{label}",
                instances=[label],
            )
            snippet.add_instance(item, label)
        snippet.covered_items = [
            item
            for item in ilist
            if item.has_instances
            and any(snippet.contains_label(instance) for instance in item.instances)
        ]
        return GeneratedSnippet(result=result, ilist=ilist, snippet=snippet, size_bound=size_bound)
