"""Features of a query result and their occurrence statistics (§2.3).

A *feature* is a triplet ``(entity name e, attribute name a, attribute
value v)``: entity ``e`` has an attribute ``a`` with value ``v``.  The pair
``(e, a)`` is the feature *type*; ``v`` is the feature *value*.

For a query result ``R`` the dominance score of a feature ``f = (e, a, v)``
is::

                         N(e, a, v)
    DS(f, R)  =  ─────────────────────────
                   N(e, a)  /  D(e, a)

where ``N(e, a, v)`` is the number of occurrences of the value, ``N(e, a)``
the total number of occurrences of the type and ``D(e, a)`` the number of
distinct values of the type inside ``R`` — i.e. the value's frequency
normalised by the average frequency of values of the same type.

This module extracts all features of a result together with the node
instances carrying each feature (needed later by the instance selector).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.classify.analyzer import DataAnalyzer
from repro.search.results import QueryResult
from repro.utils.text import normalize_value
from repro.xmltree.dewey import Dewey


@dataclass(frozen=True)
class Feature:
    """A feature triple ``(entity, attribute, value)``.

    The value is stored in normalised form (lower-cased, whitespace
    collapsed) so that ``Houston`` and ``houston`` are one feature; the
    display form of the first occurrence is kept separately by
    :class:`FeatureStatistics`.
    """

    entity: str
    attribute: str
    value: str

    @property
    def feature_type(self) -> tuple[str, str]:
        return (self.entity, self.attribute)

    def __str__(self) -> str:
        return f"({self.entity}, {self.attribute}, {self.value})"


@dataclass
class FeatureOccurrences:
    """All occurrences of one feature inside a query result."""

    feature: Feature
    display_value: str
    instances: list[Dewey] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.instances)


class FeatureStatistics:
    """Occurrence statistics of every feature of one query result.

    Provides exactly the quantities of §2.3: ``N(e, a, v)``, ``N(e, a)``,
    ``D(e, a)`` and the dominance score, plus the instance lists the
    instance selector needs.
    """

    def __init__(self) -> None:
        self._occurrences: dict[Feature, FeatureOccurrences] = {}
        self._type_counts: dict[tuple[str, str], int] = defaultdict(int)
        self._type_values: dict[tuple[str, str], set[str]] = defaultdict(set)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_occurrence(self, entity: str, attribute: str, raw_value: str, instance: Dewey) -> None:
        """Record one attribute instance carrying one feature value."""
        value = normalize_value(raw_value)
        if not value:
            return
        feature = Feature(entity=entity, attribute=attribute, value=value)
        entry = self._occurrences.get(feature)
        if entry is None:
            entry = FeatureOccurrences(feature=feature, display_value=raw_value.strip())
            self._occurrences[feature] = entry
        entry.instances.append(instance)
        self._type_counts[feature.feature_type] += 1
        self._type_values[feature.feature_type].add(value)

    # ------------------------------------------------------------------ #
    # §2.3 quantities
    # ------------------------------------------------------------------ #
    def value_count(self, feature: Feature) -> int:
        """``N(e, a, v)`` — occurrences of the feature value."""
        entry = self._occurrences.get(feature)
        return entry.count if entry else 0

    def type_count(self, entity: str, attribute: str) -> int:
        """``N(e, a)`` — total occurrences of the feature type."""
        return self._type_counts.get((entity, attribute), 0)

    def domain_size(self, entity: str, attribute: str) -> int:
        """``D(e, a)`` — number of distinct values of the feature type."""
        return len(self._type_values.get((entity, attribute), ()))

    def dominance_score(self, feature: Feature) -> float:
        """``DS(f, R)`` as defined in §2.3 (0.0 for unseen features)."""
        type_count = self.type_count(feature.entity, feature.attribute)
        if type_count == 0:
            return 0.0
        domain = self.domain_size(feature.entity, feature.attribute)
        average = type_count / domain
        return self.value_count(feature) / average

    def is_dominant(self, feature: Feature) -> bool:
        """Dominant iff ``DS > 1``, or trivially when the domain size is 1."""
        if feature not in self._occurrences:
            return False
        if self.domain_size(feature.entity, feature.attribute) == 1:
            return True
        return self.dominance_score(feature) > 1.0

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def features(self) -> list[Feature]:
        """All features seen in the result (unordered)."""
        return list(self._occurrences)

    def feature_types(self) -> list[tuple[str, str]]:
        return list(self._type_counts)

    def occurrences(self, feature: Feature) -> FeatureOccurrences | None:
        return self._occurrences.get(feature)

    def instances_of(self, feature: Feature) -> list[Dewey]:
        entry = self._occurrences.get(feature)
        return list(entry.instances) if entry else []

    def display_value(self, feature: Feature) -> str:
        entry = self._occurrences.get(feature)
        return entry.display_value if entry else feature.value

    def value_statistics(self) -> dict[tuple[str, str], list[tuple[str, int]]]:
        """Per feature type, the (value, count) list sorted by count.

        This is exactly the statistics panel of Figure 1 (``city: Houston:
        6`` etc.), used by the Figure 1 reproduction benchmark.
        """
        table: dict[tuple[str, str], list[tuple[str, int]]] = {}
        for feature, entry in self._occurrences.items():
            table.setdefault(feature.feature_type, []).append((entry.display_value, entry.count))
        for values in table.values():
            values.sort(key=lambda pair: (-pair[1], pair[0]))
        return table

    def __len__(self) -> int:
        return len(self._occurrences)

    def __contains__(self, feature: Feature) -> bool:
        return feature in self._occurrences

    def __repr__(self) -> str:
        return f"<FeatureStatistics features={len(self._occurrences)} types={len(self._type_counts)}>"


def extract_features(analyzer: DataAnalyzer, result: QueryResult) -> FeatureStatistics:
    """Extract the feature statistics of one query result.

    Every *attribute* instance inside the result subtree whose nearest
    ancestor entity also lies inside the result contributes one occurrence
    of the feature ``(owning entity tag, attribute tag, value)``.
    Attributes that hang off connection nodes only (no owning entity, e.g.
    directly under the document root) are attributed to the result root's
    tag so flat documents still produce features.
    """
    statistics = FeatureStatistics()
    root_tag = result.root_node.tag
    for node in result.iter_nodes():
        if not analyzer.is_attribute(node) or not node.has_text_value:
            continue
        owner = analyzer.owning_entity(node)
        if owner is not None and not result.contains_label(owner.dewey):
            # The owning entity lies outside the result (can only happen
            # when the result root sits below its entity); fall back to the
            # result root as the owner so the feature is still usable.
            owner = None
        entity_tag = owner.tag if owner is not None else root_tag
        # The attribute must describe its owner directly; nested entities
        # own their own attributes (a clothes' category is a clothes
        # feature, not a store feature), which the nearest-ancestor rule
        # already guarantees.
        statistics.add_occurrence(entity_tag, node.tag, node.text or "", node.dewey)
    return statistics
