"""Return Entity Identifier (§2.2, Figure 4).

Each query has a search goal.  The entities of a query result are split
into *return entities* (what the user is looking for) and *supporting
entities* (used to describe return entities).  The paper's heuristics:

* "an entity in a query result is a return entity if its name matches a
  keyword or its attribute name matches a keyword";
* "If there is no such entity, we use the highest entity (i.e. entities
  that do not have ancestor entities) in the query result as the default
  return entity."

The identifier works at the level of entity *types* present in the result
(the decision "retailer is the return entity" is about the type) while
also exposing the concrete return-entity instances, which the key
identifier needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.analyzer import DataAnalyzer, EntityType
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult
from repro.utils.text import normalize_token, singularize
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode


@dataclass
class ReturnEntityDecision:
    """The outcome of return-entity identification for one query result."""

    #: entity tags present in the result, in document order of first instance
    entities_in_result: list[str] = field(default_factory=list)
    #: the chosen return entity tags (usually one)
    return_entities: list[str] = field(default_factory=list)
    #: entity tags that are supporting entities
    supporting_entities: list[str] = field(default_factory=list)
    #: why each return entity was chosen: "name-match", "attribute-match" or "default-highest"
    reasons: dict[str, str] = field(default_factory=dict)
    #: concrete instances of the return entities inside the result
    return_instances: dict[str, list[Dewey]] = field(default_factory=dict)

    @property
    def primary(self) -> str | None:
        """The single most important return entity tag (first chosen)."""
        return self.return_entities[0] if self.return_entities else None

    def is_return_entity(self, tag: str) -> bool:
        return tag in self.return_entities

    def __repr__(self) -> str:
        return (
            f"<ReturnEntityDecision return={self.return_entities} "
            f"supporting={self.supporting_entities}>"
        )


class ReturnEntityIdentifier:
    """Implements the §2.2 return-entity heuristics."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer

    def identify(self, query: KeywordQuery, result: QueryResult) -> ReturnEntityDecision:
        """Classify the entities of ``result`` into return vs. supporting.

        The result root itself counts as an entity occurrence even when the
        schema cannot prove it repeats (a single ``retailer`` document):
        the root of a self-contained result plays the entity role for the
        purposes of the default-highest rule.
        """
        decision = ReturnEntityDecision()
        instances_by_tag: dict[str, list[XMLNode]] = {}
        for node in result.iter_nodes():
            if self.analyzer.is_entity(node) or node.dewey == result.root:
                instances_by_tag.setdefault(node.tag, []).append(node)
        decision.entities_in_result = sorted(
            instances_by_tag, key=lambda tag: instances_by_tag[tag][0].dewey
        )

        # Keyword comparison is plural-insensitive ("stores" finds <store>).
        keywords = {singularize(normalize_token(keyword)) for keyword in query.keywords}

        # Rule 1: entity name matches a keyword.
        for tag in decision.entities_in_result:
            if singularize(normalize_token(tag)) in keywords:
                decision.return_entities.append(tag)
                decision.reasons[tag] = "name-match"

        # Rule 2: an attribute name of the entity matches a keyword.
        if not decision.return_entities:
            for tag in decision.entities_in_result:
                if self._attribute_name_matches(tag, instances_by_tag[tag], keywords):
                    decision.return_entities.append(tag)
                    decision.reasons[tag] = "attribute-match"

        # Rule 3: default — the highest entities (no ancestor entity in the result).
        if not decision.return_entities:
            for tag in self._highest_entities(instances_by_tag):
                decision.return_entities.append(tag)
                decision.reasons[tag] = "default-highest"

        decision.supporting_entities = [
            tag for tag in decision.entities_in_result if tag not in decision.return_entities
        ]
        for tag in decision.return_entities:
            decision.return_instances[tag] = [node.dewey for node in instances_by_tag[tag]]
        return decision

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _attribute_name_matches(
        self, tag: str, instances: list[XMLNode], keywords: set[str]
    ) -> bool:
        entity_type: EntityType | None = self.analyzer.entity_type_by_tag(tag)
        attribute_tags: set[str] = set(entity_type.attribute_tags) if entity_type else set()
        # Also look at the concrete instances: a result may expose attribute
        # children the schema-wide entity type does not know about (e.g.
        # when the analyzer was built on a larger corpus).
        for instance in instances:
            for child in instance.children:
                if self.analyzer.is_attribute(child):
                    attribute_tags.add(child.tag)
        return any(singularize(normalize_token(attribute)) in keywords for attribute in attribute_tags)

    def _highest_entities(self, instances_by_tag: dict[str, list[XMLNode]]) -> list[str]:
        """Entity tags whose instances have no ancestor entity in the result."""
        if not instances_by_tag:
            return []
        all_entity_labels = {
            node.dewey for nodes in instances_by_tag.values() for node in nodes
        }
        highest: list[tuple[Dewey, str]] = []
        for tag, nodes in instances_by_tag.items():
            for node in nodes:
                has_entity_ancestor = any(
                    ancestor.dewey in all_entity_labels for ancestor in node.iter_ancestors()
                )
                if not has_entity_ancestor:
                    highest.append((node.dewey, tag))
                    break
        highest.sort()
        seen: set[str] = set()
        ordered: list[str] = []
        for _, tag in highest:
            if tag not in seen:
                seen.add(tag)
                ordered.append(tag)
        return ordered
