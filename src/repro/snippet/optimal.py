"""An exact (exponential-time) instance selector.

§2.4 proves that maximising the number of IList items captured within a
bounded-size snippet is NP-hard; the greedy algorithm is the practical
answer.  To *validate* the greedy algorithm (experiment E4: "how close to
optimal is greedy?") we also implement an exact branch-and-bound search
that is feasible for the small results and bounds used in that experiment.

The objective mirrors the paper's goal hierarchy: primarily maximise the
number of covered items, breaking ties in favour of covering the more
important (earlier) items, and then in favour of smaller snippets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidSizeBoundError, SnippetError
from repro.search.results import QueryResult
from repro.snippet.ilist import IList, IListItem
from repro.snippet.snippet_tree import Snippet
from repro.xmltree.dewey import Dewey
from repro.xmltree.order import is_ancestor_or_self

#: hard cap on the size of the search space accepted by the exact selector;
#: beyond this the caller should be using the greedy algorithm anyway.
MAX_SEARCH_NODES = 2_000_000


@dataclass
class _SearchState:
    covered: list[tuple[IListItem, Dewey]]
    node_labels: frozenset[Dewey]

    @property
    def edges(self) -> int:
        return len(self.node_labels) - 1


class OptimalInstanceSelector:
    """Exhaustive branch-and-bound over item/instance choices."""

    def __init__(self, max_instances_per_item: int = 8, max_search_nodes: int = MAX_SEARCH_NODES):
        #: per item, only the ``max_instances_per_item`` instances closest to
        #: the result root are branched on; the greedy algorithm has the
        #: same candidates available, so the comparison stays fair.
        self.max_instances_per_item = max_instances_per_item
        self.max_search_nodes = max_search_nodes
        self._expanded = 0

    def select(self, result: QueryResult, ilist: IList, size_bound: int) -> Snippet:
        """Return an optimal snippet (maximum covered items) within the bound."""
        if not isinstance(size_bound, int) or isinstance(size_bound, bool) or size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)

        items = [item for item in ilist if item.has_instances]
        candidate_instances = [self._candidates(result, item) for item in items]

        self._expanded = 0
        best: _SearchState | None = None
        root_only = frozenset({result.root})

        def better(candidate: _SearchState, incumbent: _SearchState | None) -> bool:
            if incumbent is None:
                return True
            if len(candidate.covered) != len(incumbent.covered):
                return len(candidate.covered) > len(incumbent.covered)
            candidate_rank = sorted(self._rank_of(ilist, item) for item, _ in candidate.covered)
            incumbent_rank = sorted(self._rank_of(ilist, item) for item, _ in incumbent.covered)
            if candidate_rank != incumbent_rank:
                return candidate_rank < incumbent_rank
            return candidate.edges < incumbent.edges

        def search(index: int, state: _SearchState) -> None:
            nonlocal best
            self._expanded += 1
            if self._expanded > self.max_search_nodes:
                raise SnippetError(
                    "optimal instance selection exceeded the search budget; "
                    "use the greedy selector for inputs of this size"
                )
            if better(state, best):
                best = state
            if index >= len(items):
                return
            remaining = len(items) - index
            if best is not None and len(state.covered) + remaining < len(best.covered):
                return  # cannot beat the incumbent even covering everything left

            item = items[index]
            # Branch 1..n: cover the item with one of its candidate instances.
            for instance in candidate_instances[index]:
                path = self._path_labels(result.root, instance)
                new_labels = state.node_labels | frozenset(path)
                if len(new_labels) - 1 <= size_bound:
                    search(
                        index + 1,
                        _SearchState(
                            covered=state.covered + [(item, instance)],
                            node_labels=new_labels,
                        ),
                    )
            # Branch 0: skip the item.
            search(index + 1, state)

        search(0, _SearchState(covered=[], node_labels=root_only))

        assert best is not None  # the empty selection is always feasible
        snippet = Snippet(result)
        for item, instance in best.covered:
            snippet.add_instance(item, instance)
        return snippet

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _candidates(self, result: QueryResult, item: IListItem) -> list[Dewey]:
        valid = [
            label
            for label in item.instances
            if is_ancestor_or_self(result.root, label, result.source.order)
        ]
        valid.sort(key=lambda label: (label.depth, label))
        return valid[: self.max_instances_per_item]

    @staticmethod
    def _path_labels(root: Dewey, instance: Dewey) -> list[Dewey]:
        return [instance.prefix(depth) for depth in range(root.depth, instance.depth + 1)]

    @staticmethod
    def _rank_of(ilist: IList, item: IListItem) -> int:
        for rank, candidate in enumerate(ilist):
            if candidate is item:
                return rank
        return len(ilist.items)

    @property
    def expanded_states(self) -> int:
        """Number of search states expanded by the last :meth:`select` call."""
        return self._expanded
