"""The greedy Instance Selector (§2.4, Figure 4).

"Given a snippet size bound, eXtract aims at including as many items in
IList as possible in the order of their significance, by carefully
selecting the instances of each item from the query result.  Intuitively,
we should select instances of each item such that they are close to each
other, so as to occupy a small space and leave room to include more items."

The underlying optimisation problem (choose one instance per covered item
so that the union of root-to-instance paths has at most *B* edges and the
number of covered items is maximal, covering more-important items first)
is NP-hard (§2.4); the greedy strategy implemented here is the practical
algorithm the paper describes:

* walk the IList in its ranked order,
* for each item, pick the instance whose addition to the current snippet
  tree is *cheapest* (fewest new edges; ties broken by document order) —
  this is the "choose outwear3 rather than outwear4" behaviour of §2.4,
* add it if the snippet stays within the bound, otherwise skip the item
  and keep trying less important items (they may still fit in the
  remaining space).

Two ablation strategies (first-instance and random-instance) are provided
for experiment A2, which quantifies how much the "closest instance" choice
matters.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.errors import InvalidSizeBoundError
from repro.search.results import QueryResult
from repro.snippet.ilist import IList
from repro.snippet.snippet_tree import Snippet
from repro.xmltree.order import is_ancestor_or_self


class SelectionStrategy(str, Enum):
    """How the instance of an IList item is chosen among the candidates."""

    #: the instance adding the fewest new edges (the paper's strategy)
    GREEDY_CLOSEST = "greedy_closest"
    #: the first instance in document order, regardless of cost
    FIRST_INSTANCE = "first_instance"
    #: a uniformly random instance (seeded; ablation baseline)
    RANDOM_INSTANCE = "random_instance"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class GreedyInstanceSelector:
    """Builds a snippet from an IList under an edge-count bound."""

    def __init__(
        self,
        strategy: SelectionStrategy = SelectionStrategy.GREEDY_CLOSEST,
        skip_unfitting_items: bool = True,
        random_seed: int = 0,
    ):
        self.strategy = strategy
        #: when False, selection stops at the first item that does not fit
        #: (strictly rank-ordered truncation); when True (default), items
        #: that do not fit are skipped and later, cheaper items may still
        #: be included — maximising the number of covered items.
        self.skip_unfitting_items = skip_unfitting_items
        self._random = random.Random(random_seed)

    def select(self, result: QueryResult, ilist: IList, size_bound: int) -> Snippet:
        """Build the snippet of ``result`` for the given ``size_bound``.

        The bound counts edges; it must be a positive integer (a zero-edge
        snippet would contain only the result root and carry no
        information).
        """
        if not isinstance(size_bound, int) or isinstance(size_bound, bool) or size_bound <= 0:
            raise InvalidSizeBoundError(size_bound)

        snippet = Snippet(result)
        for item in ilist:
            if not item.has_instances:
                continue
            if snippet.covers(item.identity):
                # A previous item with the same identity already covered it
                # (cannot normally happen — the IList de-duplicates — but a
                # hand-built IList may repeat identities).
                continue
            chosen = self._choose_instance(snippet, item.instances)
            if chosen is None:
                continue
            instance, cost = chosen
            if snippet.size_edges + cost > size_bound:
                if self.skip_unfitting_items:
                    continue
                break
            snippet.add_instance(item, instance)
        return snippet

    # ------------------------------------------------------------------ #
    # instance choice strategies
    # ------------------------------------------------------------------ #
    def _choose_instance(self, snippet: Snippet, instances: list):
        valid = [
            label
            for label in instances
            if is_ancestor_or_self(snippet.root, label, snippet.result.source.order)
        ]
        if not valid:
            return None
        if self.strategy == SelectionStrategy.GREEDY_CLOSEST:
            return snippet.cheapest_instance(valid)
        if self.strategy == SelectionStrategy.FIRST_INSTANCE:
            instance = min(valid)
            return instance, snippet.cost_of(instance)
        instance = self._random.choice(sorted(valid))
        return instance, snippet.cost_of(instance)

    def __repr__(self) -> str:
        return f"<GreedyInstanceSelector strategy={self.strategy.value}>"
