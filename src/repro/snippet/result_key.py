"""Query Result Key Identifier (§2.2, Figure 4).

"The Query Result Key Identifier finds the key value of the return entity,
which serves as the key of the query result to distinguish different query
results."  In the running example, the key of the ``retailer`` return
entity is its ``name`` attribute, so the key of the result is the value
``Brook Brothers``.

When the return entity type has no mined key attribute (see
:class:`repro.classify.keys.KeyMiner`), the identifier falls back to the
first attribute child of the return entity instance — a snippet with *some*
identifying value is strictly better than one with none.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.analyzer import DataAnalyzer
from repro.search.results import QueryResult
from repro.snippet.return_entity import ReturnEntityDecision
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode


@dataclass
class ResultKey:
    """The key of one query result."""

    entity_tag: str
    attribute_tag: str
    value: str
    #: the attribute node instances carrying the key value inside the result
    instances: list[Dewey]
    #: whether the key attribute came from key mining or from the fallback
    mined: bool = True

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"<ResultKey {self.entity_tag}.{self.attribute_tag}={self.value!r}>"


class QueryResultKeyIdentifier:
    """Finds the key value(s) of the return entity inside one result."""

    def __init__(self, analyzer: DataAnalyzer):
        self.analyzer = analyzer

    def identify(self, result: QueryResult, decision: ReturnEntityDecision) -> list[ResultKey]:
        """Key values of the return entity instances, in document order.

        A result normally has one return-entity instance and therefore one
        key; when the return entity occurs several times inside one result
        (e.g. the default-highest rule picked a repeated entity), one key
        per distinct value is reported, first instance first — the IList
        builder will take the first.
        """
        keys: list[ResultKey] = []
        seen_values: set[str] = set()
        for tag in decision.return_entities:
            key_attribute = self._key_attribute_for(tag)
            for label in decision.return_instances.get(tag, []):
                instance = result.source.node(label)
                key = self._key_of_instance(instance, tag, key_attribute)
                if key is None:
                    continue
                marker = (key.entity_tag, key.attribute_tag, key.value.lower())
                if marker in seen_values:
                    # merge instances of the same key value
                    for existing in keys:
                        if (existing.entity_tag, existing.attribute_tag, existing.value.lower()) == marker:
                            existing.instances.extend(key.instances)
                    continue
                seen_values.add(marker)
                keys.append(key)
        return keys

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _key_attribute_for(self, entity_tag: str) -> str | None:
        entity_type = self.analyzer.entity_type_by_tag(entity_tag)
        if entity_type is not None and entity_type.key is not None:
            return entity_type.key.attribute_tag
        return None

    def _key_of_instance(
        self, instance: XMLNode, entity_tag: str, key_attribute: str | None
    ) -> ResultKey | None:
        if key_attribute is not None:
            child = instance.find_child(key_attribute)
            if child is not None and child.has_text_value:
                return ResultKey(
                    entity_tag=entity_tag,
                    attribute_tag=key_attribute,
                    value=child.text or "",
                    instances=[child.dewey],
                    mined=True,
                )
        # Fallback: the first attribute child with a value.
        for child in instance.children:
            if self.analyzer.is_attribute(child) and child.has_text_value:
                return ResultKey(
                    entity_tag=entity_tag,
                    attribute_tag=child.tag,
                    value=child.text or "",
                    instances=[child.dewey],
                    mined=False,
                )
        return None
