"""The running example of the paper (Figures 1-3), reconstructed exactly.

Figure 1 shows part of the query result of "Texas, apparel, retailer" plus
the value-occurrence statistics of the *whole* result:

=============  ==========================================================
feature type   value occurrences inside the query result
=============  ==========================================================
(store, city)      Houston: 6, Austin: 1, other cities (3): 3
(clothes, fitting)  man: 600, woman: 360, children: 40
(clothes, situation) casual: 700, formal: 300
(clothes, category)  outwear: 220, suit: 120, skirt: 80, sweaters: 70,
                     other categories (7): 580
=============  ==========================================================

§2.3 derives from these: DS(Houston) = 6/(10/5) = 3.0 and the dominance
scores of man, woman, casual, outwear and suit are 1.8, 1.1, 1.4, 2.2 and
1.2; Figure 3 gives the IList.  This module generates a document whose
"Brook Brothers" query result reproduces those statistics *exactly*, so the
golden tests and the F1–F3 benchmarks can compare against the published
numbers.

The document also contains a second Texas apparel retailer (so the query
has more than one result, as a snippet system requires) and a non-matching
distractor retailer.
"""

from __future__ import annotations

from repro.datasets.base import DatasetRandom, spread_counts
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

#: the query of the running example
FIGURE1_QUERY = "Texas, apparel, retailer"

#: Figure 3, normalised to lower case for comparison
FIGURE1_EXPECTED_ILIST: tuple[str, ...] = (
    "texas",
    "apparel",
    "retailer",
    "clothes",
    "store",
    "brook brothers",
    "houston",
    "outwear",
    "man",
    "casual",
    "suit",
    "woman",
)

#: dominance scores as printed in §2.3 (rounded to one decimal by the paper)
FIGURE1_EXPECTED_SCORES: dict[str, float] = {
    "houston": 3.0,
    "outwear": 2.2,
    "man": 1.8,
    "casual": 1.4,
    "suit": 1.2,
    "woman": 1.1,
}

#: Figure 1 statistics used to build the document
_CITY_COUNTS: tuple[tuple[str, int], ...] = (
    ("Houston", 6),
    ("Austin", 1),
    ("Dallas", 1),
    ("San Antonio", 1),
    ("El Paso", 1),
)
_FITTING_COUNTS: tuple[tuple[str, int], ...] = (("man", 600), ("woman", 360), ("children", 40))
_SITUATION_COUNTS: tuple[tuple[str, int], ...] = (("casual", 700), ("formal", 300))
_CATEGORY_COUNTS: tuple[tuple[str, int], ...] = (
    ("outwear", 220),
    ("suit", 120),
    ("skirt", 80),
    ("sweaters", 70),
    # seven further categories totalling 580 occurrences
    ("jeans", 83),
    ("shirts", 83),
    ("dresses", 83),
    ("jackets", 83),
    ("shorts", 83),
    ("socks", 83),
    ("scarves", 82),
)

_STORE_NAMES: tuple[str, ...] = (
    "Galleria",
    "West Village",
    "Bayou Place",
    "Memorial Mall",
    "River Oaks",
    "Uptown Park",
    "Highland Court",
    "Sunset Plaza",
    "Market Square",
    "Lakeside Center",
)


def figure1_query() -> str:
    """The running-example query string."""
    return FIGURE1_QUERY


def _expand(counts: tuple[tuple[str, int], ...]) -> list[str]:
    values: list[str] = []
    for value, count in counts:
        values.extend([value] * count)
    return values


def figure1_document(seed: int = 7, name: str = "figure1") -> XMLTree:
    """Build the Figure 1 document.

    The Brook Brothers retailer carries exactly the published statistics;
    a second matching retailer and a distractor make the query behave like
    a real multi-result search.

    >>> tree = figure1_document()
    >>> len(tree.find_by_tag("store")) >= 10
    True
    """
    rng = DatasetRandom(seed)

    cities = _expand(_CITY_COUNTS)  # one entry per store, len == 10
    fittings = _expand(_FITTING_COUNTS)  # 1000 entries
    situations = _expand(_SITUATION_COUNTS)  # 1000 entries
    categories = _expand(_CATEGORY_COUNTS)  # 1070 entries

    # Shuffle value assignments deterministically so values are spread over
    # the stores rather than clustered; counts (and hence every statistic
    # of Figure 1) are unaffected.
    rng.shuffle(fittings)
    rng.shuffle(situations)
    rng.shuffle(categories)

    # 70 clothes have a category but no fitting/situation (N(category)=1070
    # vs N(fitting)=N(situation)=1000); mark which ones by index.
    total_clothes = len(categories)
    clothes_per_store = spread_counts(total_clothes, len(cities))

    builder = TreeBuilder("commerce", name=name)

    with builder.element("retailer"):
        builder.add_value("name", "Brook Brothers")
        builder.add_value("product", "apparel")
        clothes_cursor = 0
        optional_cursor = 0  # index into fittings/situations (length 1000)
        for store_index, city in enumerate(cities):
            with builder.element("store"):
                builder.add_value("name", _STORE_NAMES[store_index])
                builder.add_value("state", "Texas")
                builder.add_value("city", city)
                with builder.element("merchandises"):
                    for _ in range(clothes_per_store[store_index]):
                        with builder.element("clothes"):
                            builder.add_value("category", categories[clothes_cursor])
                            if optional_cursor < len(fittings):
                                builder.add_value("fitting", fittings[optional_cursor])
                                builder.add_value("situation", situations[optional_cursor])
                                optional_cursor += 1
                            clothes_cursor += 1

    # A second Texas apparel retailer: the query returns it as well, which
    # is what makes snippets useful (Figure 5 shows several results).
    with builder.element("retailer"):
        builder.add_value("name", "Lone Star Apparel")
        builder.add_value("product", "apparel")
        for store_name, city in (("Sixth Street", "Austin"), ("Alamo Plaza", "San Antonio")):
            with builder.element("store"):
                builder.add_value("name", store_name)
                builder.add_value("state", "Texas")
                builder.add_value("city", city)
                with builder.element("merchandises"):
                    for _ in range(6):
                        with builder.element("clothes"):
                            builder.add_value("category", rng.pick(["jeans", "shirts", "outwear"]))
                            builder.add_value("fitting", rng.pick(["man", "woman"]))
                            builder.add_value("situation", rng.pick(["casual", "formal"]))

    # A distractor retailer that does not match the query (wrong product,
    # wrong state): it must never show up in the result set.
    with builder.element("retailer"):
        builder.add_value("name", "Pacific Electronics")
        builder.add_value("product", "electronics")
        with builder.element("store"):
            builder.add_value("name", "Bayfront")
            builder.add_value("state", "California")
            builder.add_value("city", "San Diego")
            with builder.element("merchandises"):
                with builder.element("clothes"):
                    builder.add_value("category", "jackets")
                    builder.add_value("fitting", "man")
                    builder.add_value("situation", "casual")

    return builder.build()


def figure1_statistics() -> dict[tuple[str, str], dict[str, int]]:
    """The Figure 1 statistics table (ground truth for tests/benchmarks)."""
    return {
        ("store", "city"): {value.lower(): count for value, count in _CITY_COUNTS},
        ("clothes", "fitting"): {value: count for value, count in _FITTING_COUNTS},
        ("clothes", "situation"): {value: count for value, count in _SITUATION_COUNTS},
        ("clothes", "category"): {value: count for value, count in _CATEGORY_COUNTS},
    }
