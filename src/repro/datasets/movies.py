"""Movie database generator (the "movies" demo scenario of §4).

Structure::

    cinema
      movie*
        title, year, genre, rating, studio
        actor*           (name, role)
        review*          (reviewer, score)

Movies are entities with a ``title`` key; actors and reviews are nested
entities, so queries such as "drama 2005" or "<actor name>" produce result
trees with multiple entity levels — the situation where snippets are most
useful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetRandom, MOVIE_GENRES, require_positive
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

_STUDIOS: tuple[str, ...] = (
    "Blue Lantern Pictures",
    "North Gate Films",
    "Silver Arch Studios",
    "Cedar Grove Media",
    "Atlas Bay Productions",
)

_ROLES: tuple[str, ...] = ("lead", "supporting", "cameo", "narrator")


@dataclass
class MoviesConfig:
    """Parameters of the movie document generator."""

    movies: int = 40
    actors_per_movie: int = 4
    reviews_per_movie: int = 3
    year_range: tuple[int, int] = (1995, 2008)
    #: skew of the genre distribution (dominant genres emerge)
    skew: float = 1.3
    seed: int = 23

    def validate(self) -> "MoviesConfig":
        require_positive("movies", self.movies)
        require_positive("actors_per_movie", self.actors_per_movie)
        require_positive("reviews_per_movie", self.reviews_per_movie)
        if self.year_range[0] > self.year_range[1]:
            raise ValueError("year_range must be (low, high)")
        return self


def generate_movies_document(config: MoviesConfig | None = None, name: str = "movies") -> XMLTree:
    """Generate a movie database document.

    >>> tree = generate_movies_document(MoviesConfig(movies=3, seed=1))
    >>> len(tree.find_by_tag("movie"))
    3
    """
    config = (config or MoviesConfig()).validate()
    rng = DatasetRandom(config.seed)
    builder = TreeBuilder("cinema", name=name)

    #: a pool of recurring actors so that actor-name queries hit several movies
    actor_pool = [rng.person_name() for _ in range(max(8, config.movies // 2))]

    for movie_index in range(config.movies):
        with builder.element("movie"):
            builder.add_value("title", f"{rng.name_phrase(2)} {movie_index + 1}")
            builder.add_value("year", rng.randint(*config.year_range))
            builder.add_value("genre", rng.skewed_pick(MOVIE_GENRES, config.skew))
            builder.add_value("rating", f"{rng.uniform(4.0, 9.5):.1f}")
            builder.add_value("studio", rng.skewed_pick(_STUDIOS, config.skew))
            for _ in range(config.actors_per_movie):
                with builder.element("actor"):
                    builder.add_value("name", rng.skewed_pick(actor_pool, 1.05))
                    builder.add_value("role", rng.pick(_ROLES))
            for _ in range(config.reviews_per_movie):
                with builder.element("review"):
                    builder.add_value("reviewer", rng.person_name())
                    builder.add_value("score", rng.randint(1, 10))
    return builder.build()
