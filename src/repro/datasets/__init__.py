"""Synthetic dataset generators.

The demo scenarios are "movies and stores" (§4); the running example is the
retailer/store/clothes document of Figure 1.  The authors' actual data files
are not available, so this package generates documents with the same
structural shape (see DESIGN.md, substitutions):

* :mod:`repro.datasets.paper_example` — the Figure 1 document, constructed
  so that the published value-occurrence statistics and dominance scores
  hold exactly,
* :mod:`repro.datasets.retail` — parametric retailer/store/clothes data
  (drives the Figure 5 walk-through and the efficiency sweeps),
* :mod:`repro.datasets.movies` — a movie database (demo scenario),
* :mod:`repro.datasets.auctions` — an XMark-style auction site used for
  the document-size scaling experiments,
* :mod:`repro.datasets.bibliography` — a DBLP-style bibliography used for
  workloads with deeper nesting and many small entities.
"""

from repro.datasets.paper_example import (
    figure1_document,
    figure1_query,
    FIGURE1_EXPECTED_ILIST,
    FIGURE1_EXPECTED_SCORES,
)
from repro.datasets.retail import RetailConfig, generate_retail_document, figure5_document
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.auctions import AuctionConfig, generate_auction_document
from repro.datasets.bibliography import BibliographyConfig, generate_bibliography_document

__all__ = [
    "figure1_document",
    "figure1_query",
    "FIGURE1_EXPECTED_ILIST",
    "FIGURE1_EXPECTED_SCORES",
    "RetailConfig",
    "generate_retail_document",
    "figure5_document",
    "MoviesConfig",
    "generate_movies_document",
    "AuctionConfig",
    "generate_auction_document",
    "BibliographyConfig",
    "generate_bibliography_document",
]
