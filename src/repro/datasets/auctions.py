"""XMark-style auction site generator.

XMark is the standard scalable XML benchmark; the companion evaluation of
eXtract sweeps document size, so this generator produces auction documents
whose size is controlled by a single ``scale`` knob (experiments E3/E7).

Structure::

    site
      regions
        region*            (name)
          item*            (name, category, price, quantity, location, description)
      people
        person*            (name, city, country, email)
      auctions
        auction*           (itemref, seller, buyer, price, date)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetRandom, US_CITIES, require_positive
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

_REGIONS: tuple[str, ...] = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_CATEGORIES: tuple[str, ...] = (
    "books", "music", "garden", "electronics", "furniture", "sports",
    "jewelry", "toys", "antiques", "photography",
)
_COUNTRIES: tuple[str, ...] = (
    "United States", "Germany", "Japan", "Brazil", "Canada", "France", "Australia",
)


@dataclass
class AuctionConfig:
    """Parameters of the auction-site generator."""

    #: overall size knob; items/people/auctions scale linearly with it
    scale: int = 10
    items_per_region: int = 5
    seed: int = 31

    def validate(self) -> "AuctionConfig":
        require_positive("scale", self.scale)
        require_positive("items_per_region", self.items_per_region)
        return self

    @property
    def total_items(self) -> int:
        return len(_REGIONS) * self.items_per_region * self.scale

    @property
    def total_people(self) -> int:
        return 4 * self.scale

    @property
    def total_auctions(self) -> int:
        return 6 * self.scale


def generate_auction_document(config: AuctionConfig | None = None, name: str = "auctions") -> XMLTree:
    """Generate an auction-site document.

    >>> tree = generate_auction_document(AuctionConfig(scale=1, items_per_region=1, seed=2))
    >>> tree.root.tag
    'site'
    """
    config = (config or AuctionConfig()).validate()
    rng = DatasetRandom(config.seed)
    builder = TreeBuilder("site", name=name)

    item_names: list[str] = []
    with builder.element("regions"):
        for region in _REGIONS:
            with builder.element("region"):
                builder.add_value("name", region)
                for _ in range(config.items_per_region * config.scale):
                    item_name = rng.name_phrase(2)
                    item_names.append(item_name)
                    with builder.element("item"):
                        builder.add_value("name", item_name)
                        builder.add_value("category", rng.skewed_pick(_CATEGORIES, 1.3))
                        builder.add_value("price", f"{rng.uniform(5, 500):.2f}")
                        builder.add_value("quantity", rng.randint(1, 10))
                        builder.add_value("location", rng.skewed_pick(US_CITIES, 1.2))
                        builder.add_value(
                            "description",
                            f"{rng.pick(_CATEGORIES)} {rng.name_phrase(3).lower()}",
                        )

    person_names = [rng.person_name() for _ in range(config.total_people)]
    with builder.element("people"):
        for person_name in person_names:
            with builder.element("person"):
                builder.add_value("name", person_name)
                builder.add_value("city", rng.skewed_pick(US_CITIES, 1.2))
                builder.add_value("country", rng.skewed_pick(_COUNTRIES, 1.4))
                builder.add_value("email", person_name.lower().replace(" ", ".") + "@example.com")

    with builder.element("auctions"):
        for _ in range(config.total_auctions):
            with builder.element("auction"):
                builder.add_value("itemref", rng.pick(item_names))
                builder.add_value("seller", rng.pick(person_names))
                builder.add_value("buyer", rng.pick(person_names))
                builder.add_value("price", f"{rng.uniform(5, 800):.2f}")
                builder.add_value("date", f"{rng.randint(2005, 2008)}-{rng.randint(1, 12):02d}")
    return builder.build()
