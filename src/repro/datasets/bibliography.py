"""DBLP-style bibliography generator.

Bibliography data is the classic XML keyword-search workload (XSearch,
XRANK and XSeek all evaluate on DBLP-like data): many small entities
(papers) with repeated sub-entities (authors) and shared values (venues,
years) that make dominant features meaningful ("most papers of this author
are in VLDB").

Structure::

    dblp
      conference*        (name)
        paper*           (title, year, pages)
          author*        (name, affiliation)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetRandom, require_positive
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

_VENUES: tuple[str, ...] = ("VLDB", "SIGMOD", "ICDE", "CIKM", "EDBT", "WWW")
_AFFILIATIONS: tuple[str, ...] = (
    "Arizona State University",
    "University of Michigan",
    "Cornell University",
    "UC San Diego",
    "Tsinghua University",
    "Max Planck Institute",
)
_TOPIC_WORDS: tuple[str, ...] = (
    "keyword", "search", "XML", "snippet", "ranking", "index", "query",
    "semantics", "schema", "stream", "join", "twig", "graph", "cache",
)


@dataclass
class BibliographyConfig:
    """Parameters of the bibliography generator."""

    conferences: int = 4
    papers_per_conference: int = 25
    max_authors: int = 4
    year_range: tuple[int, int] = (2000, 2008)
    seed: int = 47

    def validate(self) -> "BibliographyConfig":
        require_positive("conferences", self.conferences)
        require_positive("papers_per_conference", self.papers_per_conference)
        require_positive("max_authors", self.max_authors)
        return self


def generate_bibliography_document(
    config: BibliographyConfig | None = None, name: str = "bibliography"
) -> XMLTree:
    """Generate a bibliography document.

    >>> tree = generate_bibliography_document(BibliographyConfig(conferences=2,
    ...                                                          papers_per_conference=3, seed=1))
    >>> len(tree.find_by_tag("paper"))
    6
    """
    config = (config or BibliographyConfig()).validate()
    rng = DatasetRandom(config.seed)
    builder = TreeBuilder("dblp", name=name)

    #: recurring author pool so author queries match several papers
    author_pool = [rng.person_name() for _ in range(12 + config.conferences * 4)]

    for conference_index in range(config.conferences):
        venue = _VENUES[conference_index % len(_VENUES)]
        with builder.element("conference"):
            builder.add_value("name", venue)
            for paper_index in range(config.papers_per_conference):
                words = [rng.pick(_TOPIC_WORDS) for _ in range(3)]
                title = f"{' '.join(words).capitalize()} {conference_index}-{paper_index}"
                with builder.element("paper"):
                    builder.add_value("title", title)
                    builder.add_value("year", rng.randint(*config.year_range))
                    builder.add_value("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
                    for _ in range(rng.randint(1, config.max_authors)):
                        with builder.element("author"):
                            builder.add_value("name", rng.skewed_pick(author_pool, 1.1))
                            builder.add_value("affiliation", rng.skewed_pick(_AFFILIATIONS, 1.2))
    return builder.build()
