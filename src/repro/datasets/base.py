"""Shared helpers for the synthetic dataset generators.

All generators are deterministic: they take an explicit ``seed`` and draw
every random choice from their own ``random.Random`` instance, so tests,
benchmarks and examples always see the same documents.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import DatasetError

#: word pool used to synthesise names, titles and descriptions
WORD_POOL: tuple[str, ...] = (
    "amber", "arch", "atlas", "bay", "beacon", "birch", "blue", "bright",
    "canyon", "cedar", "cliff", "coral", "crest", "delta", "drift", "ember",
    "fable", "fern", "flint", "gale", "glen", "golden", "harbor", "hazel",
    "ivory", "jade", "juniper", "lark", "linden", "lumen", "maple", "meadow",
    "mesa", "misty", "noble", "north", "oak", "ocean", "onyx", "opal",
    "pearl", "pine", "prairie", "quartz", "raven", "ridge", "river", "rose",
    "sage", "shadow", "silver", "sky", "slate", "solar", "spruce", "stone",
    "summit", "thistle", "timber", "topaz", "valley", "vista", "willow", "wren",
)

US_CITIES: tuple[str, ...] = (
    "Houston", "Austin", "Dallas", "San Antonio", "El Paso", "Fort Worth",
    "Phoenix", "Denver", "Seattle", "Portland", "Chicago", "Boston",
    "Atlanta", "Miami", "Nashville", "Memphis", "Tucson", "Omaha",
)

US_STATES: tuple[str, ...] = (
    "Texas", "Arizona", "Colorado", "Washington", "Oregon", "Illinois",
    "Massachusetts", "Georgia", "Florida", "Tennessee", "Nebraska", "California",
)

CLOTHES_CATEGORIES: tuple[str, ...] = (
    "outwear", "suit", "skirt", "sweaters", "jeans", "shirts", "dresses",
    "jackets", "shorts", "socks", "scarves",
)

FITTINGS: tuple[str, ...] = ("man", "woman", "children")
SITUATIONS: tuple[str, ...] = ("casual", "formal")

MOVIE_GENRES: tuple[str, ...] = (
    "drama", "comedy", "thriller", "action", "romance", "documentary",
    "animation", "horror", "western",
)

FIRST_NAMES: tuple[str, ...] = (
    "Alice", "Bruno", "Carla", "Diego", "Elena", "Felix", "Grace", "Hugo",
    "Iris", "Jonas", "Klara", "Liam", "Mona", "Nils", "Olga", "Pablo",
    "Quinn", "Rosa", "Sven", "Tara",
)

LAST_NAMES: tuple[str, ...] = (
    "Abbott", "Becker", "Cortez", "Dalton", "Eriksen", "Fischer", "Garner",
    "Hobbs", "Ivanov", "Jensen", "Keller", "Lowell", "Mercer", "Novak",
    "Olsen", "Porter", "Quincy", "Reyes", "Sawyer", "Turner",
)


class DatasetRandom(random.Random):
    """A seeded RNG with convenience draws used by all generators."""

    def pick(self, pool: Sequence[str]) -> str:
        """Uniform choice from a non-empty pool."""
        if not pool:
            raise DatasetError("cannot pick from an empty pool")
        return self.choice(list(pool))

    def name_phrase(self, words: int = 2) -> str:
        """A capitalised multi-word name such as ``Amber Ridge``."""
        picked = [self.pick(WORD_POOL).capitalize() for _ in range(max(1, words))]
        return " ".join(picked)

    def person_name(self) -> str:
        return f"{self.pick(FIRST_NAMES)} {self.pick(LAST_NAMES)}"

    def skewed_index(self, size: int, skew: float = 1.1) -> int:
        """A Zipf-like index in ``[0, size)``; small indexes are frequent.

        Used to make value distributions realistically skewed so dominant
        features exist: the most popular value of a feature type occurs far
        more often than the tail values.
        """
        if size <= 0:
            raise DatasetError("skewed_index() requires a positive size")
        if size == 1:
            return 0
        # Inverse-CDF sampling of a truncated power law.
        u = self.random()
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(size)]
        total = sum(weights)
        cumulative = 0.0
        for rank, weight in enumerate(weights):
            cumulative += weight / total
            if u <= cumulative:
                return rank
        return size - 1

    def skewed_pick(self, pool: Sequence[str], skew: float = 1.1) -> str:
        return pool[self.skewed_index(len(pool), skew)]


def require_positive(name: str, value: int) -> int:
    """Validate a generator parameter."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise DatasetError(f"{name} must be a positive integer, got {value!r}")
    return value


def spread_counts(total: int, buckets: int) -> list[int]:
    """Split ``total`` into ``buckets`` near-equal integer parts."""
    if buckets <= 0:
        raise DatasetError("spread_counts() requires at least one bucket")
    base, remainder = divmod(total, buckets)
    return [base + (1 if index < remainder else 0) for index in range(buckets)]
