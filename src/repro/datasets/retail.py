"""Parametric retailer/store/clothes data (the "stores" demo scenario).

Used by the Figure 5 walk-through (query "store texas", size bound 6) and
by the efficiency sweeps: the number of retailers, stores per retailer and
clothes per store are all configurable, so documents from a few hundred to
hundreds of thousands of nodes can be produced deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import (
    CLOTHES_CATEGORIES,
    DatasetRandom,
    FITTINGS,
    SITUATIONS,
    US_CITIES,
    US_STATES,
    require_positive,
)
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

#: brand names used for retailers; the first few mirror the Figure 5 demo
_BRANDS: tuple[str, ...] = (
    "Levis",
    "ESprit",
    "Brook Brothers",
    "Canyon Outfitters",
    "Juniper & Co",
    "Lumen Apparel",
    "North Gale",
    "Silver Birch",
    "Prairie Thread",
    "Harbor Cloth",
    "Opal Wear",
    "Cedar Line",
)


@dataclass
class RetailConfig:
    """Parameters of the retail document generator."""

    retailers: int = 4
    stores_per_retailer: int = 5
    clothes_per_store: int = 8
    #: fraction of stores located in Texas (keeps "texas" queries selective)
    texas_fraction: float = 0.5
    #: skew of the category/fitting distributions (higher = more dominant)
    skew: float = 1.2
    seed: int = 11

    def validate(self) -> "RetailConfig":
        require_positive("retailers", self.retailers)
        require_positive("stores_per_retailer", self.stores_per_retailer)
        require_positive("clothes_per_store", self.clothes_per_store)
        return self

    @property
    def approximate_nodes(self) -> int:
        """Rough node count of the generated document."""
        per_clothes = 4
        per_store = 5 + self.clothes_per_store * per_clothes
        per_retailer = 3 + self.stores_per_retailer * per_store
        return 1 + self.retailers * per_retailer


def generate_retail_document(config: RetailConfig | None = None, name: str = "retail") -> XMLTree:
    """Generate a retail document.

    >>> tree = generate_retail_document(RetailConfig(retailers=2, stores_per_retailer=2,
    ...                                              clothes_per_store=2, seed=3))
    >>> len(tree.find_by_tag("retailer"))
    2
    """
    config = (config or RetailConfig()).validate()
    rng = DatasetRandom(config.seed)
    builder = TreeBuilder("commerce", name=name)

    for retailer_index in range(config.retailers):
        brand = (
            _BRANDS[retailer_index]
            if retailer_index < len(_BRANDS)
            else f"{rng.name_phrase()} Apparel"
        )
        with builder.element("retailer"):
            builder.add_value("name", brand)
            builder.add_value("product", "apparel")
            for store_index in range(config.stores_per_retailer):
                in_texas = rng.random() < config.texas_fraction
                state = "Texas" if in_texas else rng.pick([s for s in US_STATES if s != "Texas"])
                with builder.element("store"):
                    builder.add_value("name", f"{rng.name_phrase()} {store_index + 1}")
                    builder.add_value("state", state)
                    builder.add_value("city", rng.skewed_pick(US_CITIES, config.skew))
                    with builder.element("merchandises"):
                        for _ in range(config.clothes_per_store):
                            with builder.element("clothes"):
                                builder.add_value(
                                    "category", rng.skewed_pick(CLOTHES_CATEGORIES, config.skew)
                                )
                                builder.add_value("fitting", rng.skewed_pick(FITTINGS, config.skew))
                                builder.add_value(
                                    "situation", rng.skewed_pick(SITUATIONS, config.skew)
                                )
    return builder.build()


def figure5_document(seed: int = 5) -> XMLTree:
    """A small store document for the Figure 5 walk-through.

    Two of the retailers match the demo screenshot's description: "the
    store named as Levis features jeans, especially for man; while the
    store named as ESprit focuses on the outwear clothes, mostly for
    woman" — both located in Texas so the query "store texas" returns them.
    """
    rng = DatasetRandom(seed)
    builder = TreeBuilder("stores", name="figure5-stores")

    def add_store(brand: str, state: str, city: str, category: str, fitting: str, items: int) -> None:
        with builder.element("store"):
            builder.add_value("name", brand)
            builder.add_value("state", state)
            builder.add_value("city", city)
            with builder.element("merchandises"):
                for index in range(items):
                    with builder.element("clothes"):
                        # the dominant category/fitting appears in ~3/4 of
                        # the items, the rest are drawn at random
                        dominant = index % 4 != 3
                        builder.add_value(
                            "category",
                            category if dominant else rng.pick(CLOTHES_CATEGORIES),
                        )
                        builder.add_value("fitting", fitting if dominant else rng.pick(FITTINGS))
                        builder.add_value("situation", rng.pick(SITUATIONS))

    add_store("Levis", "Texas", "Houston", "jeans", "man", items=12)
    add_store("ESprit", "Texas", "Austin", "outwear", "woman", items=10)
    add_store("Harbor Cloth", "Oregon", "Portland", "shirts", "man", items=8)  # not in Texas
    return builder.build()
