"""A small LRU cache used by the query service layer.

The eXtract demo served interactive web traffic, where the same handful of
show-case queries arrive over and over.  :class:`LRUCache` is the shared
building block for the two serving caches:

* the **query-result cache** in :class:`repro.system.ExtractSystem`
  (keyed on document, normalised query, algorithm, snippet bound), and
* the **snippet cache** in :class:`repro.snippet.generator.SnippetGenerator`
  (keyed on result root, normalised query and size bound).

It is deliberately dependency-free (an ``OrderedDict`` with move-to-end
semantics) and records hit/miss/eviction counts so the cache benchmarks and
the CLI can report hit rates.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

#: default capacity of the serving caches; large enough for a demo workload,
#: small enough that eviction is exercised in tests.
DEFAULT_CACHE_SIZE = 256

_MISSING = object()


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<CacheStats hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.2f}>"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> cache.stats.evictions
    1

    A ``maxsize`` of 0 disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op), which lets callers switch caching off without
    branching at every call site.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 0:
            raise ValueError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # core mapping operations
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        if self.maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not update recency or statistics."""
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count.

        A selective-invalidation utility for caches shared across
        documents (the serving caches key on tuples whose first element is
        the document name).  The built-in serving caches are per-system and
        are dropped wholesale via :meth:`clear` on re-registration.
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    def __repr__(self) -> str:
        return f"<LRUCache size={len(self._entries)}/{self.maxsize} {self.stats!r}>"
