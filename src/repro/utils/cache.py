"""A small LRU cache used by the query service layer.

The eXtract demo served interactive web traffic, where the same handful of
show-case queries arrive over and over.  :class:`LRUCache` is the shared
building block for the two serving caches:

* the **query-result cache** in :class:`repro.system.ExtractSystem`
  (keyed on document, normalised query, algorithm, snippet bound), and
* the **snippet cache** in :class:`repro.snippet.generator.SnippetGenerator`
  (keyed on result root, normalised query and size bound).

It is deliberately dependency-free (an ``OrderedDict`` with move-to-end
semantics) and records hit/miss/eviction counts so the cache benchmarks and
the CLI can report hit rates.

The cache is **thread-safe**: every operation (including the statistics
updates) runs under one re-entrant lock, so the concurrent executor of
:mod:`repro.api` can share a cache between worker threads and still read
coherent counters (``hits + misses == lookups`` at any observation point).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

#: default capacity of the serving caches; large enough for a demo workload,
#: small enough that eviction is exercised in tests.
DEFAULT_CACHE_SIZE = 256

_MISSING = object()


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<CacheStats hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.2f}>"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> cache.stats.evictions
    1

    A ``maxsize`` of 0 disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op), which lets callers switch caching off without
    branching at every call site.

    All operations are serialised through one :class:`threading.RLock`, so
    concurrent readers/writers never corrupt the recency order and always
    observe coherent statistics.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 0:
            raise ValueError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # core mapping operations
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not update recency or statistics."""
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count.

        A selective-invalidation utility for caches shared across
        documents (the serving caches key on tuples whose first element is
        the document name).  The built-in serving caches are per-system and
        are dropped wholesale via :meth:`clear` on re-registration.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def adopt(
        self, source: "LRUCache", keep: Callable[[Hashable, Any], bool]
    ) -> tuple[int, int]:
        """Carry the entries of ``source`` that satisfy ``keep`` into this cache.

        The selective-invalidation primitive of incremental document
        updates: the *new* (empty) cache adopts every entry of the replaced
        document's cache that the edit provably cannot affect, preserving
        recency order, and inherits the source's statistics so monitoring
        counters stay continuous across the swap — with every dropped entry
        recorded as an invalidation.  ``source`` is only read (it may still
        be serving in-flight requests) and never mutated.

        Returns ``(kept, dropped)``.  Entries are snapshotted from
        ``source`` first and inserted under this cache's lock second, so
        the two locks are never held together.
        """
        with source._lock:
            entries = list(source._entries.items())
            stats = source.stats_snapshot()
        kept = dropped = 0
        with self._lock:
            self.stats = stats
            for key, value in entries:
                if keep(key, value):
                    self.put(key, value)
                    kept += 1
                else:
                    dropped += 1
            self.stats.invalidations += dropped
        return kept, dropped

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count

    def stats_snapshot(self) -> CacheStats:
        """An atomic copy of the counters (safe to read while serving)."""
        with self._lock:
            return CacheStats(
                hits=self.stats.hits,
                misses=self.stats.misses,
                evictions=self.stats.evictions,
                invalidations=self.stats.invalidations,
            )

    def __repr__(self) -> str:
        with self._lock:
            return f"<LRUCache size={len(self._entries)}/{self.maxsize} {self.stats!r}>"
