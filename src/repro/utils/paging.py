"""Shared pagination arithmetic for the serving surfaces.

One definition of "page" for every paginated sequence (result sets,
snippet batches, payload lists): 1-based pages, ``page_size=None`` means
everything on one page, and pages past the end are empty rather than an
error — mirroring web-service paging.

Non-positive pages and page sizes are rejected with
:class:`~repro.errors.PagingError`: ``(page - 1) * page_size`` goes
negative for ``page <= 0``, and Python's negative-index slicing would then
silently serve items from the *end* of the sequence as if they were a
valid page.  The typed protocol already refuses such requests
(:meth:`repro.api.protocol.SearchRequest.validate`); validating here too
protects every internal caller that bypasses request validation.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

from repro.errors import PagingError

_Item = TypeVar("_Item")


def _require_positive_int(value: int, name: str) -> None:
    # bool is an int subclass; True would silently mean page 1.
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise PagingError(f"{name} must be a positive integer, got {value!r}")


def page_slice(items: Sequence[_Item], page: int, page_size: int | None) -> list[_Item]:
    """The items of one page (see module docstring for the conventions).

    >>> page_slice(["a", "b", "c"], page=2, page_size=2)
    ['c']
    >>> page_slice(["a", "b", "c"], page=0, page_size=2)
    Traceback (most recent call last):
        ...
    repro.errors.PagingError: page must be a positive integer, got 0
    """
    _require_positive_int(page, "page")
    if page_size is None:
        return list(items) if page == 1 else []
    _require_positive_int(page_size, "page_size")
    start = (page - 1) * page_size
    return list(items[start : start + page_size])
