"""Shared pagination arithmetic for the serving surfaces.

One definition of "page" for every paginated sequence (result sets,
snippet batches, payload lists): 1-based pages, ``page_size=None`` means
everything on one page, and pages past the end are empty rather than an
error — mirroring web-service paging.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

_Item = TypeVar("_Item")


def page_slice(items: Sequence[_Item], page: int, page_size: int | None) -> list[_Item]:
    """The items of one page (see module docstring for the conventions)."""
    if page_size is None:
        return list(items) if page == 1 else []
    start = (page - 1) * page_size
    return list(items[start : start + page_size])
