"""Shared utilities: text normalisation, tokenisation, timing, RNG helpers."""

from repro.utils.text import (
    STOPWORDS,
    normalize_token,
    normalize_value,
    tokenize,
    tokenize_query,
    singularize,
)
from repro.utils.timing import Stopwatch, TimingBreakdown, timed

__all__ = [
    "STOPWORDS",
    "normalize_token",
    "normalize_value",
    "tokenize",
    "tokenize_query",
    "singularize",
    "Stopwatch",
    "TimingBreakdown",
    "timed",
]
