"""Timing helpers used by the evaluation harness.

The efficiency experiments (E1–E3, E7) report wall-clock times of the
individual eXtract phases (indexing, search, IList construction, instance
selection).  :class:`TimingBreakdown` accumulates named phase timings so a
single experiment run can print the same per-phase rows the companion
paper's efficiency figures show.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.clock import perf_counter


class Stopwatch:
    """A restartable wall-clock stopwatch based on the monotonic clock."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) measuring; returns ``self`` for chaining."""
        self._start = perf_counter()
        return self

    def stop(self) -> float:
        """Stop measuring and add the interval to :attr:`elapsed`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and discard any running interval."""
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None


@dataclass
class TimingBreakdown:
    """Accumulates wall-clock time per named phase.

    >>> breakdown = TimingBreakdown()
    >>> with breakdown.measure("index"):
    ...     _ = sum(range(1000))
    >>> "index" in breakdown.phases
    True
    """

    phases: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager adding the elapsed time of its body to ``phase``."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.add(phase, elapsed)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` (creating it if necessary)."""
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def merge(self, other: "TimingBreakdown") -> None:
        """Fold another breakdown's phases into this one."""
        for phase, seconds in other.phases.items():
            self.phases[phase] = self.phases.get(phase, 0.0) + seconds
            self.counts[phase] = self.counts.get(phase, 0) + other.counts.get(phase, 1)

    @property
    def total(self) -> float:
        """Total time across all phases, in seconds."""
        return sum(self.phases.values())

    def mean(self, phase: str) -> float:
        """Mean time per measurement of ``phase`` (0.0 if never measured)."""
        count = self.counts.get(phase, 0)
        if count == 0:
            return 0.0
        return self.phases[phase] / count

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the per-phase totals."""
        return dict(self.phases)

    def format_table(self) -> str:
        """Render the breakdown as an aligned plain-text table."""
        if not self.phases:
            return "(no timings recorded)"
        width = max(len(name) for name in self.phases)
        lines = [f"{'phase'.ljust(width)}  seconds    calls"]
        for name, seconds in sorted(self.phases.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name.ljust(width)}  {seconds:9.6f}  {self.counts.get(name, 0):5d}")
        lines.append(f"{'TOTAL'.ljust(width)}  {self.total:9.6f}")
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`, stopped on exit.

    >>> with timed() as watch:
    ...     _ = sum(range(100))
    >>> watch.elapsed >= 0.0
    True
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch.running:
            watch.stop()
