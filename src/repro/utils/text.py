"""Text normalisation and tokenisation for XML keyword search.

The eXtract paper treats keywords case-insensitively and matches them
against both element tags ("retailer") and text values ("Texas", "Brook
Brothers").  This module centralises the normalisation rules so the index,
the search engine and the snippet generator agree on what a "keyword" is.

Only lightweight, dependency-free processing is done:

* lower-casing,
* splitting on non-alphanumeric characters,
* a tiny English stop-word list (articles/prepositions that never help
  identify entities in the demo scenarios),
* a conservative plural → singular folding so that a query keyword
  ``stores`` matches a tag ``store`` (the paper's Figure 5 query
  "store texas" must hit ``<store>`` elements).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

#: Words ignored when tokenising keyword queries.  Deliberately tiny: XML
#: tag names are rarely stop words, and dropping too much would change
#: which nodes match a query.
STOPWORDS: frozenset[str] = frozenset(
    {
        "a",
        "an",
        "and",
        "are",
        "as",
        "at",
        "be",
        "by",
        "for",
        "from",
        "in",
        "into",
        "is",
        "it",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

# Irregular plurals that show up in retail / movie style data.
_IRREGULAR_PLURALS: dict[str, str] = {
    "children": "child",
    "men": "man",
    "women": "woman",
    "people": "person",
    "feet": "foot",
    "mice": "mouse",
    "geese": "goose",
}


def singularize(token: str) -> str:
    """Fold a plural English token to a singular form, conservatively.

    The goal is matching query keywords against element tag names
    (``stores`` vs ``store``), not linguistic correctness.  Tokens that do
    not look plural are returned unchanged.

    >>> singularize("stores")
    'store'
    >>> singularize("clothes")
    'clothes'
    >>> singularize("children")
    'child'
    """
    if token in _IRREGULAR_PLURALS:
        return _IRREGULAR_PLURALS[token]
    if len(token) <= 3 or not token.endswith("s"):
        return token
    # Words ending in "ss", "us", "is" are usually not plural (dress, status,
    # analysis); "clothes" is kept as-is because the tag in the paper is
    # literally <clothes>.
    if token.endswith(("ss", "us", "is", "clothes")):
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("es") and token[:-2].endswith(("ch", "sh", "x", "z")):
        return token[:-2]
    return token[:-1]


def normalize_token(token: str) -> str:
    """Normalise a single token for identity comparisons: lower-case only.

    Plural folding is *not* applied here: identities must be stable and
    human-readable ("texas" must stay "texas").  Plural-insensitive
    *matching* is handled where text is matched against keywords
    (:func:`matches_keyword`) and in the inverted index, which indexes both
    the raw and the singular form of every token.
    """
    return token.strip().lower()


def tokenize(text: str) -> list[str]:
    """Split arbitrary text into normalised tokens (stop words retained).

    Used for indexing text values: stop words are kept because a value such
    as "Gone with the Wind" should still be findable by the word "wind"
    while its full phrase remains reconstructible from token positions.

    >>> tokenize("Brook Brothers")
    ['brook', 'brothers']
    """
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


def iter_index_terms(text: str) -> Iterator[str]:
    """Yield the terms under which ``text`` should be indexed.

    Each raw lower-cased token is yielded, and additionally its singular
    form when that differs, so queries can match either form without any
    query-time expansion.
    """
    for raw in tokenize(text):
        yield raw
        folded = singularize(raw)
        if folded != raw:
            yield folded


def tokenize_query(query: str) -> list[str]:
    """Tokenise a keyword query: normalise, drop stop words and duplicates.

    Order of first occurrence is preserved because the IList is initialised
    with the query keywords *in order* (paper §2).

    >>> tokenize_query("Texas, apparel, retailer")
    ['texas', 'apparel', 'retailer']
    >>> tokenize_query("the stores in Texas")
    ['stores', 'texas']
    """
    seen: set[str] = set()
    keywords: list[str] = []
    for raw in tokenize(query):
        if raw in STOPWORDS:
            continue
        token = normalize_token(raw)
        if token in seen:
            continue
        seen.add(token)
        keywords.append(token)
    return keywords


def normalize_value(value: str) -> str:
    """Normalise an attribute value for feature identity (§2.3 features).

    Two textual values are the same feature value iff their normalised
    forms are equal: surrounding whitespace is irrelevant, interior runs of
    whitespace collapse and case is folded.

    >>> normalize_value("  Brook   Brothers ")
    'brook brothers'
    """
    return " ".join(tokenize(value))


def matches_keyword(text: str, keyword: str) -> bool:
    """Return True if normalised ``keyword`` occurs as a token of ``text``.

    The keyword is expected to be already normalised (via
    :func:`normalize_token`); tag names and values are tokenised on the
    fly.  Matching is plural-insensitive in both directions, so the keyword
    ``stores`` matches the tag ``store`` and vice versa.
    """
    keyword = normalize_token(keyword)
    keyword_singular = singularize(keyword)
    for token in tokenize(text):
        if token == keyword or singularize(token) in (keyword, keyword_singular):
            return True
    return False


def join_phrases(words: Iterable[str]) -> str:
    """Join words into a display phrase with single spaces."""
    return " ".join(word for word in words if word)
