"""Data Analyzer: node classification (entity / attribute / connection) and key mining.

Implements the §2.1 classification rules adopted from XSeek [6] and the
§2.2 key mining ("After mining the keys of entities in the data ...").
"""

from repro.classify.categories import NodeCategory, classify_path, classify_schema
from repro.classify.analyzer import DataAnalyzer, EntityType
from repro.classify.keys import KeyMiner, KeyInfo

__all__ = [
    "NodeCategory",
    "classify_path",
    "classify_schema",
    "DataAnalyzer",
    "EntityType",
    "KeyMiner",
    "KeyInfo",
]
