"""The Data Analyzer component (Figure 4).

"The Data Analyzer parses the input XML data and identifies the entities,
attributes and connection nodes."  This module ties together schema
inference, node classification and key mining into a single object that
the rest of the system (index builder, search engine, snippet generator)
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.categories import (
    NodeCategory,
    attribute_paths_of,
    classify_schema,
    entity_paths,
)
from repro.classify.keys import KeyInfo, KeyMiner
from repro.xmltree.dtd import DTD
from repro.xmltree.node import XMLNode
from repro.xmltree.schema import SchemaSummary, TagPath, infer_schema
from repro.xmltree.tree import XMLTree


@dataclass
class EntityType:
    """Everything known about one entity type (schema-level)."""

    tag_path: TagPath
    tag: str
    instance_count: int
    attribute_paths: list[TagPath] = field(default_factory=list)
    key: KeyInfo | None = None

    @property
    def attribute_tags(self) -> list[str]:
        return [path[-1] for path in self.attribute_paths]

    def __repr__(self) -> str:
        key_name = self.key.attribute_tag if self.key else None
        return f"<EntityType {self.tag} instances={self.instance_count} key={key_name}>"


class DataAnalyzer:
    """Analyzes one document: schema, node categories, entities and keys.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> tree = tree_from_dict("retailer", {
    ...     "name": "Brook Brothers",
    ...     "store": [
    ...         {"name": "Galleria", "city": "Houston"},
    ...         {"name": "West Village", "city": "Austin"},
    ...     ],
    ... })
    >>> analyzer = DataAnalyzer(tree)
    >>> sorted(analyzer.entity_tags())
    ['store']
    >>> analyzer.entity_types[("retailer", "store")].key.attribute_tag
    'name'
    """

    def __init__(self, tree: XMLTree, dtd: DTD | None = None):
        self.tree = tree
        self.dtd = dtd
        self.schema: SchemaSummary = infer_schema(tree, dtd=dtd)
        self.categories: dict[TagPath, NodeCategory] = classify_schema(self.schema)
        self.entity_types: dict[TagPath, EntityType] = {}
        self._build_entity_types()

    @classmethod
    def rebound(
        cls,
        tree: XMLTree,
        dtd: DTD | None,
        schema: SchemaSummary,
        categories: dict[TagPath, NodeCategory],
        entity_types: dict[TagPath, EntityType],
    ) -> "DataAnalyzer":
        """An analyzer assembled from precomputed state (incremental updates).

        :mod:`repro.index.incremental` patches the previous analyzer's
        schema and re-mines only the entity keys an edit can affect; this
        constructor binds that state to the edited tree without re-running
        schema inference, classification or full key mining.  The caller is
        responsible for the state being exactly what ``DataAnalyzer(tree,
        dtd)`` would compute — the incremental-update property tests hold it
        to that.
        """
        analyzer = cls.__new__(cls)
        analyzer.tree = tree
        analyzer.dtd = dtd
        analyzer.schema = schema
        analyzer.categories = categories
        analyzer.entity_types = entity_types
        return analyzer

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_entity_types(self) -> None:
        paths = entity_paths(self.schema)
        miner = KeyMiner(self.schema)
        keys = miner.mine(self.tree, paths)
        for path in paths:
            schema_node = self.schema.node_for(path)
            self.entity_types[path] = EntityType(
                tag_path=path,
                tag=path[-1],
                instance_count=schema_node.instance_count,
                attribute_paths=attribute_paths_of(self.schema, path),
                key=keys.get(path),
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def category_of_path(self, tag_path: TagPath) -> NodeCategory:
        """The category of a schema node (entity / attribute / connection)."""
        category = self.categories.get(tag_path)
        if category is None:
            # A path never seen during analysis (e.g. from a different
            # document) falls back to on-the-fly classification so the
            # analyzer degrades gracefully rather than erroring out.
            return NodeCategory.CONNECTION
        return category

    def category_of(self, node: XMLNode) -> NodeCategory:
        """The category of a concrete node instance."""
        return self.category_of_path(node.tag_path)

    def is_entity(self, node: XMLNode) -> bool:
        return self.category_of(node) == NodeCategory.ENTITY

    def is_attribute(self, node: XMLNode) -> bool:
        return self.category_of(node) == NodeCategory.ATTRIBUTE

    def is_connection(self, node: XMLNode) -> bool:
        return self.category_of(node) == NodeCategory.CONNECTION

    def entity_tags(self) -> set[str]:
        """Tags of all entity types in the document."""
        return {entity.tag for entity in self.entity_types.values()}

    def entity_type_of(self, node: XMLNode) -> EntityType | None:
        """The entity type a node instance belongs to, if it is an entity."""
        return self.entity_types.get(node.tag_path)

    def entity_type_by_tag(self, tag: str) -> EntityType | None:
        """The (first, highest) entity type with the given tag."""
        matches = [entity for entity in self.entity_types.values() if entity.tag == tag]
        if not matches:
            return None
        matches.sort(key=lambda entity: (len(entity.tag_path), entity.tag_path))
        return matches[0]

    def key_of_entity_path(self, entity_path: TagPath) -> KeyInfo | None:
        entity = self.entity_types.get(entity_path)
        return entity.key if entity else None

    def owning_entity(self, node: XMLNode) -> XMLNode | None:
        """The nearest ancestor-or-self node that is an entity instance.

        This is how an attribute instance such as ``city: Houston`` is
        associated with the entity instance (the ``store``) it describes,
        which defines the feature triple of §2.3.
        """
        for candidate in node.iter_ancestors(include_self=True):
            if self.is_entity(candidate):
                return candidate
        return None

    def attribute_children(self, entity_node: XMLNode) -> list[XMLNode]:
        """The attribute instances directly under an entity instance."""
        return [child for child in entity_node.children if self.is_attribute(child)]

    def summary(self) -> dict[str, int]:
        """Counts of schema nodes per category (used in examples / docs)."""
        counts = {"entity": 0, "attribute": 0, "connection": 0}
        for category in self.categories.values():
            counts[category.value] += 1
        return counts

    def __repr__(self) -> str:
        counts = self.summary()
        return (
            f"<DataAnalyzer tree={self.tree.name!r} entities={counts['entity']} "
            f"attributes={counts['attribute']} connections={counts['connection']}>"
        )
