"""Key mining: which attribute serves as the key of each entity type.

§2.2: "After mining the keys of entities in the data, eXtract adds the
value of the key attribute of retailer: Brook Brothers ... to IList."

The paper does not spell out the mining procedure, so we implement the
standard key-discovery recipe used by XSeek-style systems, in priority
order:

1. an attribute declared with type ``ID`` in the DTD,
2. an attribute whose values are *unique* across all instances of the
   entity and *present* on (almost) every instance — the classic candidate
   key condition, with a small tolerance for missing values,
3. among several candidates, prefer conventional naming (``id``, ``name``,
   ``title``, ``key``) and then the attribute appearing earliest in
   document order (keys are usually listed first).

The result is a :class:`KeyInfo` per entity schema path, or ``None`` when
no attribute qualifies (the snippet then simply has no key item).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.categories import attribute_paths_of
from repro.utils.text import normalize_value
from repro.xmltree.schema import SchemaSummary, TagPath
from repro.xmltree.tree import XMLTree

#: attribute names that conventionally act as identifiers, best first
PREFERRED_KEY_NAMES: tuple[str, ...] = ("id", "name", "title", "key", "isbn", "ssn", "code")

#: fraction of entity instances that must carry the attribute for it to be
#: considered a key (tolerates sparse dirty data)
MIN_COVERAGE = 0.9


@dataclass
class KeyInfo:
    """The mined key attribute of one entity type."""

    entity_path: TagPath
    attribute_path: TagPath
    coverage: float
    uniqueness: float
    from_dtd: bool = False

    @property
    def entity_tag(self) -> str:
        return self.entity_path[-1]

    @property
    def attribute_tag(self) -> str:
        return self.attribute_path[-1]

    def __repr__(self) -> str:
        return (
            f"<KeyInfo {self.entity_tag}.{self.attribute_tag} "
            f"coverage={self.coverage:.2f} uniqueness={self.uniqueness:.2f}>"
        )


class KeyMiner:
    """Mines key attributes for every entity type of a document."""

    def __init__(self, schema: SchemaSummary, min_coverage: float = MIN_COVERAGE):
        self.schema = schema
        self.min_coverage = min_coverage

    def mine(self, tree: XMLTree, entity_paths_: list[TagPath]) -> dict[TagPath, KeyInfo]:
        """Return the key of each entity path that has one."""
        keys: dict[TagPath, KeyInfo] = {}
        for entity_path in entity_paths_:
            info = self.mine_entity(tree, entity_path)
            if info is not None:
                keys[entity_path] = info
        return keys

    def mine_entity(
        self, tree: XMLTree, entity_path: TagPath, instances: list | None = None
    ) -> KeyInfo | None:
        """Mine the key attribute of a single entity type.

        ``instances`` optionally supplies the entity's node instances in
        document order (the incremental-update path materialises them from
        the structure index in O(instances) instead of the full-tree scan
        of :meth:`XMLTree.find_by_tag_path`).
        """
        candidates = attribute_paths_of(self.schema, entity_path)
        if not candidates:
            return None

        dtd = self.schema.dtd
        dtd_ids = set(dtd.id_attributes(entity_path[-1])) if dtd is not None else set()

        entity_instances = (
            instances if instances is not None else tree.find_by_tag_path(entity_path)
        )
        if not entity_instances:
            return None

        scored: list[tuple[tuple[float, ...], KeyInfo]] = []
        for order, attribute_path in enumerate(candidates):
            attribute_tag = attribute_path[-1]
            values: list[str] = []
            present = 0
            for entity in entity_instances:
                child = entity.find_child(attribute_tag)
                if child is not None and child.has_text_value:
                    present += 1
                    values.append(normalize_value(child.text or ""))
            if present == 0:
                continue
            coverage = present / len(entity_instances)
            uniqueness = len(set(values)) / len(values)
            from_dtd = attribute_tag in dtd_ids
            if not from_dtd and coverage < self.min_coverage:
                continue
            if not from_dtd and uniqueness < 1.0:
                continue
            name_rank = _name_preference(attribute_tag)
            # larger tuple sorts better: DTD IDs first, then preferred names,
            # then earliest-declared attribute
            score = (
                1.0 if from_dtd else 0.0,
                name_rank,
                coverage,
                -float(order),
            )
            scored.append(
                (
                    score,
                    KeyInfo(
                        entity_path=entity_path,
                        attribute_path=attribute_path,
                        coverage=coverage,
                        uniqueness=uniqueness,
                        from_dtd=from_dtd,
                    ),
                )
            )
        if not scored:
            return None
        scored.sort(key=lambda item: item[0], reverse=True)
        return scored[0][1]


def _name_preference(attribute_tag: str) -> float:
    """Higher is better; preferred identifier names rank above others."""
    lowered = attribute_tag.lower()
    for rank, name in enumerate(PREFERRED_KEY_NAMES):
        if lowered == name:
            return float(len(PREFERRED_KEY_NAMES) - rank)
    return 0.0
