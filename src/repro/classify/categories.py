"""Node category classification (entity / attribute / connection).

The rules, quoted from §2.1 of the paper (adopted from XSeek [6]):

* "a node is considered as an entity if it corresponds to a *-node in the
  DTD" — i.e. the element may repeat under its parent;
* "If a node is not a *-node and only has one child which is a text value,
  then this node, together with its value child, represents an attribute";
* "A node is a connection node if it represents neither an entity nor an
  attribute."

Classification is done at the *schema* level (per tag path): every instance
of ``/retailer/store/city`` receives the same category.  This matches the
paper, where the feature type ``(store, city)`` is a schema-level concept.
"""

from __future__ import annotations

from enum import Enum

from repro.xmltree.schema import SchemaSummary, TagPath


class NodeCategory(str, Enum):
    """The three node categories of §2.1."""

    ENTITY = "entity"
    ATTRIBUTE = "attribute"
    CONNECTION = "connection"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_path(schema: SchemaSummary, tag_path: TagPath) -> NodeCategory:
    """Classify a single schema node.

    The attribute rule requires the node to be a non-``*`` node whose
    instances are text leaves.  A node that is a ``*``-node *and* a text
    leaf (for example a repeatable ``<keyword>`` element) is an entity by
    the first rule — the rules are applied in the paper's order.
    """
    node = schema.node_for(tag_path)
    if schema.is_star_node(tag_path):
        return NodeCategory.ENTITY
    if node.with_text > 0 and node.with_element_children == 0:
        return NodeCategory.ATTRIBUTE
    return NodeCategory.CONNECTION


def classify_schema(schema: SchemaSummary) -> dict[TagPath, NodeCategory]:
    """Classify every schema node of a summary.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> from repro.xmltree.schema import infer_schema
    >>> tree = tree_from_dict("retailer", {
    ...     "name": "Brook Brothers",
    ...     "store": [
    ...         {"city": "Houston", "merchandises": {"clothes": [{"category": "suit"}]}},
    ...         {"city": "Austin"},
    ...     ],
    ... })
    >>> categories = classify_schema(infer_schema(tree))
    >>> categories[("retailer", "store")].value
    'entity'
    >>> categories[("retailer", "store", "city")].value
    'attribute'
    >>> categories[("retailer", "store", "merchandises")].value
    'connection'
    """
    return {path: classify_path(schema, path) for path in schema.nodes}


def entity_paths(schema: SchemaSummary) -> list[TagPath]:
    """All entity schema paths, shortest (highest in the tree) first."""
    return [
        path
        for path in sorted(schema.nodes, key=lambda p: (len(p), p))
        if classify_path(schema, path) == NodeCategory.ENTITY
    ]


def attribute_paths_of(schema: SchemaSummary, entity_path: TagPath) -> list[TagPath]:
    """Attribute schema paths directly under the given entity path.

    These are the candidate feature types ``(entity, attribute)`` of §2.3
    and the candidate key attributes of §2.2.
    """
    result: list[TagPath] = []
    for child_path in schema.child_paths_of(entity_path):
        if classify_path(schema, child_path) == NodeCategory.ATTRIBUTE:
            result.append(child_path)
    return result
