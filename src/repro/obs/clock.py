"""The clock seam: the sanctioned door to ``time`` for serving modules.

Serving code must not call ``time.time`` / ``time.perf_counter`` /
``time.monotonic`` directly — the ``telemetry-discipline`` analysis rule
flags that — because scattered raw clock reads are exactly how ad-hoc
timing grows back after a tracing layer replaces it.  Routing every read
through this module keeps one list of who measures what, and gives tests
a single monkeypatch point to make time deterministic.

Three clocks, three jobs:

* :func:`perf_counter` — *interval* measurements (span durations, queue
  delays).  Highest resolution, no epoch meaning.
* :func:`monotonic` — *scheduling* decisions (health-check staleness,
  backoff deadlines).  Never goes backwards.
* :func:`wall_clock` — *timestamps for humans* (request-log lines).  The
  only clock with an epoch; never used for intervals.
"""

from __future__ import annotations

import time


# Direct aliases, not wrapper functions: the seam is the *name* — one
# module saying who measures what — and spans read the clock on the
# hottest path in the stack, where a wrapper frame per read is real cost.

#: High-resolution interval clock (span durations, queue delays).
perf_counter = time.perf_counter

#: Monotonic scheduling clock (health-check staleness, backoff deadlines).
monotonic = time.monotonic

#: Seconds since the Unix epoch — timestamps for humans only.
wall_clock = time.time
