"""The structured request log: one JSON line per request.

:class:`RequestLogger` plugs into the gateway's existing log-callback
seam (``MetricsMiddleware(log=...)`` calls it as
``log(request, response, seconds)``), so request logging composes with
the rest of the stack without a new hook.  Each line is a single JSON
object::

    {"ts": 1754650000.123, "request_id": "9f2c…", "kind": "search",
     "code": null, "seconds": 0.0042, "document": "stores",
     "from_cache": true, "shard": 0, "slow": false}

``request_id`` comes from the active trace (the gateway's tracing stage
assigns it), so a log line joins against its trace and its metrics.
``slow_query_ms`` marks lines over the threshold ``"slow": true``;
``only_slow=True`` turns the logger into a pure slow-query log that emits
nothing below the threshold.  A failing sink never fails the request —
the metrics stage already guards the callback, and the logger itself
swallows write errors for the same reason.
"""

from __future__ import annotations

import json
import threading
from typing import Any, IO

from repro.obs.clock import wall_clock
from repro.obs.trace import current_trace


class RequestLogger:
    """Write one JSON line per observed request to a text stream."""

    def __init__(
        self,
        stream: IO[str],
        slow_query_ms: float | None = None,
        only_slow: bool = False,
    ):
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError(
                f"slow_query_ms must be non-negative, got {slow_query_ms!r}"
            )
        if only_slow and slow_query_ms is None:
            raise ValueError("only_slow=True needs a slow_query_ms threshold")
        self.stream = stream
        self.slow_query_ms = slow_query_ms
        self.only_slow = only_slow
        self._lock = threading.Lock()

    # The gateway calls this as log(request, response, seconds).
    def __call__(self, request: Any, response: Any, seconds: float) -> None:
        slow = (
            self.slow_query_ms is not None
            and seconds * 1000.0 >= self.slow_query_ms
        )
        if self.only_slow and not slow:
            return
        record = self.build_record(request, response, seconds, slow)
        line = json.dumps(record, sort_keys=True)
        try:
            with self._lock:
                self.stream.write(line + "\n")
                self.stream.flush()
        # A full disk or closed pipe must not fail the request the log
        # line describes.
        # repro: ignore[no-silent-swallow]
        except (OSError, ValueError):
            pass

    @staticmethod
    def build_record(
        request: Any, response: Any, seconds: float, slow: bool
    ) -> dict[str, Any]:
        """The log-line fields for one request (separated for testing)."""
        trace = current_trace()
        record: dict[str, Any] = {
            "ts": wall_clock(),
            "request_id": trace.request_id if trace is not None else None,
            "kind": getattr(request, "kind", None),
            "code": getattr(response, "code", None),
            "seconds": seconds,
            "slow": slow,
        }
        document = getattr(request, "document", None)
        if document is not None:
            record["document"] = document
        shard = getattr(response, "shard", None)
        if shard is not None:
            record["shard"] = shard
        from_cache = getattr(response, "from_cache", None)
        if from_cache is not None:
            record["from_cache"] = from_cache
        return record
