"""Observability: tracing, metrics and structured request logs.

The serving stack (gateway middleware, HTTP frontend, executors, cluster
router, remote shards) records *where a request's time goes* through this
package:

* :mod:`repro.obs.clock` — the one sanctioned door to ``time`` for
  serving modules (the ``telemetry-discipline`` analysis rule pins this);
* :mod:`repro.obs.trace` — per-request :class:`Trace`/:class:`Span`
  context with contextvar propagation, cross-process stitching via the
  ``X-Repro-Trace`` header pair, and a bounded :class:`TraceBuffer`;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms (p50/p95/p99), exported as versioned
  JSON and Prometheus text exposition;
* :mod:`repro.obs.reqlog` — one JSON line per request behind the
  gateway's log-callback seam, with a slow-query threshold.

Traces and metrics never touch default wire bytes: traces surface only in
the opt-in ``meta`` block and the ``GET /v1/trace`` buffer, metrics only
through ``GET /v1/metrics``.
"""

from repro.obs.clock import monotonic, perf_counter, wall_clock
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
)
from repro.obs.reqlog import RequestLogger
from repro.obs.trace import (
    Span,
    Trace,
    TraceBuffer,
    activate,
    current_trace,
    parse_trace_header,
    trace_header_value,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "RequestLogger",
    "Span",
    "Trace",
    "TraceBuffer",
    "activate",
    "current_trace",
    "monotonic",
    "parse_trace_header",
    "perf_counter",
    "trace_header_value",
    "wall_clock",
]
