"""Per-request traces: spans, context propagation, cross-process stitching.

One :class:`Trace` lives for one request.  The gateway's tracing stage
creates it (assigning the ``request_id``), activates it in a contextvar,
and every layer below — middleware stages, executors, the cluster router,
remote shard round trips — opens :class:`Span`\\ s against whatever trace
is active, without threading a handle through every signature.

Contextvars do **not** cross thread-pool boundaries by themselves, so the
propagation story is explicit where it has to be:

* :func:`current_trace` + :func:`activate` — capture the active trace (and
  the active span, for parenting) on the submitting side, re-activate it
  inside the worker;
* :func:`trace_header_value` / :func:`parse_trace_header` — carry the
  ``request_id`` across a process boundary in the ``X-Repro-Trace``
  request header; the remote server records its own spans under the same
  ``request_id`` and ships them back in the ``X-Repro-Trace-Spans``
  response header, which :meth:`Trace.absorb_wire` re-parents under the
  calling span.  One request over a remote cluster yields one stitched
  span tree.

Span identity is deterministic per process: ``"<process>:<n>"`` from a
per-trace counter — distinct processes carry distinct ``process`` tags
(the coordinator's tag vs each shard server's ``server:<port>``), so
stitched ids never collide and tests can assert exact shapes.

Traces surface only through the opt-in ``meta`` block and the bounded
:class:`TraceBuffer` behind ``GET /v1/trace`` — never in default wire
bytes.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

from repro.obs.clock import perf_counter

#: the trace active in the current execution context (None outside a request)
_current_trace: ContextVar["Trace | None"] = ContextVar("repro_obs_trace", default=None)

#: the id of the innermost open span, for parenting nested spans
_current_span_id: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)

#: request header carrying the request_id across processes
TRACE_HEADER = "X-Repro-Trace"

#: response header carrying the remote side's recorded spans back
TRACE_SPANS_HEADER = "X-Repro-Trace-Spans"

#: hard cap on spans per trace — a runaway loop must not grow a request's
#: trace without bound; later spans are dropped and counted
MAX_SPANS = 512

_MAX_REQUEST_ID = 64

#: Request ids are "<process-random-prefix><counter>": unique across
#: processes via the 8-byte random prefix, unique within one via the
#: counter — and cheaper per request than fresh urandom on the hot path.
_REQUEST_ID_PREFIX = os.urandom(8).hex()
_REQUEST_ID_COUNTER = itertools.count(1)


@dataclass(slots=True)
class Span:
    """One timed stage of a request.

    ``start`` is seconds since the owning trace's origin *in the recording
    process* — meaningful for ordering within a process, illustrative
    across processes (clocks are not synchronised).
    """

    name: str
    span_id: str
    parent_id: str | None
    seconds: float
    start: float
    process: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "seconds": self.seconds,
            "start": self.start,
            "process": self.process,
        }
        if self.attributes:
            wire["attributes"] = dict(self.attributes)
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Span":
        return cls(
            name=str(wire.get("name", "")),
            span_id=str(wire.get("id", "")),
            parent_id=wire.get("parent"),
            seconds=float(wire.get("seconds", 0.0)),
            start=float(wire.get("start", 0.0)),
            process=str(wire.get("process", "")),
            attributes=dict(wire.get("attributes", {}) or {}),
        )


class _OpenSpan:
    """The context manager behind :meth:`Trace.span`.

    A hand-rolled class, not ``@contextmanager``: spans open on the warm
    search path, where the generator machinery is measurable overhead.
    """

    __slots__ = ("_trace", "_name", "_attributes", "_span_id", "_parent", "_token", "_started")

    def __init__(self, trace: "Trace", name: str, attributes: dict[str, Any]):
        self._trace = trace
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> str:
        trace = self._trace
        self._parent = _current_span_id.get()
        self._span_id = span_id = f"{trace.process}:{next(trace._counter)}"
        self._token = _current_span_id.set(span_id)
        self._started = perf_counter()
        return span_id

    def __exit__(self, *_exc: Any) -> None:
        ended = perf_counter()
        _current_span_id.reset(self._token)
        trace = self._trace
        # Lock-free: list.append is atomic under the GIL, and the cap is
        # re-enforced at export, so a racing overshoot cannot leak past
        # MAX_SPANS onto the wire.
        spans = trace._spans
        if len(spans) < MAX_SPANS:
            spans.append(
                (
                    self._name,
                    self._span_id,
                    self._parent,
                    ended - self._started,
                    self._started - trace._origin,
                    trace.process,
                    self._attributes,
                )
            )
        else:
            with trace._lock:
                trace._dropped += 1


class Trace:
    """The span collection for one request; thread-safe."""

    def __init__(self, request_id: str | None = None, process: str = "local"):
        self.request_id = (
            request_id or f"{_REQUEST_ID_PREFIX}-{next(_REQUEST_ID_COUNTER):x}"
        )
        self.process = process
        self._lock = threading.Lock()
        # Finished spans live as plain tuples in Span field order —
        # constructing a dataclass per span on the warm path is measurable;
        # Span objects materialise only when someone reads the trace.
        self._spans: list[tuple[Any, ...]] = []
        # itertools.count increments atomically under the GIL — span ids
        # need no lock, and spans open on the warm search path.
        self._counter = itertools.count(1)
        self._dropped = 0
        self._origin = perf_counter()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _next_id(self) -> str:
        return f"{self.process}:{next(self._counter)}"

    def _record(self, row: tuple[Any, ...]) -> None:
        # Same lock-free append as _OpenSpan.__exit__: atomic under the
        # GIL, cap re-enforced at export.
        if len(self._spans) < MAX_SPANS:
            # repro: ignore[lock-discipline]
            self._spans.append(row)
        else:
            with self._lock:
                self._dropped += 1

    def span(self, name: str, **attributes: Any) -> _OpenSpan:
        """Open a span around the body; nested spans parent automatically."""
        return _OpenSpan(self, name, attributes)

    def add_span(
        self,
        name: str,
        seconds: float,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> str:
        """Record an already-measured leaf span (queue delays, absorbed
        phase timings) under ``parent_id`` or the currently open span."""
        span_id = self._next_id()
        self._record(
            (
                name,
                span_id,
                parent_id if parent_id is not None else _current_span_id.get(),
                float(seconds),
                perf_counter() - self._origin,
                self.process,
                attributes,
            )
        )
        return span_id

    def absorb_timings(
        self, phases: dict[str, float], prefix: str = "phase:"
    ) -> None:
        """Fold a :class:`~repro.utils.timing.TimingBreakdown`'s per-phase
        totals in as leaf spans under the currently open span."""
        for phase, seconds in phases.items():
            self.add_span(f"{prefix}{phase}", seconds)

    def absorb_wire(
        self, spans: list[dict[str, Any]], parent_id: str | None = None
    ) -> None:
        """Stitch spans recorded by a remote process into this trace.

        Remote root spans (no parent, or a parent outside the shipped set)
        are re-parented under ``parent_id`` (default: the currently open
        span); interior parent links are preserved.
        """
        anchor = parent_id if parent_id is not None else _current_span_id.get()
        known = {wire.get("id") for wire in spans if isinstance(wire, dict)}
        for wire in spans:
            if not isinstance(wire, dict):
                continue
            span = Span.from_wire(wire)
            if span.parent_id is None or span.parent_id not in known:
                span.parent_id = anchor
            self._record(
                (
                    span.name,
                    span.span_id,
                    span.parent_id,
                    span.seconds,
                    span.start,
                    span.process,
                    span.attributes,
                )
            )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def _rows(self) -> tuple[list[tuple[Any, ...]], int]:
        """A consistent snapshot of (recorded rows, dropped count), with
        the span cap re-enforced against racing lock-free appends."""
        with self._lock:
            rows = list(self._spans)
            dropped = self._dropped
        if len(rows) > MAX_SPANS:
            dropped += len(rows) - MAX_SPANS
            rows = rows[:MAX_SPANS]
        return rows, dropped

    @property
    def spans(self) -> list[Span]:
        rows, _dropped = self._rows()
        return [Span(*row) for row in rows]

    def to_wire(self) -> dict[str, Any]:
        """The trace as plain JSON-able data (the meta / buffer / header
        representation)."""
        rows, dropped = self._rows()
        spans = []
        for name, span_id, parent_id, seconds, start, process, attributes in rows:
            span: dict[str, Any] = {
                "name": name,
                "id": span_id,
                "parent": parent_id,
                "seconds": seconds,
                "start": start,
                "process": process,
            }
            if attributes:
                span["attributes"] = dict(attributes)
            spans.append(span)
        wire: dict[str, Any] = {"request_id": self.request_id, "spans": spans}
        if dropped:
            wire["dropped_spans"] = dropped
        return wire


# ---------------------------------------------------------------------- #
# context propagation
# ---------------------------------------------------------------------- #
def current_trace() -> Trace | None:
    """The trace active in this execution context, if any."""
    return _current_trace.get()


def current_span_id() -> str | None:
    """The id of the innermost open span in this context, if any."""
    return _current_span_id.get()


class activate:
    """Make ``trace`` the context's active trace for the body.

    ``parent_span_id`` seeds span parenting — the explicit-propagation
    hook: capture ``current_span_id()`` where work is submitted, pass it
    here inside the worker, and the worker's spans nest under the
    submitting span.  ``activate(None)`` masks any outer trace.

    A class-based context manager (lower-case by convention of its use as
    ``with activate(trace):``): it runs once per request and per executor
    hop, where ``@contextmanager`` generator machinery is real cost.
    """

    __slots__ = ("_trace", "_parent", "_trace_token", "_span_token")

    def __init__(self, trace: Trace | None, parent_span_id: str | None = None):
        self._trace = trace
        self._parent = parent_span_id

    def __enter__(self) -> None:
        self._trace_token = _current_trace.set(self._trace)
        self._span_token = _current_span_id.set(self._parent)

    def __exit__(self, *_exc: Any) -> None:
        _current_span_id.reset(self._span_token)
        _current_trace.reset(self._trace_token)


# ---------------------------------------------------------------------- #
# cross-process propagation
# ---------------------------------------------------------------------- #
def trace_header_value(trace: Trace) -> str:
    """The ``X-Repro-Trace`` request-header value for ``trace``."""
    return trace.request_id


def parse_trace_header(value: str | None) -> str | None:
    """The request_id carried by an ``X-Repro-Trace`` header, or None.

    Malformed values (empty, oversized, non-token characters) are treated
    as absent — a garbage header must not fail or slow the request.
    """
    if not value:
        return None
    request_id = value.strip()
    if not request_id or len(request_id) > _MAX_REQUEST_ID:
        return None
    if not all(ch.isalnum() or ch in "-_.:" for ch in request_id):
        return None
    return request_id


class TraceBuffer:
    """A bounded newest-N ring of finished traces, keyed by request_id."""

    def __init__(self, capacity: int = 128):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"capacity must be a positive integer, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Entries stay as Trace objects until someone reads them —
        # serialising every request's trace to wire dicts would tax the
        # hot path for a debug surface that is read rarely.
        self._traces: dict[str, "Trace | dict[str, Any]"] = {}

    def put(self, trace: "Trace | dict[str, Any]") -> None:
        if isinstance(trace, Trace):
            request_id: Any = trace.request_id
            entry: Trace | dict[str, Any] = trace
        else:
            entry = dict(trace)
            request_id = entry.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            return
        with self._lock:
            # Re-inserting moves the trace to the newest slot (dicts keep
            # insertion order); the oldest entry is evicted past capacity.
            self._traces.pop(request_id, None)
            self._traces[request_id] = entry
            while len(self._traces) > self.capacity:
                oldest = next(iter(self._traces))
                del self._traces[oldest]

    @staticmethod
    def _as_wire(entry: "Trace | dict[str, Any]") -> dict[str, Any]:
        return entry.to_wire() if isinstance(entry, Trace) else entry

    def get(self, request_id: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._traces.get(request_id)
        return None if entry is None else self._as_wire(entry)

    def newest(self, count: int = 10) -> list[dict[str, Any]]:
        """The most recent traces, newest first."""
        with self._lock:
            recent = list(self._traces.values())
        return [self._as_wire(entry) for entry in recent[::-1][: max(0, count)]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def format_trace(wire: dict[str, Any]) -> str:
    """Render a wire-shaped trace as an indented span tree (CLI output)."""
    spans = [span for span in wire.get("spans", []) if isinstance(span, dict)]
    by_parent: dict[str | None, list[dict[str, Any]]] = {}
    known = {span.get("id") for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent not in known:
            parent = None
        by_parent.setdefault(parent, []).append(span)

    lines = [f"trace {wire.get('request_id', '?')}"]

    def walk(parent: str | None, depth: int) -> None:
        for span in by_parent.get(parent, []):
            indent = "  " * depth
            millis = span.get("seconds", 0.0) * 1000.0
            lines.append(
                f"{indent}- {span.get('name', '?')}  {millis:.3f} ms"
                f"  [{span.get('process', '?')}]"
            )
            walk(span.get("id"), depth + 1)

    walk(None, 1)
    if wire.get("dropped_spans"):
        lines.append(f"  ({wire['dropped_spans']} spans dropped at the cap)")
    return "\n".join(lines)
