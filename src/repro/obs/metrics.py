"""Counters, gauges and fixed-bucket histograms behind one registry.

:class:`MetricsRegistry` is the aggregation point for a serving process:
the gateway's metrics stage, executors, caches and the remote cluster's
replica bookkeeping all record into one registry, and ``GET /v1/metrics``
exports it two ways — a versioned JSON snapshot (stable, machine-checked
shape) and the Prometheus text exposition format (scrapeable as-is).

Histograms use fixed buckets (cumulative counts, Prometheus-style) so
recording is O(#buckets) with no per-observation allocation, and
p50/p95/p99 come from linear interpolation inside the owning bucket —
the standard estimation; exact within a bucket's width.

All metric types are labelled: one :class:`Counter` named
``repro_requests_total`` holds a value per ``kind`` label, rendering as
``repro_requests_total{kind="search"} 7``.  Metric objects are
thread-safe and get-or-create through the registry, so two stages naming
the same series share it instead of clobbering each other.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

#: version of the JSON snapshot shape served by ``GET /v1/metrics``
METRICS_SCHEMA_VERSION = 1

#: default latency buckets, in seconds — sub-millisecond cache hits up to
#: multi-second deadline territory, roughly geometric
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: the quantiles every histogram snapshot reports
QUANTILES = (0.5, 0.95, 0.99)

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or not set(name) <= _NAME_CHARS or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(
    label_names: tuple[str, ...], labels: dict[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(label_names: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(label_names, key)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _BoundCounter:
    """One resolved label row of a :class:`Counter`.

    Label resolution costs a kwargs dict, a set comparison and a tuple per
    call; hot callers (the metrics middleware, once per request) bind the
    row once via :meth:`Counter.labels` and pay none of it per increment.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: tuple[str, ...]):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount!r}")
        counter = self._counter
        with counter._lock:
            counter._values[self._key] = counter._values.get(self._key, 0.0) + amount


class Counter:
    """A monotonically increasing labelled counter."""

    type_name = "counter"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount!r}")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def labels(self, **labels: Any) -> _BoundCounter:
        """A per-row handle with label resolution done up front."""
        return _BoundCounter(self, _label_key(self.label_names, labels))

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"type": self.type_name, "help": self.help, "series": series}

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(self.label_names, key)} {value:g}")
        return lines


class Gauge:
    """A labelled value that can go up and down (set-to-current semantics)."""

    type_name = "gauge"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"type": self.type_name, "help": self.help, "series": series}

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(f"{self.name}{_render_labels(self.label_names, key)} {value:g}")
        return lines


class _HistogramSeries:
    __slots__ = ("buckets", "count", "total")

    def __init__(self, bucket_count: int):
        self.buckets = [0] * bucket_count  # non-cumulative per-bucket counts
        self.count = 0
        self.total = 0.0


class _BoundHistogram:
    """One resolved label row of a :class:`Histogram` (see
    :meth:`Counter.labels` for why hot callers bind rows up front)."""

    __slots__ = ("_histogram", "_series")

    def __init__(self, histogram: "Histogram", series: _HistogramSeries):
        self._histogram = histogram
        self._series = series

    def observe(self, value: float) -> None:
        histogram = self._histogram
        value = float(value)
        index = bisect_left(histogram.bounds, value)
        series = self._series
        with histogram._lock:
            series.buckets[index] += 1
            series.count += 1
            series.total += value


class Histogram:
    """A labelled fixed-bucket histogram with quantile estimation."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self.bounds = tuple(sorted(float(bound) for bound in buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        # bisect_left gives the first bound >= value — the owning bucket;
        # past the last bound lands in the +Inf overflow slot.
        index = bisect_left(self.bounds, float(value))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
            series.buckets[index] += 1
            series.count += 1
            series.total += float(value)

    def labels(self, **labels: Any) -> "_BoundHistogram":
        """A per-row handle with label resolution (and the series-creation
        branch) done up front — the hot-path counterpart of
        :meth:`Counter.labels`."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
        return _BoundHistogram(self, series)

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the ``q``-quantile by interpolating inside the owning
        bucket.

        An empty series has no quantiles: the answer is ``None``, not a
        fabricated 0.0 a dashboard would happily plot.  A single-sample
        series answers the sample itself — interpolating inside the owning
        bucket would report a value the process never measured.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return None
            if series.count == 1:
                # sum over one observation *is* the observation
                return series.total
            rank = q * series.count
            seen = 0
            for index, bucket_count in enumerate(series.buckets):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    if index >= len(self.bounds):
                        # the +Inf bucket has no upper edge to interpolate
                        # toward; the last finite bound is the best answer
                        return self.bounds[-1]
                    upper = self.bounds[index]
                    fraction = (rank - seen) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
                seen += bucket_count
            return self.bounds[-1]

    def count(self, **labels: Any) -> int:
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series is not None else 0

    def snapshot(self) -> dict[str, Any]:
        series_rows = []
        with self._lock:
            items = sorted(self._series.items())
        for key, series in items:
            with self._lock:
                buckets = list(series.buckets)
                count = series.count
                total = series.total
            row: dict[str, Any] = {
                "labels": dict(zip(self.label_names, key)),
                "count": count,
                "sum": total,
                "buckets": {
                    str(bound): sum(buckets[: index + 1])
                    for index, bound in enumerate(self.bounds)
                },
            }
            row["buckets"]["+Inf"] = count
            row["quantiles"] = {
                f"p{int(q * 100)}": self.quantile(q, **row["labels"])
                for q in QUANTILES
            }
            series_rows.append(row)
        return {
            "type": self.type_name,
            "help": self.help,
            "bounds": list(self.bounds),
            "series": series_rows,
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        with self._lock:
            items = [
                (key, list(series.buckets), series.count, series.total)
                for key, series in sorted(self._series.items())
            ]
        for key, buckets, count, total in items:
            cumulative = 0
            for index, bound in enumerate(self.bounds):
                cumulative += buckets[index]
                rendered = _render_labels(
                    self.label_names + ("le",), key + (f"{bound:g}",)
                )
                lines.append(f"{self.name}_bucket{rendered} {cumulative}")
            rendered = _render_labels(self.label_names + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{rendered} {count}")
            plain = _render_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {total:g}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines


AnyMetric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create home for a process's metrics; snapshot + Prometheus.

    ``register_collector`` hooks pull-style sources in: a collector runs
    at export time and sets gauges from component state (cache hit/miss
    counts, live document totals) without those components having to push
    on every operation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, AnyMetric] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(
        self, factory: Callable[[], AnyMetric], name: str, kind: type
    ) -> AnyMetric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}, not {kind.type_name}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, label_names: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(
            lambda: Counter(name, help, label_names), name, Counter
        )

    def gauge(self, name: str, help: str, label_names: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(lambda: Gauge(name, help, label_names), name, Gauge)

    def histogram(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            lambda: Histogram(name, help, label_names, buckets), name, Histogram
        )

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run ``collector(registry)`` before every export (idempotent
        gauge-setting code only — collectors run on the scrape path)."""
        with self._lock:
            self._collectors.append(collector)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            # A broken collector must not fail the scrape that would have
            # revealed it; the push-path metrics still export.
            # repro: ignore[no-silent-swallow]
            except Exception:  # noqa: BLE001 - observability must not fail serving
                pass

    def snapshot(self) -> dict[str, Any]:
        """The versioned JSON export (``GET /v1/metrics``)."""
        self._collect()
        with self._lock:
            metrics = dict(self._metrics)
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": {
                name: metric.snapshot() for name, metric in sorted(metrics.items())
            },
        }

    def render_prometheus(self) -> str:
        """The text exposition export (``GET /v1/metrics?format=prometheus``)."""
        self._collect()
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        for _, metric in sorted(metrics.items()):
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
