"""A small corpus manager: several named documents behind one interface.

The demo web UI let users "specify XML data sets and keywords for
retrieval" and pick a document before querying (§4).  :class:`Corpus`
reproduces that workflow programmatically: register documents (from trees,
XML text, files or the built-in dataset generators), query any of them by
name, or query all of them at once and get the per-document outcomes back.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import DatasetError, ExtractError
from repro.snippet.generator import DEFAULT_SIZE_BOUND
from repro.system import ExtractSystem, SearchOutcome
from repro.xmltree.tree import XMLTree

#: names accepted by :meth:`Corpus.add_builtin` → generator factory
_BUILTIN_FACTORIES = {
    "figure1": lambda: _lazy("repro.datasets.paper_example", "figure1_document")(),
    "figure5-stores": lambda: _lazy("repro.datasets.retail", "figure5_document")(),
    "retail": lambda: _lazy("repro.datasets.retail", "generate_retail_document")(),
    "movies": lambda: _lazy("repro.datasets.movies", "generate_movies_document")(),
    "auctions": lambda: _lazy("repro.datasets.auctions", "generate_auction_document")(),
    "bibliography": lambda: _lazy("repro.datasets.bibliography", "generate_bibliography_document")(),
}


def _lazy(module_name: str, attribute: str):
    """Import a dataset factory lazily (keeps Corpus import light)."""
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def builtin_dataset_names() -> list[str]:
    """Names accepted by :meth:`Corpus.add_builtin` (and the CLI)."""
    return sorted(_BUILTIN_FACTORIES)


@dataclass
class CorpusEntry:
    """One registered document and its ready-to-query system."""

    name: str
    system: ExtractSystem

    @property
    def node_count(self) -> int:
        return self.system.index.tree.size_nodes

    @property
    def entity_tags(self) -> list[str]:
        return sorted(self.system.analyzer.entity_tags())


class Corpus:
    """A registry of named, indexed documents."""

    def __init__(self, algorithm: str = "slca"):
        self.algorithm = algorithm
        self._entries: dict[str, CorpusEntry] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_tree(self, name: str, tree: XMLTree) -> CorpusEntry:
        """Register an in-memory document under ``name``."""
        return self._register(name, ExtractSystem.from_tree(tree, algorithm=self.algorithm))

    def add_xml(self, name: str, xml_text: str) -> CorpusEntry:
        """Register a document given as XML text."""
        return self._register(name, ExtractSystem.from_xml(xml_text, name=name, algorithm=self.algorithm))

    def add_file(self, path: str | os.PathLike[str], name: str | None = None) -> CorpusEntry:
        """Register a document from an XML file on disk."""
        resolved = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        return self._register(resolved, ExtractSystem.from_file(path, algorithm=self.algorithm))

    def add_builtin(self, dataset: str, name: str | None = None) -> CorpusEntry:
        """Register one of the built-in synthetic datasets by name."""
        factory = _BUILTIN_FACTORIES.get(dataset)
        if factory is None:
            raise DatasetError(
                f"unknown built-in dataset {dataset!r}; available: {', '.join(builtin_dataset_names())}"
            )
        tree = factory()
        return self.add_tree(name or dataset, tree)

    def _register(self, name: str, system: ExtractSystem) -> CorpusEntry:
        if name in self._entries:
            raise ExtractError(f"a document named {name!r} is already registered")
        entry = CorpusEntry(name=name, system=system)
        self._entries[name] = entry
        return entry

    def remove(self, name: str) -> None:
        """Unregister a document (no-op error if absent)."""
        if name not in self._entries:
            raise ExtractError(f"no document named {name!r} in the corpus")
        del self._entries[name]

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        return sorted(self._entries)

    def entry(self, name: str) -> CorpusEntry:
        try:
            return self._entries[name]
        except KeyError as exc:
            raise ExtractError(
                f"no document named {name!r} in the corpus; registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def system(self, name: str) -> ExtractSystem:
        return self.entry(name).system

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self._entries.values())

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        name: str,
        query_text: str,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
    ) -> SearchOutcome:
        """Query one registered document (the demo's select-then-search flow)."""
        return self.entry(name).system.query(query_text, size_bound=size_bound, limit=limit)

    def query_all(
        self,
        query_text: str,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
    ) -> dict[str, SearchOutcome]:
        """Query every registered document; returns outcomes keyed by name.

        Documents in which the query has no results map to an outcome with
        zero results (they are not omitted), so callers can show "no hits in
        dataset X" explicitly.
        """
        return {
            name: entry.system.query(query_text, size_bound=size_bound, limit=limit)
            for name, entry in sorted(self._entries.items())
        }

    def summary(self) -> list[dict[str, object]]:
        """One row per document: name, nodes, entity tags (for listings)."""
        return [
            {
                "name": entry.name,
                "nodes": entry.node_count,
                "entities": ", ".join(entry.entity_tags),
            }
            for entry in sorted(self._entries.values(), key=lambda e: e.name)
        ]

    def __repr__(self) -> str:
        return f"<Corpus documents={len(self._entries)}>"
