"""A small corpus manager: several named documents behind one interface.

The demo web UI let users "specify XML data sets and keywords for
retrieval" and pick a document before querying (§4).  :class:`Corpus`
reproduces that workflow programmatically: register documents (from trees,
XML text, files or the built-in dataset generators), query any of them by
name, or query all of them at once and get the per-document outcomes back.

Serving features (the demo ran as a web service):

* **Persistence** — :meth:`Corpus.save_dir` snapshots every document index
  via :mod:`repro.index.storage`; :meth:`Corpus.load_dir` restores the
  corpus without re-indexing, with byte-identical query results.
* **Re-registration** — ``add_*(..., replace=True)`` swaps a document in
  place and explicitly invalidates its result/snippet caches.
* **Batch execution** — :meth:`Corpus.search_batch` runs many queries over
  many documents in one pass, sharing parsed queries and posting-list
  lookups, and reports per-query timings via
  :class:`~repro.utils.timing.TimingBreakdown`.
"""

from __future__ import annotations

import os
import re
import threading
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import DatasetError, ExtractError, StorageError
from repro.search.query import KeywordQuery
from repro.snippet.generator import DEFAULT_SIZE_BOUND
from repro.system import ExtractSystem, SearchOutcome
from repro.utils.cache import DEFAULT_CACHE_SIZE, LRUCache
from repro.utils.timing import TimingBreakdown
from repro.xmltree.tree import XMLTree

#: names accepted by :meth:`Corpus.add_builtin` → generator factory
_BUILTIN_FACTORIES = {
    "figure1": lambda: _lazy("repro.datasets.paper_example", "figure1_document")(),
    "figure5-stores": lambda: _lazy("repro.datasets.retail", "figure5_document")(),
    "retail": lambda: _lazy("repro.datasets.retail", "generate_retail_document")(),
    "movies": lambda: _lazy("repro.datasets.movies", "generate_movies_document")(),
    "auctions": lambda: _lazy("repro.datasets.auctions", "generate_auction_document")(),
    "bibliography": lambda: _lazy("repro.datasets.bibliography", "generate_bibliography_document")(),
}

_MANIFEST_FILE = "corpus.manifest"
_MANIFEST_MAGIC = "#extract-corpus v1"


def _lazy(module_name: str, attribute: str):
    """Import a dataset factory lazily (keeps Corpus import light)."""
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def builtin_dataset_names() -> list[str]:
    """Names accepted by :meth:`Corpus.add_builtin` (and the CLI)."""
    return sorted(_BUILTIN_FACTORIES)


@dataclass
class CorpusEntry:
    """One registered document and its ready-to-query system.

    The entry also owns the document's batch-level shared-postings memo
    (:attr:`postings`): binding the memo to the entry means a replaced or
    removed document's memo dies with its entry — stale postings can never
    be paired with a different index, even under concurrent swaps.
    """

    name: str
    system: ExtractSystem

    def __post_init__(self) -> None:
        self.postings = _SharedPostings(self.system.index)

    @property
    def node_count(self) -> int:
        return self.system.index.tree.size_nodes

    @property
    def entity_tags(self) -> list[str]:
        return sorted(self.system.analyzer.entity_tags())


@dataclass
class BatchQueryOutcome:
    """One batch query's outcomes across all queried documents."""

    raw: str
    query: KeywordQuery
    outcomes: dict[str, SearchOutcome] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def total_results(self) -> int:
        return sum(len(outcome) for outcome in self.outcomes.values())

    def __repr__(self) -> str:
        return (
            f"<BatchQueryOutcome query={self.raw!r} documents={len(self.outcomes)} "
            f"results={self.total_results} seconds={self.seconds:.6f}>"
        )


@dataclass
class BatchReport:
    """The result of :meth:`Corpus.search_batch`: per-query outcomes plus a
    per-query timing breakdown (phase name ``query:<raw text>``)."""

    entries: list[BatchQueryOutcome] = field(default_factory=list)
    document_names: list[str] = field(default_factory=list)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[BatchQueryOutcome]:
        return iter(self.entries)

    def entry(self, raw: str) -> BatchQueryOutcome:
        for candidate in self.entries:
            if candidate.raw == raw:
                return candidate
        raise ExtractError(f"no batch entry for query {raw!r}")

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    @property
    def total_results(self) -> int:
        return sum(entry.total_results for entry in self.entries)

    def format_table(self) -> str:
        """Aligned per-query rows: query text, result count, seconds."""
        if not self.entries:
            return "(no queries executed)"
        width = max(len(entry.raw) for entry in self.entries)
        width = max(width, len("query"))
        lines = [f"{'query'.ljust(width)}  results  seconds"]
        for entry in self.entries:
            lines.append(
                f"{entry.raw.ljust(width)}  {entry.total_results:7d}  {entry.seconds:.6f}"
            )
        lines.append(
            f"{'TOTAL'.ljust(width)}  {self.total_results:7d}  {self.total_seconds:.6f}"
        )
        return "\n".join(lines)


class Corpus:
    """A registry of named, indexed documents."""

    def __init__(self, algorithm: str = "slca", cache_size: int = DEFAULT_CACHE_SIZE):
        self.algorithm = algorithm
        self.cache_size = cache_size
        self._entries: dict[str, CorpusEntry] = {}
        #: guards registration swaps and the lazy service creation against
        #: concurrent check-then-set races.
        self._serving_lock = threading.Lock()
        self._service = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_tree(self, name: str, tree: XMLTree, replace: bool = False) -> CorpusEntry:
        """Register an in-memory document under ``name``."""
        return self._register(
            name,
            ExtractSystem.from_tree(tree, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_xml(self, name: str, xml_text: str, replace: bool = False) -> CorpusEntry:
        """Register a document given as XML text."""
        return self._register(
            name,
            ExtractSystem.from_xml(
                xml_text, name=name, algorithm=self.algorithm, cache_size=self.cache_size
            ),
            replace=replace,
        )

    def add_file(
        self, path: str | os.PathLike[str], name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register a document from an XML file on disk."""
        resolved = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        return self._register(
            resolved,
            ExtractSystem.from_file(path, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_builtin(
        self, dataset: str, name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register one of the built-in synthetic datasets by name."""
        factory = _BUILTIN_FACTORIES.get(dataset)
        if factory is None:
            raise DatasetError(
                f"unknown built-in dataset {dataset!r}; available: {', '.join(builtin_dataset_names())}"
            )
        tree = factory()
        return self.add_tree(name or dataset, tree, replace=replace)

    def _register(self, name: str, system: ExtractSystem, replace: bool = False) -> CorpusEntry:
        entry = CorpusEntry(name=name, system=system)
        # Atomic swap: concurrent requests either see the old entry (with
        # its own index-bound postings memo) or the new one — never a
        # window where the name is unregistered, and never old/new state
        # mixed (system and memo travel together on the entry).
        with self._serving_lock:
            old = self._entries.get(name)
            if old is not None and not replace:
                raise ExtractError(
                    f"a document named {name!r} is already registered "
                    "(pass replace=True to swap it and invalidate its caches)"
                )
            self._entries[name] = entry
        if old is not None:
            # Explicit invalidation on re-registration: outstanding
            # references to the old system must not keep serving results
            # for a document that was just swapped out.
            old.system.invalidate_cache()
        return entry

    def remove(self, name: str) -> None:
        """Unregister a document (no-op error if absent); its caches are
        invalidated and its batch-level memoised postings die with the
        entry, so stale outcomes cannot be served — even if the name is
        later re-registered."""
        with self._serving_lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise ExtractError(f"no document named {name!r} in the corpus")
        entry.system.invalidate_cache()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        with self._serving_lock:
            return sorted(self._entries)

    def entries_snapshot(self) -> list[CorpusEntry]:
        """A point-in-time copy of the registry, in name order.

        Fan-outs iterate this instead of the live dict, so a concurrent
        remove/add can neither crash the iteration (dict resize) nor make
        an in-flight multi-document operation fail part-way."""
        with self._serving_lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def entry(self, name: str) -> CorpusEntry:
        try:
            return self._entries[name]
        except KeyError as exc:
            raise ExtractError(
                f"no document named {name!r} in the corpus; registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def system(self, name: str) -> ExtractSystem:
        return self.entry(name).system

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries_snapshot())

    # ------------------------------------------------------------------ #
    # the service layer
    # ------------------------------------------------------------------ #
    @property
    def service(self):
        """The corpus's default :class:`repro.api.SnippetService`.

        Lazily created with a serial executor; replace :attr:`service`
        ``.executor`` (or build your own service around this corpus) to
        serve concurrently.  The deprecated ``query``/``query_all``/
        ``search_batch`` shims below all execute through this service, so
        legacy callers and protocol callers hit the exact same pipeline.
        """
        from repro.api.service import SnippetService

        with self._serving_lock:
            if self._service is None:
                self._service = SnippetService(self)
            return self._service

    def shared_postings(self, name: str) -> "_SharedPostings":
        """The memoised keyword → posting-list mapping of one document.

        At most one posting lookup per (document, distinct keyword) across
        *all* queries and batches served from this corpus.  The memo lives
        on the :class:`CorpusEntry` (always paired with the index it was
        built from), so replacing or removing the document retires it
        atomically with the entry.
        """
        return self.entry(name).postings

    # ------------------------------------------------------------------ #
    # querying (deprecated shims over the service layer)
    # ------------------------------------------------------------------ #
    def query(
        self,
        name: str,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> SearchOutcome:
        """Query one registered document (the demo's select-then-search flow).

        Deprecated: prefer a :class:`repro.api.SearchRequest` through
        :attr:`service` — this shim builds exactly that request, executes
        it on the service and unwraps the raw outcome, so results are
        identical by construction.
        """
        from repro.api.protocol import SearchRequest

        raw, parsed = _raw_and_parsed(query_text)
        entry = self.entry(name)  # resolve once, like the legacy path
        response = self.service.run(
            SearchRequest(
                query=raw,
                document=name,
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            ),
            parsed=parsed,
            build_payloads=False,  # this shim consumes the raw outcome only
            validate=False,        # keep the legacy error contract (pipeline errors)
            entry=entry,
        )
        return response.outcome

    def query_all(
        self,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> dict[str, SearchOutcome]:
        """Query every registered document; returns outcomes keyed by name.

        Documents in which the query has no results map to an outcome with
        zero results (they are not omitted), so callers can show "no hits in
        dataset X" explicitly.

        Deprecated: prefer per-document :class:`repro.api.SearchRequest`\\ s
        (or a :class:`repro.api.BatchRequest`) through :attr:`service`.
        """
        from repro.api.protocol import SearchRequest

        raw, parsed = _raw_and_parsed(query_text)
        # Snapshot the registry once (legacy semantics): a concurrent
        # remove/replace cannot make an in-flight fan-out fail part-way.
        snapshot = self.entries_snapshot()
        requests = [
            SearchRequest(
                query=raw,
                document=entry.name,
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            )
            for entry in snapshot
        ]
        responses = self.service.run_many(
            requests,
            parsed=parsed,
            build_payloads=False,
            validate=False,
            entries=snapshot,
        )
        return {entry.name: response.outcome for entry, response in zip(snapshot, responses)}

    def search_batch(
        self,
        queries: Sequence[str | KeywordQuery],
        names: Sequence[str] | None = None,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Execute many queries over many documents in one pass.

        Shared work across the batch:

        * each query string is **parsed once** (queries that normalise to
          the same keyword tuple share one :class:`KeywordQuery`), and
        * per document, every distinct keyword's posting list is **looked
          up once** and shared by all queries that use it (the memo now
          persists across batches, see :meth:`shared_postings`).

        ``names`` restricts (and orders) the documents; ``None`` means every
        registered document in name order.  The report's timing breakdown
        has one ``query:<raw>`` phase per query, so callers can print the
        same per-query rows the efficiency experiments use.

        Deprecated: prefer a :class:`repro.api.BatchRequest` through
        :attr:`service` — this shim executes one and repackages the
        response as the legacy :class:`BatchReport`.
        """
        from repro.api.protocol import BatchRequest

        selected_names = list(names) if names is not None else self.names()
        for name in selected_names:
            self.entry(name)  # fail fast on unknown documents, even for empty batches
        report = BatchReport(document_names=selected_names)
        if not queries:
            return report

        # Parse once; KeywordQuery.share makes raw strings that normalise
        # identically ("store texas" / "STORE, texas!") share one object —
        # the same rule the service batch path applies, so the report's
        # query objects are exactly what the service executed.
        raws = [
            query.raw if isinstance(query, KeywordQuery) else query for query in queries
        ]
        parsed_queries = KeywordQuery.share(
            [
                query if isinstance(query, KeywordQuery) else KeywordQuery.parse(query)
                for query in queries
            ]
        )

        response = self.service.run_batch(
            BatchRequest(
                queries=tuple(raws),
                documents=tuple(selected_names),
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            ),
            parsed_queries=parsed_queries,
            build_payloads=False,  # the legacy report consumes raw outcomes only
            validate=False,        # keep the legacy error contract (pipeline errors)
        )
        for batch_entry, parsed in zip(response.entries, parsed_queries):
            outcomes = {
                item.document: item.outcome for item in batch_entry.responses
            }
            report.entries.append(
                BatchQueryOutcome(
                    raw=batch_entry.query,
                    query=parsed,
                    outcomes=outcomes,
                    seconds=batch_entry.seconds,
                )
            )
            report.timings.add(f"query:{batch_entry.query}", batch_entry.seconds)
        return report

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_dir(self, directory: str | os.PathLike[str]) -> list[str]:
        """Snapshot every registered document index under ``directory``.

        Layout: one subdirectory per document (see
        :mod:`repro.index.storage`) plus a ``corpus.manifest`` recording the
        algorithm and the subdirectory ↔ document-name mapping.  Returns
        the subdirectory names written, in document-name order.
        """
        from repro.index.storage import save_index

        path = os.fspath(directory)
        os.makedirs(path, exist_ok=True)
        subdirs: list[str] = []
        lines = [_MANIFEST_MAGIC, f"#algorithm {self.algorithm}"]
        used: set[str] = set()
        for name in self.names():
            subdir = _subdir_for(name, used)
            used.add(subdir.lower())
            save_index(self._entries[name].system.index, os.path.join(path, subdir))
            lines.append(f"entry {subdir} {name}")
            subdirs.append(subdir)
        manifest_path = os.path.join(path, _MANIFEST_FILE)
        try:
            with open(manifest_path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError as exc:
            raise StorageError(f"failed to write corpus manifest {manifest_path}: {exc}") from exc
        return subdirs

    @classmethod
    def load_dir(
        cls,
        directory: str | os.PathLike[str],
        algorithm: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "Corpus":
        """Restore a corpus written by :meth:`save_dir` without re-indexing
        source XML; queries over the loaded corpus are byte-identical to
        queries over the corpus that was saved.

        ``algorithm`` overrides the manifest's recorded algorithm.
        """
        from repro.index.storage import load_index

        path = os.fspath(directory)
        manifest_path = os.path.join(path, _MANIFEST_FILE)
        if not os.path.exists(manifest_path):
            raise StorageError(f"{path} does not contain a saved eXtract corpus")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                first = handle.readline().rstrip("\n")
                if first != _MANIFEST_MAGIC:
                    raise StorageError(f"unrecognised corpus manifest header: {first!r}")
                manifest_algorithm = "slca"
                entries: list[tuple[str, str]] = []
                for line in handle:
                    line = line.rstrip("\n")
                    if not line:
                        continue
                    if line.startswith("#algorithm "):
                        manifest_algorithm = line.partition(" ")[2]
                        continue
                    if line.startswith("#"):
                        continue
                    kind, _, rest = line.partition(" ")
                    if kind != "entry":
                        continue
                    subdir, _, name = rest.partition(" ")
                    entries.append((subdir, name or subdir))
        except OSError as exc:
            raise StorageError(f"failed to read corpus manifest {manifest_path}: {exc}") from exc

        corpus = cls(algorithm=algorithm or manifest_algorithm, cache_size=cache_size)
        for subdir, name in entries:
            # The registry name comes from the manifest; the tree keeps the
            # document name restored by load_index, so ResultSet.document_name
            # (and cache keys) are identical before and after the round trip
            # even when a document was registered under a different name.
            index = load_index(os.path.join(path, subdir))
            corpus._register(
                name,
                ExtractSystem(index, algorithm=corpus.algorithm, cache_size=cache_size),
            )
        return corpus

    def summary(self) -> list[dict[str, object]]:
        """One row per document: name, nodes, entity tags (for listings)."""
        return [
            {
                "name": entry.name,
                "nodes": entry.node_count,
                "entities": ", ".join(entry.entity_tags),
            }
            for entry in self.entries_snapshot()
        ]

    def __repr__(self) -> str:
        return f"<Corpus documents={len(self._entries)}>"


def _raw_and_parsed(query_text: str | KeywordQuery) -> tuple[str, KeywordQuery | None]:
    """Split shim input into the raw request string and a pre-parsed query.

    The legacy shims accepted both raw text and :class:`KeywordQuery`
    objects; the typed protocol carries raw strings.  When the caller
    already parsed, the parsed object is forwarded to the service so the
    exact normalisation the caller constructed is preserved.
    """
    if isinstance(query_text, KeywordQuery):
        return query_text.raw, query_text
    return query_text, None


#: per-document cap on memoised keyword lookups; large enough that every
#: hot vocabulary fits, small enough that a stream of never-repeated
#: keywords (typos, adversarial queries) cannot grow a long-lived service
#: without bound.
SHARED_POSTINGS_MAXSIZE = 4096


class _SharedPostings:
    """A lazily-memoising keyword → posting-list mapping for one document.

    ``SearchEngine.search`` pulls posting lists via :meth:`get`; the first
    query of a batch that needs a keyword performs the index lookup, every
    later query reuses it.  Queries answered from the result cache never
    call :meth:`get`, so warm batches do no lookups.

    The memo is a bounded :class:`~repro.utils.cache.LRUCache`: unlike the
    one-batch memos of PR 1 it lives as long as its document entry, and an
    unbounded dict would grow with every distinct keyword ever queried —
    LRU eviction keeps the hot vocabulary resident while a stream of
    never-repeated keywords cycles through the tail.  The outer lock makes
    the lookup-compute-store step atomic, so concurrent executors never
    perform duplicate index work.
    """

    __slots__ = ("_index", "_cache", "_lock")

    def __init__(self, index, maxsize: int = SHARED_POSTINGS_MAXSIZE) -> None:
        self._index = index
        self._cache = LRUCache(maxsize)
        self._lock = threading.Lock()

    def get(self, keyword: str, default=None):
        with self._lock:
            postings = self._cache.get(keyword)
            if postings is None:
                postings = self._index.keyword_matches(keyword)
                self._cache.put(keyword, postings)
            return postings

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._cache


def _subdir_for(name: str, used: set[str]) -> str:
    """A filesystem-safe, collision-free subdirectory name for a document.

    Collisions are detected case-insensitively so that documents whose
    names differ only by case ("Doc" vs "doc") get distinct directories on
    case-insensitive filesystems (macOS/Windows defaults) instead of
    silently overwriting each other's snapshots.
    """
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("._") or "document"
    candidate = base
    counter = 1
    while candidate.lower() in used:
        counter += 1
        candidate = f"{base}-{counter}"
    return candidate
