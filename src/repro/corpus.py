"""A small corpus manager: several named documents behind one interface.

The demo web UI let users "specify XML data sets and keywords for
retrieval" and pick a document before querying (§4).  :class:`Corpus`
reproduces that workflow programmatically: register documents (from trees,
XML text, files or the built-in dataset generators), query any of them by
name, or query all of them at once and get the per-document outcomes back.

Serving features (the demo ran as a web service):

* **Persistence** — :meth:`Corpus.save_dir` snapshots every document index
  via :mod:`repro.index.storage`; :meth:`Corpus.load_dir` restores the
  corpus without re-indexing, with byte-identical query results, replaying
  any append-only update journal left by ``corpus-update``.
* **Re-registration** — ``add_*(..., replace=True)`` swaps a document in
  place and explicitly invalidates its result/snippet caches.
* **Incremental updates** — :meth:`Corpus.update_document` diffs the new
  version against the registered index and applies posting-level deltas
  (:mod:`repro.index.incremental`) instead of rebuilding, invalidating
  only the cache entries and memoised postings the edit can actually
  affect; :meth:`Corpus.remove_document` completes the document lifecycle.
* **Batch execution** — :meth:`Corpus.search_batch` runs many queries over
  many documents in one pass, sharing parsed queries and posting-list
  lookups, and reports per-query timings via
  :class:`~repro.utils.timing.TimingBreakdown`.
"""

from __future__ import annotations

import os
import re
import threading
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import DatasetError, ExtractError, StorageError, UnknownDocumentError
from repro.index.postings import PostingList
from repro.search.query import KeywordQuery
from repro.snippet.generator import DEFAULT_SIZE_BOUND
from repro.system import ExtractSystem, SearchOutcome
from repro.utils.cache import DEFAULT_CACHE_SIZE, LRUCache
from repro.utils.timing import TimingBreakdown
from repro.xmltree.dewey import Dewey
from repro.xmltree.diff import TextEdit, clone_tree, diff_trees
from repro.xmltree.tree import XMLTree

#: names accepted by :meth:`Corpus.add_builtin` → generator factory
_BUILTIN_FACTORIES = {
    "figure1": lambda: _lazy("repro.datasets.paper_example", "figure1_document")(),
    "figure5-stores": lambda: _lazy("repro.datasets.retail", "figure5_document")(),
    "retail": lambda: _lazy("repro.datasets.retail", "generate_retail_document")(),
    "movies": lambda: _lazy("repro.datasets.movies", "generate_movies_document")(),
    "auctions": lambda: _lazy("repro.datasets.auctions", "generate_auction_document")(),
    "bibliography": lambda: _lazy("repro.datasets.bibliography", "generate_bibliography_document")(),
}

def _lazy(module_name: str, attribute: str):
    """Import a dataset factory lazily (keeps Corpus import light)."""
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def builtin_dataset_names() -> list[str]:
    """Names accepted by :meth:`Corpus.add_builtin` (and the CLI)."""
    return sorted(_BUILTIN_FACTORIES)


@dataclass
class CorpusEntry:
    """One registered document and its ready-to-query system.

    The entry also owns the document's batch-level shared-postings memo
    (:attr:`postings`): binding the memo to the entry means a replaced or
    removed document's memo dies with its entry — stale postings can never
    be paired with a different index, even under concurrent swaps.
    """

    name: str
    system: ExtractSystem

    def __post_init__(self) -> None:
        self.postings = _SharedPostings(self.system.index)

    @property
    def node_count(self) -> int:
        return self.system.index.tree.size_nodes

    @property
    def entity_tags(self) -> list[str]:
        return sorted(self.system.analyzer.entity_tags())


@dataclass(frozen=True)
class DocumentUpdate:
    """The report of one document-lifecycle operation.

    ``incremental`` is True when the edit was applied as posting-level
    deltas; ``structural_reason`` explains the full-rebuild fallback when
    it was not.  ``text_edits`` carries the applied edits so persistence
    (the ``corpus-update`` CLI) can journal exactly what happened.
    """

    document: str
    #: "updated", "added" or "removed"
    action: str
    incremental: bool
    #: node count of the document after the operation (0 after removal)
    nodes: int
    changed_nodes: int = 0
    changed_terms: int = 0
    remined_entities: int = 0
    cache_entries_kept: int = 0
    cache_entries_invalidated: int = 0
    structural_reason: str | None = None
    text_edits: tuple[TextEdit, ...] = ()

    def __repr__(self) -> str:
        mode = "incremental" if self.incremental else "full"
        return (
            f"<DocumentUpdate {self.action} {self.document!r} {mode} "
            f"changed_nodes={self.changed_nodes} "
            f"cache kept={self.cache_entries_kept} "
            f"invalidated={self.cache_entries_invalidated}>"
        )


@dataclass
class BatchQueryOutcome:
    """One batch query's outcomes across all queried documents."""

    raw: str
    query: KeywordQuery
    outcomes: dict[str, SearchOutcome] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def total_results(self) -> int:
        return sum(len(outcome) for outcome in self.outcomes.values())

    def __repr__(self) -> str:
        return (
            f"<BatchQueryOutcome query={self.raw!r} documents={len(self.outcomes)} "
            f"results={self.total_results} seconds={self.seconds:.6f}>"
        )


@dataclass
class BatchReport:
    """The result of :meth:`Corpus.search_batch`: per-query outcomes plus a
    per-query timing breakdown (phase name ``query:<raw text>``)."""

    entries: list[BatchQueryOutcome] = field(default_factory=list)
    document_names: list[str] = field(default_factory=list)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[BatchQueryOutcome]:
        return iter(self.entries)

    def entry(self, raw: str) -> BatchQueryOutcome:
        for candidate in self.entries:
            if candidate.raw == raw:
                return candidate
        raise ExtractError(f"no batch entry for query {raw!r}")

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    @property
    def total_results(self) -> int:
        return sum(entry.total_results for entry in self.entries)

    def format_table(self) -> str:
        """Aligned per-query rows: query text, result count, seconds."""
        if not self.entries:
            return "(no queries executed)"
        width = max(len(entry.raw) for entry in self.entries)
        width = max(width, len("query"))
        lines = [f"{'query'.ljust(width)}  results  seconds"]
        for entry in self.entries:
            lines.append(
                f"{entry.raw.ljust(width)}  {entry.total_results:7d}  {entry.seconds:.6f}"
            )
        lines.append(
            f"{'TOTAL'.ljust(width)}  {self.total_results:7d}  {self.total_seconds:.6f}"
        )
        return "\n".join(lines)


class Corpus:
    """A registry of named, indexed documents."""

    def __init__(self, algorithm: str = "slca", cache_size: int = DEFAULT_CACHE_SIZE):
        self.algorithm = algorithm
        self.cache_size = cache_size
        self._entries: dict[str, CorpusEntry] = {}
        #: guards registration swaps and the lazy service creation against
        #: concurrent check-then-set races.
        self._serving_lock = threading.Lock()
        #: serialises document updates (diff → delta → swap) so concurrent
        #: updaters cannot diff against the same base and lose an edit;
        #: readers only contend on the brief swap under _serving_lock.
        #: Re-entrant because apply_update() delegates to update_document().
        self._update_lock = threading.RLock()
        self._service = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_tree(self, name: str, tree: XMLTree, replace: bool = False) -> CorpusEntry:
        """Register an in-memory document under ``name``."""
        return self._register(
            name,
            ExtractSystem.from_tree(tree, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_xml(self, name: str, xml_text: str, replace: bool = False) -> CorpusEntry:
        """Register a document given as XML text."""
        return self._register(
            name,
            ExtractSystem.from_xml(
                xml_text, name=name, algorithm=self.algorithm, cache_size=self.cache_size
            ),
            replace=replace,
        )

    def add_file(
        self, path: str | os.PathLike[str], name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register a document from an XML file on disk."""
        resolved = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        return self._register(
            resolved,
            ExtractSystem.from_file(path, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_builtin(
        self, dataset: str, name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register one of the built-in synthetic datasets by name."""
        factory = _BUILTIN_FACTORIES.get(dataset)
        if factory is None:
            raise DatasetError(
                f"unknown built-in dataset {dataset!r}; available: {', '.join(builtin_dataset_names())}"
            )
        tree = factory()
        return self.add_tree(name or dataset, tree, replace=replace)

    def add_system(self, name: str, system: ExtractSystem, replace: bool = False) -> CorpusEntry:
        """Register an already-built :class:`ExtractSystem` under ``name``.

        The seam the sharding layer (:mod:`repro.cluster`) uses to move a
        document between corpora without re-indexing: the system (index,
        caches, analyzer) is adopted as-is.  The caller must not keep
        serving the system through another corpus — a document belongs to
        exactly one registry at a time.
        """
        return self._register(name, system, replace=replace)

    def _register(self, name: str, system: ExtractSystem, replace: bool = False) -> CorpusEntry:
        entry = CorpusEntry(name=name, system=system)
        # Atomic swap: concurrent requests either see the old entry (with
        # its own index-bound postings memo) or the new one — never a
        # window where the name is unregistered, and never old/new state
        # mixed (system and memo travel together on the entry).
        with self._serving_lock:
            old = self._entries.get(name)
            if old is not None and not replace:
                raise ExtractError(
                    f"a document named {name!r} is already registered "
                    "(pass replace=True to swap it and invalidate its caches)"
                )
            self._entries[name] = entry
        if old is not None:
            # Explicit invalidation on re-registration: outstanding
            # references to the old system must not keep serving results
            # for a document that was just swapped out.
            old.system.invalidate_cache()
        return entry

    def remove(self, name: str) -> None:
        """Unregister a document (no-op error if absent); its caches are
        invalidated and its batch-level memoised postings die with the
        entry, so stale outcomes cannot be served — even if the name is
        later re-registered."""
        with self._serving_lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise UnknownDocumentError(f"no document named {name!r} in the corpus")
        entry.system.invalidate_cache()

    # ------------------------------------------------------------------ #
    # incremental document lifecycle
    # ------------------------------------------------------------------ #
    def update_document(self, name: str, tree: XMLTree) -> DocumentUpdate:
        """Replace the registered document ``name`` with an edited version.

        The new tree is diffed against the registered index
        (:func:`repro.xmltree.diff.diff_trees`):

        * **no difference** — a no-op; every cache entry survives;
        * **text-only edits** — applied as posting-level deltas
          (:func:`repro.index.incremental.apply_text_update`): unchanged
          posting lists, the structure index, the schema and unaffected
          entity keys are shared with the previous index, and the new
          entry *adopts* every result/snippet cache entry and memoised
          posting lookup the edit provably cannot affect (only entries
          whose keywords hit a changed term, whose result subtree contains
          an edited node, or — when a re-mined entity key moved — all
          snippet-bearing state are invalidated);
        * **structural edits** — full re-index fallback (preserving the
          document's original DTD context) with fresh caches.

        Updates are serialised on an update lock (no lost edits between
        concurrent updaters); the visible swap is atomic under the serving
        lock, so readers observe either the old or the new document, never
        a mix.  The tree adopts the registered document's logical name so
        cache keys stay continuous.  Raises :class:`ExtractError` when the
        name is unknown or the document is replaced/removed mid-update.
        """
        from repro.index.incremental import apply_text_update

        with self._update_lock:
            old_entry = self.entry(name)
            old_system = old_entry.system
            old_index = old_system.index
            tree.name = old_index.tree.name
            diff = diff_trees(old_index.tree, tree)
            if diff.is_empty:
                return DocumentUpdate(
                    document=name,
                    action="updated",
                    incremental=True,
                    nodes=old_index.tree.size_nodes,
                    cache_entries_kept=(
                        len(old_system.cache) + len(old_system.generator.cache)
                    ),
                )
            if diff.is_text_only:
                update = apply_text_update(old_index, tree, diff)
                new_system = ExtractSystem(
                    update.index, algorithm=self.algorithm, cache_size=self.cache_size
                )
                new_entry = CorpusEntry(name=name, system=new_system)
                kept, dropped = _carry_serving_state(old_entry, new_entry, update)
                self._swap_entry(name, old_entry, new_entry)
                old_system.invalidate_cache()
                return DocumentUpdate(
                    document=name,
                    action="updated",
                    incremental=True,
                    nodes=update.index.tree.size_nodes,
                    changed_nodes=len(diff.text_edits),
                    changed_terms=len(update.changed_terms),
                    remined_entities=len(update.remined_entity_paths),
                    cache_entries_kept=kept,
                    cache_entries_invalidated=dropped,
                    text_edits=diff.text_edits,
                )
            # Structural fallback: rebuild under the original DTD context so
            # classification semantics cannot silently drift on update.
            from repro.index.builder import IndexBuilder

            new_index = IndexBuilder(dtd=old_index.analyzer.dtd).build(tree)
            new_system = ExtractSystem(
                new_index, algorithm=self.algorithm, cache_size=self.cache_size
            )
            new_entry = CorpusEntry(name=name, system=new_system)
            dropped = len(old_system.cache) + len(old_system.generator.cache)
            self._swap_entry(name, old_entry, new_entry)
            old_system.invalidate_cache()
            return DocumentUpdate(
                document=name,
                action="updated",
                incremental=False,
                nodes=new_index.tree.size_nodes,
                changed_nodes=new_index.tree.size_nodes,
                cache_entries_invalidated=dropped,
                structural_reason=diff.structural_reason,
            )

    def remove_document(self, name: str) -> DocumentUpdate:
        """Unregister a document, reporting what was dropped (the lifecycle
        counterpart of :meth:`update_document`; :meth:`remove` remains as
        the report-less original)."""
        with self._update_lock:
            entry = self.entry(name)
            dropped = len(entry.system.cache) + len(entry.system.generator.cache)
            self.remove(name)
            return DocumentUpdate(
                document=name,
                action="removed",
                incremental=False,
                nodes=0,
                cache_entries_invalidated=dropped,
            )

    def apply_update(self, name: str, tree: XMLTree, dtd=None) -> DocumentUpdate:
        """Upsert: update ``name`` when registered, register it otherwise.

        The check-then-act pair runs under the update lock, so two
        concurrent upserts of the same new document cannot race into the
        "already registered" error.  ``dtd`` only applies to the *add* path
        (updates keep the document's original DTD context).
        """
        from repro.index.builder import IndexBuilder

        with self._update_lock:
            if name in self:
                return self.update_document(name, tree)
            system = ExtractSystem(
                IndexBuilder(dtd=dtd).build(tree),
                algorithm=self.algorithm,
                cache_size=self.cache_size,
            )
            self._register(name, system)
            return DocumentUpdate(
                document=name,
                action="added",
                incremental=False,
                nodes=tree.size_nodes,
                changed_nodes=tree.size_nodes,
            )

    def _swap_entry(self, name: str, old_entry: CorpusEntry, new_entry: CorpusEntry) -> None:
        """Atomically publish ``new_entry``, verifying the base is current."""
        with self._serving_lock:
            if self._entries.get(name) is not old_entry:
                raise ExtractError(
                    f"document {name!r} was concurrently replaced or removed "
                    "while an update was being prepared; re-read and retry"
                )
            self._entries[name] = new_entry

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        with self._serving_lock:
            return sorted(self._entries)

    def entries_snapshot(self) -> list[CorpusEntry]:
        """A point-in-time copy of the registry, in name order.

        Fan-outs iterate this instead of the live dict, so a concurrent
        remove/add can neither crash the iteration (dict resize) nor make
        an in-flight multi-document operation fail part-way."""
        with self._serving_lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def entry(self, name: str) -> CorpusEntry:
        try:
            return self._entries[name]
        except KeyError as exc:
            raise UnknownDocumentError(
                f"no document named {name!r} in the corpus; registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def system(self, name: str) -> ExtractSystem:
        return self.entry(name).system

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries_snapshot())

    # ------------------------------------------------------------------ #
    # the service layer
    # ------------------------------------------------------------------ #
    @property
    def service(self):
        """The corpus's default :class:`repro.api.SnippetService`.

        Lazily created with a serial executor; replace :attr:`service`
        ``.executor`` (or build your own service around this corpus) to
        serve concurrently.  The deprecated ``query``/``query_all``/
        ``search_batch`` shims below all execute through this service, so
        legacy callers and protocol callers hit the exact same pipeline.
        """
        from repro.api.service import SnippetService

        with self._serving_lock:
            if self._service is None:
                self._service = SnippetService(self)
            return self._service

    def shared_postings(self, name: str) -> "_SharedPostings":
        """The memoised keyword → posting-list mapping of one document.

        At most one posting lookup per (document, distinct keyword) across
        *all* queries and batches served from this corpus.  The memo lives
        on the :class:`CorpusEntry` (always paired with the index it was
        built from), so replacing or removing the document retires it
        atomically with the entry.
        """
        return self.entry(name).postings

    # ------------------------------------------------------------------ #
    # querying (deprecated shims over the service layer)
    # ------------------------------------------------------------------ #
    def query(
        self,
        name: str,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> SearchOutcome:
        """Query one registered document (the demo's select-then-search flow).

        Deprecated: prefer a :class:`repro.api.SearchRequest` through
        :attr:`service` — this shim builds exactly that request, executes
        it on the service and unwraps the raw outcome, so results are
        identical by construction.
        """
        from repro.api.protocol import SearchRequest

        raw, parsed = _raw_and_parsed(query_text)
        entry = self.entry(name)  # resolve once, like the legacy path
        response = self.service.run(
            SearchRequest(
                query=raw,
                document=name,
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            ),
            parsed=parsed,
            build_payloads=False,  # this shim consumes the raw outcome only
            validate=False,        # keep the legacy error contract (pipeline errors)
            entry=entry,
        )
        return response.outcome

    def query_all(
        self,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> dict[str, SearchOutcome]:
        """Query every registered document; returns outcomes keyed by name.

        Documents in which the query has no results map to an outcome with
        zero results (they are not omitted), so callers can show "no hits in
        dataset X" explicitly.

        Deprecated: prefer per-document :class:`repro.api.SearchRequest`\\ s
        (or a :class:`repro.api.BatchRequest`) through :attr:`service`.
        """
        from repro.api.protocol import SearchRequest

        raw, parsed = _raw_and_parsed(query_text)
        # Snapshot the registry once (legacy semantics): a concurrent
        # remove/replace cannot make an in-flight fan-out fail part-way.
        snapshot = self.entries_snapshot()
        requests = [
            SearchRequest(
                query=raw,
                document=entry.name,
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            )
            for entry in snapshot
        ]
        responses = self.service.run_many(
            requests,
            parsed=parsed,
            build_payloads=False,
            validate=False,
            entries=snapshot,
        )
        return {entry.name: response.outcome for entry, response in zip(snapshot, responses)}

    def search_batch(
        self,
        queries: Sequence[str | KeywordQuery],
        names: Sequence[str] | None = None,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Execute many queries over many documents in one pass.

        Shared work across the batch:

        * each query string is **parsed once** (queries that normalise to
          the same keyword tuple share one :class:`KeywordQuery`), and
        * per document, every distinct keyword's posting list is **looked
          up once** and shared by all queries that use it (the memo now
          persists across batches, see :meth:`shared_postings`).

        ``names`` restricts (and orders) the documents; ``None`` means every
        registered document in name order.  The report's timing breakdown
        has one ``query:<raw>`` phase per query, so callers can print the
        same per-query rows the efficiency experiments use.

        Deprecated: prefer a :class:`repro.api.BatchRequest` through
        :attr:`service` — this shim executes one and repackages the
        response as the legacy :class:`BatchReport`.
        """
        from repro.api.protocol import BatchRequest

        selected_names = list(names) if names is not None else self.names()
        for name in selected_names:
            self.entry(name)  # fail fast on unknown documents, even for empty batches
        report = BatchReport(document_names=selected_names)
        if not queries:
            return report

        # Parse once; KeywordQuery.share makes raw strings that normalise
        # identically ("store texas" / "STORE, texas!") share one object —
        # the same rule the service batch path applies, so the report's
        # query objects are exactly what the service executed.
        raws = [
            query.raw if isinstance(query, KeywordQuery) else query for query in queries
        ]
        parsed_queries = KeywordQuery.share(
            [
                query if isinstance(query, KeywordQuery) else KeywordQuery.parse(query)
                for query in queries
            ]
        )

        response = self.service.run_batch(
            BatchRequest(
                queries=tuple(raws),
                documents=tuple(selected_names),
                size_bound=size_bound,
                limit=limit,
                use_cache=use_cache,
            ),
            parsed_queries=parsed_queries,
            build_payloads=False,  # the legacy report consumes raw outcomes only
            validate=False,        # keep the legacy error contract (pipeline errors)
        )
        for batch_entry, parsed in zip(response.entries, parsed_queries):
            outcomes = {
                item.document: item.outcome for item in batch_entry.responses
            }
            report.entries.append(
                BatchQueryOutcome(
                    raw=batch_entry.query,
                    query=parsed,
                    outcomes=outcomes,
                    seconds=batch_entry.seconds,
                )
            )
            report.timings.add(f"query:{batch_entry.query}", batch_entry.seconds)
        return report

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_dir(
        self,
        directory: str | os.PathLike[str],
        format_version: int | None = None,
    ) -> list[str]:
        """Snapshot every registered document index under ``directory``.

        Layout: one subdirectory per document (see
        :mod:`repro.index.storage`) plus a ``corpus.manifest`` recording the
        algorithm and the subdirectory ↔ document-name mapping.  Any update
        journal left by earlier ``corpus-update`` runs is discarded — the
        full snapshot supersedes it (replaying it on top would double-apply
        the edits).  Returns the subdirectory names written, in
        document-name order.

        ``format_version`` selects the per-document snapshot format (the
        text default, or :data:`~repro.index.storage.BINARY_FORMAT_VERSION`
        for mmap-able binary snapshots); loading detects the format per
        subdirectory, so mixed corpora round-trip fine.
        """
        from repro.index.storage import (
            discard_corpus_journal,
            save_index,
            write_corpus_manifest,
        )

        path = os.fspath(directory)
        os.makedirs(path, exist_ok=True)
        subdirs: list[str] = []
        entries: list[tuple[str, str]] = []
        used: set[str] = set()
        for name in self.names():
            subdir = _subdir_for(name, used)
            used.add(subdir.lower())
            target = os.path.join(path, subdir)
            if format_version is None:
                save_index(self._entries[name].system.index, target)
            else:
                save_index(
                    self._entries[name].system.index,
                    target,
                    format_version=format_version,
                )
            entries.append((subdir, name))
            subdirs.append(subdir)
        write_corpus_manifest(path, self.algorithm, entries)
        discard_corpus_journal(path)
        return subdirs

    @classmethod
    def load_dir(
        cls,
        directory: str | os.PathLike[str],
        algorithm: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "Corpus":
        """Restore a corpus written by :meth:`save_dir` without re-indexing
        source XML; queries over the loaded corpus are byte-identical to
        queries over the corpus that was saved.

        The whole load is **staged**: documents are registered into a fresh
        corpus, the update journal (if any) is replayed on top of it, and
        only when everything — base snapshots and every journal record —
        validated cleanly is the corpus handed to the caller.  A corrupt or
        truncated snapshot, or a journal referencing a missing document,
        raises :class:`~repro.errors.StorageError` and leaves no partially-
        registered corpus behind.

        ``algorithm`` overrides the manifest's recorded algorithm.
        """
        from repro.index.storage import (
            load_index,
            read_corpus_journal,
            read_corpus_manifest,
        )

        path = os.fspath(directory)
        manifest = read_corpus_manifest(path)
        journal = read_corpus_journal(path)

        staged = cls(algorithm=algorithm or manifest.algorithm, cache_size=cache_size)
        names_by_subdir: dict[str, str] = {}
        for subdir, name in manifest.entries:
            # The registry name comes from the manifest; the tree keeps the
            # document name restored by load_index, so ResultSet.document_name
            # (and cache keys) are identical before and after the round trip
            # even when a document was registered under a different name.
            index = load_index(os.path.join(path, subdir))
            staged._register(
                name,
                ExtractSystem(index, algorithm=staged.algorithm, cache_size=cache_size),
            )
            names_by_subdir[subdir] = name
        staged._replay_journal(path, journal, names_by_subdir)
        return staged

    def _replay_journal(
        self,
        path: str,
        records: list,
        names_by_subdir: dict[str, str],
    ) -> None:
        """Apply journal records to a freshly staged corpus, in order.

        Text-only updates flow through :meth:`update_document`, so a
        replayed corpus is byte-identical to the corpus the updates were
        originally applied to.  Any inconsistency (unknown document
        directory, missing node, duplicate add) is a :class:`StorageError`.
        """
        from repro.index.storage import load_index

        def resolve(subdir: str) -> str:
            name = names_by_subdir.get(subdir)
            if name is None:
                raise StorageError(
                    f"update journal references unknown document directory {subdir!r}"
                )
            return name

        for record in records:
            try:
                if record.kind == "add":
                    if record.subdir in names_by_subdir:
                        raise StorageError(
                            f"update journal adds duplicate document directory {record.subdir!r}"
                        )
                    index = load_index(os.path.join(path, record.subdir))
                    self._register(
                        record.name,
                        ExtractSystem(
                            index, algorithm=self.algorithm, cache_size=self.cache_size
                        ),
                    )
                    names_by_subdir[record.subdir] = record.name
                elif record.kind == "remove":
                    name = resolve(record.subdir)
                    self.remove(name)
                    del names_by_subdir[record.subdir]
                elif record.kind == "replace":
                    name = resolve(record.subdir)
                    index = load_index(os.path.join(path, record.snapshot))
                    self._register(
                        name,
                        ExtractSystem(
                            index, algorithm=self.algorithm, cache_size=self.cache_size
                        ),
                        replace=True,
                    )
                    del names_by_subdir[record.subdir]
                    names_by_subdir[record.snapshot] = name
                elif record.kind == "update":
                    name = resolve(record.subdir)
                    edited = clone_tree(self.system(name).index.tree)
                    for label_text, new_text in record.edits:
                        label = Dewey.parse(label_text)
                        if not edited.has_node(label):
                            raise StorageError(
                                f"update journal references missing node {label_text} "
                                f"in document {name!r}"
                            )
                        edited.node(label).text = new_text if new_text else None
                    self.update_document(name, edited)
                else:
                    raise StorageError(
                        f"unknown update journal record kind {record.kind!r}"
                    )
            except StorageError:
                raise
            except ExtractError as exc:
                raise StorageError(
                    f"replaying journal record {record.kind!r} for directory "
                    f"{record.subdir!r} failed: {exc}"
                ) from exc

    def summary(self) -> list[dict[str, object]]:
        """One row per document: name, nodes, entity tags (for listings)."""
        return [
            {
                "name": entry.name,
                "nodes": entry.node_count,
                "entities": ", ".join(entry.entity_tags),
            }
            for entry in self.entries_snapshot()
        ]

    def __repr__(self) -> str:
        return f"<Corpus documents={len(self._entries)}>"


@dataclass(frozen=True)
class CompactionReport:
    """What :func:`compact_corpus_dir` folded: journal records absorbed into
    fresh base snapshots, and the resulting document subdirectories."""

    directory: str
    records_folded: int
    documents: int
    subdirs: tuple[str, ...]

    def __repr__(self) -> str:
        return (
            f"<CompactionReport {self.directory!r} folded={self.records_folded} "
            f"documents={self.documents}>"
        )


def compact_corpus_dir(
    directory: str | os.PathLike[str], cache_size: int = DEFAULT_CACHE_SIZE
) -> CompactionReport:
    """Fold a corpus directory's update journal into fresh base snapshots.

    A long-lived corpus accumulates ``corpus.journal`` records (and
    orphaned snapshot subdirectories from structural replacements) that
    every ``load_dir`` must replay; compaction replays them once and
    rewrites the directory as a clean set of base snapshots with no
    journal — the cheap-bootstrap form a new shard replica loads fastest.

    Base snapshots the journal never touched are **copied byte-for-byte**
    (the full offset range of each snapshot file) instead of being
    re-parsed and re-serialised; only documents with journal records get
    fresh snapshots, written in the mmap-able binary format
    (:data:`~repro.index.storage.BINARY_FORMAT_VERSION`).  Compacting a
    journal-free corpus is therefore byte-stable: every snapshot and the
    manifest come out identical.

    The compaction is **staged**: the journal-replayed corpus is saved
    into a sibling ``<dir>.compacting`` staging directory, then swapped
    into place by directory rename (old state briefly parked at
    ``<dir>.pre-compact``, removed on success).  The corpus directory is
    never rewritten in place, so no crash can produce a half-compacted
    corpus: any failure before the swap leaves the original untouched, a
    failure during the second rename restores the original from the
    backup, and a hard kill between the two renames — the one unguarded
    window — leaves the full original parked at ``<dir>.pre-compact``
    (rename it back to recover; the next compaction only clears leftovers
    when the corpus directory itself is present).  Search results before
    and after are byte-identical (``load_dir`` replay, snapshot copies and
    binary rewrites all preserve served bytes).
    """
    import shutil

    from repro.index.storage import (
        BINARY_FORMAT_VERSION,
        directory_documents,
        read_corpus_journal,
        save_index,
        write_corpus_manifest,
    )

    path = os.path.normpath(os.fspath(directory))
    records = read_corpus_journal(path)
    corpus = Corpus.load_dir(path, cache_size=cache_size)
    touched: set[str] = set()
    for record in records:
        touched.add(record.subdir)
        if record.snapshot:
            touched.add(record.snapshot)
    subdir_of = {name: subdir for subdir, name in directory_documents(path).items()}
    staging = f"{path}.compacting"
    backup = f"{path}.pre-compact"
    for leftover in (staging, backup):
        if os.path.exists(leftover):
            shutil.rmtree(leftover)
    try:
        os.makedirs(staging)
        subdirs: list[str] = []
        entries: list[tuple[str, str]] = []
        used = {
            subdir.lower()
            for name, subdir in subdir_of.items()
            if subdir not in touched
        }
        for name in corpus.names():
            current = subdir_of.get(name)
            if current is not None and current not in touched:
                # Untouched base snapshot: copy its files verbatim under
                # the same subdirectory name — no re-parse, no drift.
                shutil.copytree(
                    os.path.join(path, current), os.path.join(staging, current)
                )
                subdir = current
            else:
                subdir = _subdir_for(name, used)
                used.add(subdir.lower())
                save_index(
                    corpus.system(name).index,
                    os.path.join(staging, subdir),
                    format_version=BINARY_FORMAT_VERSION,
                )
            entries.append((subdir, name))
            subdirs.append(subdir)
        write_corpus_manifest(staging, corpus.algorithm, entries)
        os.rename(path, backup)
    except OSError as exc:
        raise StorageError(f"failed to compact corpus directory {path}: {exc}") from exc
    try:
        os.rename(staging, path)
    except OSError as exc:
        # Put the original back: a failed swap must not leave the corpus
        # directory missing with its content stranded in the backup.
        os.rename(backup, path)
        raise StorageError(f"failed to compact corpus directory {path}: {exc}") from exc
    shutil.rmtree(backup)
    return CompactionReport(
        directory=path,
        records_folded=len(records),
        documents=len(corpus),
        subdirs=tuple(subdirs),
    )


def _raw_and_parsed(query_text: str | KeywordQuery) -> tuple[str, KeywordQuery | None]:
    """Split shim input into the raw request string and a pre-parsed query.

    The legacy shims accepted both raw text and :class:`KeywordQuery`
    objects; the typed protocol carries raw strings.  When the caller
    already parsed, the parsed object is forwarded to the service so the
    exact normalisation the caller constructed is preserved.
    """
    if isinstance(query_text, KeywordQuery):
        return query_text.raw, query_text
    return query_text, None


#: per-document cap on memoised keyword lookups; large enough that every
#: hot vocabulary fits, small enough that a stream of never-repeated
#: keywords (typos, adversarial queries) cannot grow a long-lived service
#: without bound.
SHARED_POSTINGS_MAXSIZE = 4096


class _SharedPostings:
    """A lazily-memoising keyword → posting-list mapping for one document.

    ``SearchEngine.search`` pulls posting lists via :meth:`get`; the first
    query of a batch that needs a keyword performs the index lookup, every
    later query reuses it.  Queries answered from the result cache never
    call :meth:`get`, so warm batches do no lookups.

    The memo is a bounded :class:`~repro.utils.cache.LRUCache`: unlike the
    one-batch memos of PR 1 it lives as long as its document entry, and an
    unbounded dict would grow with every distinct keyword ever queried —
    LRU eviction keeps the hot vocabulary resident while a stream of
    never-repeated keywords cycles through the tail.  The outer lock makes
    the lookup-compute-store step atomic, so concurrent executors never
    perform duplicate index work.
    """

    __slots__ = ("_index", "_cache", "_lock")

    def __init__(self, index, maxsize: int = SHARED_POSTINGS_MAXSIZE) -> None:
        self._index = index
        self._cache = LRUCache(maxsize)
        self._lock = threading.Lock()

    def get(self, keyword: str, default=None):
        with self._lock:
            postings = self._cache.get(keyword)
            if postings is None:
                postings = self._index.keyword_matches(keyword)
                self._cache.put(keyword, postings)
            return postings

    def adopt(self, source: "_SharedPostings", keep) -> tuple[int, int]:
        """Carry over the memoised lookups of a replaced entry's memo.

        ``keep(keyword)`` decides survival; for keywords an incremental
        update did not touch, the memoised :class:`PostingList` is the very
        object the new index shares with the old one, so re-looking it up
        would be pure waste.  Returns ``(kept, dropped)``.
        """
        with self._lock:
            return self._cache.adopt(source._cache, lambda keyword, _postings: keep(keyword))

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._cache


def _carry_serving_state(
    old_entry: CorpusEntry, new_entry: CorpusEntry, update
) -> tuple[int, int]:
    """Adopt every cache entry an incremental update cannot have affected.

    The precision contract (property-tested against from-scratch
    rebuilds):

    * a cached query outcome is stale iff one of its keywords (or its
      singular form) has a changed posting list, or an edited node lies
      inside one of its result subtrees — every piece of snippet content
      (keyword matches, entity names, key values, dominant features) comes
      from inside the result subtree, so an untouched subtree renders
      byte-identically;
    * a cached snippet is stale iff an edited node lies under its result
      root;
    * a memoised posting lookup is stale iff its keyword has a changed
      posting list;
    * when a re-mined entity *key attribute* moved, snippets anywhere in
      the document may name a different key — everything is dropped.

    Returns combined (kept, dropped) counts over the two result caches.
    """
    old_system = old_entry.system
    new_system = new_entry.system
    if update.key_attributes_changed:
        def keep_query(key, value):
            return False

        keep_snippet = keep_query

        def keep_keyword(keyword):
            return False
    else:
        changed = PostingList(update.changed_labels)

        def untouched_results(value):
            results = value.results if isinstance(value, SearchOutcome) else value
            return not any(changed.has_descendant_of(result.root) for result in results)

        def keep_query(key, value):
            # key = (tree name, kind, keywords, algorithm, bound, limit, construction)
            keywords = key[2]
            if any(update.touches_keyword(keyword) for keyword in keywords):
                return False
            return untouched_results(value)

        def keep_snippet(key, value):
            # key = (tree name, result root, keywords, bound)
            return not changed.has_descendant_of(key[1])

        def keep_keyword(keyword):
            return not update.touches_keyword(keyword)

    kept_q, dropped_q = new_system.cache.adopt(old_system.cache, keep_query)
    kept_s, dropped_s = new_system.generator.cache.adopt(
        old_system.generator.cache, keep_snippet
    )
    new_entry.postings.adopt(old_entry.postings, keep_keyword)
    return kept_q + kept_s, dropped_q + dropped_s


def _subdir_for(name: str, used: set[str]) -> str:
    """A filesystem-safe, collision-free subdirectory name for a document.

    Collisions are detected case-insensitively so that documents whose
    names differ only by case ("Doc" vs "doc") get distinct directories on
    case-insensitive filesystems (macOS/Windows defaults) instead of
    silently overwriting each other's snapshots.
    """
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("._") or "document"
    candidate = base
    counter = 1
    while candidate.lower() in used:
        counter += 1
        candidate = f"{base}-{counter}"
    return candidate
