"""A small corpus manager: several named documents behind one interface.

The demo web UI let users "specify XML data sets and keywords for
retrieval" and pick a document before querying (§4).  :class:`Corpus`
reproduces that workflow programmatically: register documents (from trees,
XML text, files or the built-in dataset generators), query any of them by
name, or query all of them at once and get the per-document outcomes back.

Serving features (the demo ran as a web service):

* **Persistence** — :meth:`Corpus.save_dir` snapshots every document index
  via :mod:`repro.index.storage`; :meth:`Corpus.load_dir` restores the
  corpus without re-indexing, with byte-identical query results.
* **Re-registration** — ``add_*(..., replace=True)`` swaps a document in
  place and explicitly invalidates its result/snippet caches.
* **Batch execution** — :meth:`Corpus.search_batch` runs many queries over
  many documents in one pass, sharing parsed queries and posting-list
  lookups, and reports per-query timings via
  :class:`~repro.utils.timing.TimingBreakdown`.
"""

from __future__ import annotations

import os
import re
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import DatasetError, ExtractError, StorageError
from repro.search.query import KeywordQuery
from repro.snippet.generator import DEFAULT_SIZE_BOUND
from repro.system import ExtractSystem, SearchOutcome
from repro.utils.cache import DEFAULT_CACHE_SIZE
from repro.utils.timing import TimingBreakdown
from repro.xmltree.tree import XMLTree

#: names accepted by :meth:`Corpus.add_builtin` → generator factory
_BUILTIN_FACTORIES = {
    "figure1": lambda: _lazy("repro.datasets.paper_example", "figure1_document")(),
    "figure5-stores": lambda: _lazy("repro.datasets.retail", "figure5_document")(),
    "retail": lambda: _lazy("repro.datasets.retail", "generate_retail_document")(),
    "movies": lambda: _lazy("repro.datasets.movies", "generate_movies_document")(),
    "auctions": lambda: _lazy("repro.datasets.auctions", "generate_auction_document")(),
    "bibliography": lambda: _lazy("repro.datasets.bibliography", "generate_bibliography_document")(),
}

_MANIFEST_FILE = "corpus.manifest"
_MANIFEST_MAGIC = "#extract-corpus v1"


def _lazy(module_name: str, attribute: str):
    """Import a dataset factory lazily (keeps Corpus import light)."""
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def builtin_dataset_names() -> list[str]:
    """Names accepted by :meth:`Corpus.add_builtin` (and the CLI)."""
    return sorted(_BUILTIN_FACTORIES)


@dataclass
class CorpusEntry:
    """One registered document and its ready-to-query system."""

    name: str
    system: ExtractSystem

    @property
    def node_count(self) -> int:
        return self.system.index.tree.size_nodes

    @property
    def entity_tags(self) -> list[str]:
        return sorted(self.system.analyzer.entity_tags())


@dataclass
class BatchQueryOutcome:
    """One batch query's outcomes across all queried documents."""

    raw: str
    query: KeywordQuery
    outcomes: dict[str, SearchOutcome] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def total_results(self) -> int:
        return sum(len(outcome) for outcome in self.outcomes.values())

    def __repr__(self) -> str:
        return (
            f"<BatchQueryOutcome query={self.raw!r} documents={len(self.outcomes)} "
            f"results={self.total_results} seconds={self.seconds:.6f}>"
        )


@dataclass
class BatchReport:
    """The result of :meth:`Corpus.search_batch`: per-query outcomes plus a
    per-query timing breakdown (phase name ``query:<raw text>``)."""

    entries: list[BatchQueryOutcome] = field(default_factory=list)
    document_names: list[str] = field(default_factory=list)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[BatchQueryOutcome]:
        return iter(self.entries)

    def entry(self, raw: str) -> BatchQueryOutcome:
        for candidate in self.entries:
            if candidate.raw == raw:
                return candidate
        raise ExtractError(f"no batch entry for query {raw!r}")

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    @property
    def total_results(self) -> int:
        return sum(entry.total_results for entry in self.entries)

    def format_table(self) -> str:
        """Aligned per-query rows: query text, result count, seconds."""
        if not self.entries:
            return "(no queries executed)"
        width = max(len(entry.raw) for entry in self.entries)
        width = max(width, len("query"))
        lines = [f"{'query'.ljust(width)}  results  seconds"]
        for entry in self.entries:
            lines.append(
                f"{entry.raw.ljust(width)}  {entry.total_results:7d}  {entry.seconds:.6f}"
            )
        lines.append(
            f"{'TOTAL'.ljust(width)}  {self.total_results:7d}  {self.total_seconds:.6f}"
        )
        return "\n".join(lines)


class Corpus:
    """A registry of named, indexed documents."""

    def __init__(self, algorithm: str = "slca", cache_size: int = DEFAULT_CACHE_SIZE):
        self.algorithm = algorithm
        self.cache_size = cache_size
        self._entries: dict[str, CorpusEntry] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_tree(self, name: str, tree: XMLTree, replace: bool = False) -> CorpusEntry:
        """Register an in-memory document under ``name``."""
        return self._register(
            name,
            ExtractSystem.from_tree(tree, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_xml(self, name: str, xml_text: str, replace: bool = False) -> CorpusEntry:
        """Register a document given as XML text."""
        return self._register(
            name,
            ExtractSystem.from_xml(
                xml_text, name=name, algorithm=self.algorithm, cache_size=self.cache_size
            ),
            replace=replace,
        )

    def add_file(
        self, path: str | os.PathLike[str], name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register a document from an XML file on disk."""
        resolved = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        return self._register(
            resolved,
            ExtractSystem.from_file(path, algorithm=self.algorithm, cache_size=self.cache_size),
            replace=replace,
        )

    def add_builtin(
        self, dataset: str, name: str | None = None, replace: bool = False
    ) -> CorpusEntry:
        """Register one of the built-in synthetic datasets by name."""
        factory = _BUILTIN_FACTORIES.get(dataset)
        if factory is None:
            raise DatasetError(
                f"unknown built-in dataset {dataset!r}; available: {', '.join(builtin_dataset_names())}"
            )
        tree = factory()
        return self.add_tree(name or dataset, tree, replace=replace)

    def _register(self, name: str, system: ExtractSystem, replace: bool = False) -> CorpusEntry:
        if name in self._entries:
            if not replace:
                raise ExtractError(
                    f"a document named {name!r} is already registered "
                    "(pass replace=True to swap it and invalidate its caches)"
                )
            # Explicit invalidation on re-registration: outstanding
            # references to the old system must not keep serving results
            # for a document that was just swapped out.
            self._entries[name].system.invalidate_cache()
            del self._entries[name]
        entry = CorpusEntry(name=name, system=system)
        self._entries[name] = entry
        return entry

    def remove(self, name: str) -> None:
        """Unregister a document (no-op error if absent); its caches are
        invalidated so stale outcomes cannot be served."""
        if name not in self._entries:
            raise ExtractError(f"no document named {name!r} in the corpus")
        self._entries[name].system.invalidate_cache()
        del self._entries[name]

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        return sorted(self._entries)

    def entry(self, name: str) -> CorpusEntry:
        try:
            return self._entries[name]
        except KeyError as exc:
            raise ExtractError(
                f"no document named {name!r} in the corpus; registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def system(self, name: str) -> ExtractSystem:
        return self.entry(name).system

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self._entries.values())

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        name: str,
        query_text: str,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> SearchOutcome:
        """Query one registered document (the demo's select-then-search flow)."""
        return self.entry(name).system.query(
            query_text, size_bound=size_bound, limit=limit, use_cache=use_cache
        )

    def query_all(
        self,
        query_text: str,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> dict[str, SearchOutcome]:
        """Query every registered document; returns outcomes keyed by name.

        Documents in which the query has no results map to an outcome with
        zero results (they are not omitted), so callers can show "no hits in
        dataset X" explicitly.
        """
        return {
            name: entry.system.query(
                query_text, size_bound=size_bound, limit=limit, use_cache=use_cache
            )
            for name, entry in sorted(self._entries.items())
        }

    def search_batch(
        self,
        queries: Sequence[str | KeywordQuery],
        names: Sequence[str] | None = None,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Execute many queries over many documents in one pass.

        Shared work across the batch:

        * each query string is **parsed once** (queries that normalise to
          the same keyword tuple share one :class:`KeywordQuery`), and
        * per document, every distinct keyword's posting list is **looked
          up once** and shared by all queries that use it.

        ``names`` restricts (and orders) the documents; ``None`` means every
        registered document in name order.  The report's timing breakdown
        has one ``query:<raw>`` phase per query, so callers can print the
        same per-query rows the efficiency experiments use.
        """
        selected = [self.entry(name) for name in (names if names is not None else self.names())]

        # Parse once, sharing KeywordQuery objects between raw strings that
        # normalise identically ("store texas" / "STORE, texas!"); keyword
        # order is part of the identity because the IList preserves it.
        parsed_by_keywords: dict[tuple[str, ...], KeywordQuery] = {}
        batch_queries: list[tuple[str, KeywordQuery]] = []
        for query in queries:
            parsed = query if isinstance(query, KeywordQuery) else KeywordQuery.parse(query)
            parsed = parsed_by_keywords.setdefault(parsed.keywords, parsed)
            batch_queries.append((query.raw if isinstance(query, KeywordQuery) else query, parsed))

        # At most one posting lookup per (document, distinct keyword): the
        # shared mappings memoise lazily, so a fully warm batch (every
        # query served from the result cache) performs no lookups at all.
        postings_by_document = {
            entry.name: _SharedPostings(entry.system.index) for entry in selected
        }

        report = BatchReport(document_names=[entry.name for entry in selected])
        for raw, parsed in batch_queries:
            started = time.perf_counter()
            outcomes = {
                entry.name: entry.system.query(
                    parsed,
                    size_bound=size_bound,
                    limit=limit,
                    use_cache=use_cache,
                    postings=postings_by_document[entry.name],
                )
                for entry in selected
            }
            elapsed = time.perf_counter() - started
            report.entries.append(
                BatchQueryOutcome(raw=raw, query=parsed, outcomes=outcomes, seconds=elapsed)
            )
            report.timings.add(f"query:{raw}", elapsed)
        return report

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_dir(self, directory: str | os.PathLike[str]) -> list[str]:
        """Snapshot every registered document index under ``directory``.

        Layout: one subdirectory per document (see
        :mod:`repro.index.storage`) plus a ``corpus.manifest`` recording the
        algorithm and the subdirectory ↔ document-name mapping.  Returns
        the subdirectory names written, in document-name order.
        """
        from repro.index.storage import save_index

        path = os.fspath(directory)
        os.makedirs(path, exist_ok=True)
        subdirs: list[str] = []
        lines = [_MANIFEST_MAGIC, f"#algorithm {self.algorithm}"]
        used: set[str] = set()
        for name in self.names():
            subdir = _subdir_for(name, used)
            used.add(subdir.lower())
            save_index(self._entries[name].system.index, os.path.join(path, subdir))
            lines.append(f"entry {subdir} {name}")
            subdirs.append(subdir)
        manifest_path = os.path.join(path, _MANIFEST_FILE)
        try:
            with open(manifest_path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError as exc:
            raise StorageError(f"failed to write corpus manifest {manifest_path}: {exc}") from exc
        return subdirs

    @classmethod
    def load_dir(
        cls,
        directory: str | os.PathLike[str],
        algorithm: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "Corpus":
        """Restore a corpus written by :meth:`save_dir` without re-indexing
        source XML; queries over the loaded corpus are byte-identical to
        queries over the corpus that was saved.

        ``algorithm`` overrides the manifest's recorded algorithm.
        """
        from repro.index.storage import load_index

        path = os.fspath(directory)
        manifest_path = os.path.join(path, _MANIFEST_FILE)
        if not os.path.exists(manifest_path):
            raise StorageError(f"{path} does not contain a saved eXtract corpus")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                first = handle.readline().rstrip("\n")
                if first != _MANIFEST_MAGIC:
                    raise StorageError(f"unrecognised corpus manifest header: {first!r}")
                manifest_algorithm = "slca"
                entries: list[tuple[str, str]] = []
                for line in handle:
                    line = line.rstrip("\n")
                    if not line:
                        continue
                    if line.startswith("#algorithm "):
                        manifest_algorithm = line.partition(" ")[2]
                        continue
                    if line.startswith("#"):
                        continue
                    kind, _, rest = line.partition(" ")
                    if kind != "entry":
                        continue
                    subdir, _, name = rest.partition(" ")
                    entries.append((subdir, name or subdir))
        except OSError as exc:
            raise StorageError(f"failed to read corpus manifest {manifest_path}: {exc}") from exc

        corpus = cls(algorithm=algorithm or manifest_algorithm, cache_size=cache_size)
        for subdir, name in entries:
            # The registry name comes from the manifest; the tree keeps the
            # document name restored by load_index, so ResultSet.document_name
            # (and cache keys) are identical before and after the round trip
            # even when a document was registered under a different name.
            index = load_index(os.path.join(path, subdir))
            corpus._register(
                name,
                ExtractSystem(index, algorithm=corpus.algorithm, cache_size=cache_size),
            )
        return corpus

    def summary(self) -> list[dict[str, object]]:
        """One row per document: name, nodes, entity tags (for listings)."""
        return [
            {
                "name": entry.name,
                "nodes": entry.node_count,
                "entities": ", ".join(entry.entity_tags),
            }
            for entry in sorted(self._entries.values(), key=lambda e: e.name)
        ]

    def __repr__(self) -> str:
        return f"<Corpus documents={len(self._entries)}>"


class _SharedPostings:
    """A lazily-memoising keyword → posting-list mapping for one document.

    ``SearchEngine.search`` pulls posting lists via :meth:`get`; the first
    query of a batch that needs a keyword performs the index lookup, every
    later query reuses it.  Queries answered from the result cache never
    call :meth:`get`, so warm batches do no lookups.
    """

    __slots__ = ("_index", "_postings")

    def __init__(self, index) -> None:
        self._index = index
        self._postings: dict[str, object] = {}

    def get(self, keyword: str, default=None):
        postings = self._postings.get(keyword)
        if postings is None:
            postings = self._index.keyword_matches(keyword)
            self._postings[keyword] = postings
        return postings


def _subdir_for(name: str, used: set[str]) -> str:
    """A filesystem-safe, collision-free subdirectory name for a document.

    Collisions are detected case-insensitively so that documents whose
    names differ only by case ("Doc" vs "doc") get distinct directories on
    case-insensitive filesystems (macOS/Windows defaults) instead of
    silently overwriting each other's snapshots.
    """
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("._") or "document"
    candidate = base
    counter = 1
    while candidate.lower() in used:
        counter += 1
        candidate = f"{base}-{counter}"
    return candidate
