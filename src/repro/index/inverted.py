"""Keyword inverted index over an XML document.

Each node is indexed under:

* the tokens of its tag name (so the query keyword ``retailer`` matches
  ``<retailer>`` elements), and
* the tokens of its own text value (so ``Texas`` matches
  ``<state>Texas</state>``).

Tokens are additionally indexed under their singular form (``stores`` →
``store``) so that the Figure 5 query "store texas" behaves the same
regardless of pluralisation.  Lookups return :class:`PostingList` objects
of the *matching nodes themselves*; keyword-search semantics that require
ancestor propagation (ELCA) derive what they need from Dewey prefixes.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.errors import IndexNotBuiltError
from repro.index.postings import PostingList
from repro.utils.text import iter_index_terms, normalize_token, singularize
from repro.xmltree.dewey import Dewey
from repro.xmltree.tree import XMLTree


class InvertedIndex:
    """keyword → posting list of matching node labels."""

    def __init__(self) -> None:
        self._postings: dict[str, PostingList] = {}
        self._built = False
        self.indexed_nodes = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build(self, tree: XMLTree) -> "InvertedIndex":
        """Index every node of ``tree``; returns ``self`` for chaining."""
        accumulator: dict[str, set[Dewey]] = defaultdict(set)
        count = 0
        for node in tree.iter_nodes():
            count += 1
            for term in iter_index_terms(node.tag):
                accumulator[term].add(node.dewey)
            if node.has_text_value:
                for term in iter_index_terms(node.text or ""):
                    accumulator[term].add(node.dewey)
        self._postings = {term: PostingList(labels) for term, labels in accumulator.items()}
        self.indexed_nodes = count
        self._built = True
        return self

    @classmethod
    def from_postings(cls, postings: dict[str, PostingList]) -> "InvertedIndex":
        """Reconstruct an index from stored posting lists."""
        index = cls()
        index._postings = dict(postings)
        index._built = True
        index.indexed_nodes = sum(len(plist) for plist in postings.values())
        return index

    def apply_delta(
        self,
        added: dict[str, set[Dewey]],
        removed: dict[str, set[Dewey]],
    ) -> "InvertedIndex":
        """A new index with posting-level deltas applied (``self`` untouched).

        ``added``/``removed`` map index terms to the labels gaining/losing
        that term.  Only the touched terms get new :class:`PostingList`
        objects; every other term shares its list with this index, so the
        cost of an update scales with the *edit*, not with the vocabulary.
        Terms whose last label is removed drop out of the vocabulary —
        exactly what a from-scratch :meth:`build` of the edited document
        would produce.

        The original index keeps serving unchanged (copy-on-write): in-
        flight readers hold either the old or the new object, never a
        half-updated one.
        """
        self._ensure_built()
        postings = dict(self._postings)
        for term in set(added) | set(removed):
            base = postings.get(term, PostingList())
            updated = base.with_changes(
                added=added.get(term, ()), removed=removed.get(term, ())
            )
            if updated.is_empty:
                postings.pop(term, None)
            else:
                postings[term] = updated
        index = InvertedIndex()
        index._postings = postings
        index._built = True
        # Text edits touch values, not the node set: the node count of the
        # edited document is unchanged by construction (structural edits
        # take the full-rebuild path instead).
        index.indexed_nodes = self.indexed_nodes
        return index

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def lookup(self, keyword: str) -> PostingList:
        """Posting list of the (normalised) keyword; empty if unseen.

        The raw lower-cased form and its singular form are both consulted,
        because nodes are indexed under both: the query keyword ``stores``
        therefore matches ``<store>`` elements and vice versa.
        """
        self._ensure_built()
        token = normalize_token(keyword)
        forms = {token, singularize(token)}
        found = [self._postings[form] for form in forms if form in self._postings]
        if not found:
            return PostingList()
        if len(found) == 1:
            return found[0]
        return PostingList.union_all(found)

    def lookup_all(self, keywords: Iterable[str]) -> dict[str, PostingList]:
        """Posting lists for many keywords at once."""
        return {keyword: self.lookup(keyword) for keyword in keywords}

    def contains_term(self, keyword: str) -> bool:
        self._ensure_built()
        token = normalize_token(keyword)
        return token in self._postings or singularize(token) in self._postings

    @property
    def vocabulary(self) -> list[str]:
        """All indexed terms, sorted."""
        self._ensure_built()
        return sorted(self._postings)

    @property
    def vocabulary_size(self) -> int:
        self._ensure_built()
        return len(self._postings)

    def document_frequency(self, keyword: str) -> int:
        """Number of nodes matching the keyword."""
        return len(self.lookup(keyword))

    def postings_dict(self) -> dict[str, PostingList]:
        """The raw term → posting list mapping (for storage)."""
        self._ensure_built()
        return dict(self._postings)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("InvertedIndex used before build() was called")

    def __repr__(self) -> str:
        status = f"terms={len(self._postings)}" if self._built else "unbuilt"
        return f"<InvertedIndex {status}>"
