"""Incremental maintenance of a :class:`~repro.index.builder.DocumentIndex`.

Re-registering an edited document rebuilds everything — schema inference,
classification, key mining, tokenisation of every text value, structure
index.  For the common case of *text-only* edits (same tree shape, same
tags, values changed) almost all of that work is redundant, and this
module applies the edit as a set of deltas instead:

* **inverted index** — per changed node, the index terms its old and new
  text disagree on become posting-level additions/removals
  (:meth:`~repro.index.inverted.InvertedIndex.apply_delta`); untouched
  terms keep sharing their posting lists with the previous index.
* **schema** — classification inputs (shape, tags, text *presence*) are
  unchanged by construction, so the schema summary is reused with only the
  per-path value counters patched.
* **entity keys** — key mining reads attribute values document-wide, so an
  edited attribute value can flip the mined key of exactly one entity
  type: its direct parent.  Only those entity paths are re-mined (over
  their instances, not the whole tree).
* **structure index** — stores Dewey labels, tag paths and categories
  only, none of which a text edit can move; the object is shared as-is.

Everything is copy-on-write: the previous index keeps serving unchanged
while the update is being assembled, and the result is a fresh
:class:`DocumentIndex` whose observable behaviour is identical to a
from-scratch rebuild of the edited document — the incremental-update
property tests compare wire-level responses byte for byte.

Structural edits (node set, tags, attributes or text presence changed) are
out of scope by design: they can reclassify schema nodes, so callers
(:meth:`repro.corpus.Corpus.update_document`) fall back to a full rebuild.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, replace

from repro.classify.analyzer import DataAnalyzer, EntityType
from repro.classify.categories import NodeCategory
from repro.classify.keys import KeyMiner
from repro.errors import IndexError_
from repro.index.builder import DocumentIndex
from repro.utils.text import iter_index_terms, normalize_value, singularize
from repro.xmltree.dewey import Dewey
from repro.xmltree.diff import TreeDiff
from repro.xmltree.schema import SchemaSummary, TagPath
from repro.xmltree.tree import XMLTree


@dataclass(frozen=True)
class IncrementalUpdate:
    """The outcome of applying a text-only edit to an existing index."""

    index: DocumentIndex
    #: labels of the nodes whose text changed (document order)
    changed_labels: tuple[Dewey, ...]
    #: index terms whose posting lists changed (raw and singular forms)
    changed_terms: frozenset[str]
    #: entity paths whose keys were re-mined
    remined_entity_paths: tuple[TagPath, ...]
    #: True when a re-mined key now names a different attribute (or appeared /
    #: disappeared) — cached snippets may carry the old key and must go
    key_attributes_changed: bool

    def touches_keyword(self, keyword: str) -> bool:
        """Could the posting lists consulted for ``keyword`` have changed?

        Lookups consult the normalised keyword and its singular form (the
        index stores both forms of every token), so a cached entry is
        affected exactly when either form is among the changed terms.
        """
        return keyword in self.changed_terms or singularize(keyword) in self.changed_terms


def apply_text_update(
    old_index: DocumentIndex, new_tree: XMLTree, diff: TreeDiff
) -> IncrementalUpdate:
    """Apply a text-only :class:`TreeDiff` to ``old_index``.

    ``new_tree`` must be the tree ``diff`` was computed against; the
    returned index is built around it.  Raises :class:`IndexError_` when the
    diff is not text-only (callers decide the fallback, this module never
    guesses).
    """
    if not diff.is_text_only:
        raise IndexError_(
            "apply_text_update() requires a text-only diff; "
            f"got {diff!r} (structural edits need a full rebuild)"
        )

    added, removed = _posting_deltas(diff)
    new_inverted = old_index.inverted.apply_delta(added, removed)

    old_analyzer = old_index.analyzer
    schema = _patched_schema(old_analyzer.schema, diff)

    affected = _affected_entity_paths(old_analyzer, diff)
    entity_types = dict(old_analyzer.entity_types)
    key_changed = False
    if affected:
        miner = KeyMiner(schema)
        for entity_path in sorted(affected):
            old_entity = entity_types[entity_path]
            instances = new_tree.nodes(
                old_index.structure.instances_of_path(entity_path)
            )
            new_key = miner.mine_entity(new_tree, entity_path, instances=instances)
            if _key_attribute(new_key) != _key_attribute(old_entity.key):
                key_changed = True
            entity_types[entity_path] = EntityType(
                tag_path=old_entity.tag_path,
                tag=old_entity.tag,
                instance_count=old_entity.instance_count,
                attribute_paths=list(old_entity.attribute_paths),
                key=new_key,
            )

    analyzer = DataAnalyzer.rebound(
        tree=new_tree,
        dtd=old_analyzer.dtd,
        schema=schema,
        categories=dict(old_analyzer.categories),
        entity_types=entity_types,
    )
    index = DocumentIndex(
        tree=new_tree,
        analyzer=analyzer,
        inverted=new_inverted,
        structure=old_index.structure,
    )
    return IncrementalUpdate(
        index=index,
        changed_labels=tuple(edit.label for edit in diff.text_edits),
        changed_terms=frozenset(added) | frozenset(removed),
        remined_entity_paths=tuple(sorted(affected)),
        key_attributes_changed=key_changed,
    )


# ---------------------------------------------------------------------- #
# delta derivation
# ---------------------------------------------------------------------- #
def _posting_deltas(
    diff: TreeDiff,
) -> tuple[dict[str, set[Dewey]], dict[str, set[Dewey]]]:
    """Per-term label additions/removals implied by the text edits.

    A node is indexed under its tag terms *and* its text terms; only terms
    the tag does not already contribute can actually appear or disappear
    when the text changes (the tag is untouched for text-only edits).
    """
    added: dict[str, set[Dewey]] = defaultdict(set)
    removed: dict[str, set[Dewey]] = defaultdict(set)
    for edit in diff.text_edits:
        tag_terms = set(iter_index_terms(edit.tag))
        old_terms = set(iter_index_terms(edit.old_text))
        new_terms = set(iter_index_terms(edit.new_text))
        for term in old_terms - new_terms - tag_terms:
            removed[term].add(edit.label)
        for term in new_terms - old_terms - tag_terms:
            added[term].add(edit.label)
    return dict(added), dict(removed)


def _patched_schema(old_schema: SchemaSummary, diff: TreeDiff) -> SchemaSummary:
    """The old schema with per-path value counters moved to the new texts.

    Shape, tags and text presence are untouched by a text-only diff, so
    instance counts, sibling maxima and classification inputs are reused;
    only ``value_counts`` of the edited paths changes — and only those
    :class:`SchemaNode` entries are copied, the rest stay shared (the old
    analyzer may still be serving in-flight requests).
    """
    nodes = dict(old_schema.nodes)
    patched: set[TagPath] = set()
    for edit in diff.text_edits:
        if edit.tag_path not in patched:
            patched.add(edit.tag_path)
            entry = nodes[edit.tag_path]
            nodes[edit.tag_path] = replace(entry, value_counts=Counter(entry.value_counts))
        counts = nodes[edit.tag_path].value_counts
        old_value = normalize_value(edit.old_text)
        new_value = normalize_value(edit.new_text)
        counts[old_value] -= 1
        if counts[old_value] <= 0:
            # Counter equality does not ignore zero entries; a fresh
            # inference never records them, so neither may the patch.
            del counts[old_value]
        counts[new_value] += 1
    schema = SchemaSummary(dtd=old_schema.dtd)
    schema.nodes = nodes
    return schema


def _affected_entity_paths(analyzer: DataAnalyzer, diff: TreeDiff) -> set[TagPath]:
    """Entity paths whose mined key can depend on an edited value.

    Key mining only reads the values of an entity's *direct* attribute
    children, so an edited node can affect exactly one entity path: its
    parent — and only when the edited path is attribute-classified.
    """
    affected: set[TagPath] = set()
    for edit in diff.text_edits:
        parent = edit.tag_path[:-1]
        if (
            parent in analyzer.entity_types
            and analyzer.categories.get(edit.tag_path) == NodeCategory.ATTRIBUTE
        ):
            affected.add(parent)
    return affected


def _key_attribute(key) -> TagPath | None:
    return key.attribute_path if key is not None else None
