"""Structure index: tags, categories and parent/children relationships.

Figure 4 lists "information about node category, and parent-children
relationship" as index content.  With Dewey labels the parent relationship
is implicit in the label itself; this index adds:

* tag → posting list (all instances of a tag),
* tag path → posting list (all instances of a schema node),
* Dewey label → tag path (so a label coming out of the inverted index can
  be classified without touching the tree),
* node category per tag path (entity / attribute / connection).
"""

from __future__ import annotations

from collections import defaultdict

from repro.classify.analyzer import DataAnalyzer
from repro.classify.categories import NodeCategory
from repro.errors import IndexNotBuiltError
from repro.index.postings import PostingList
from repro.xmltree.dewey import Dewey
from repro.xmltree.schema import TagPath
from repro.xmltree.tree import XMLTree


class StructureIndex:
    """Label/tag/category index over one document."""

    def __init__(self) -> None:
        self._by_tag: dict[str, PostingList] = {}
        self._by_path: dict[TagPath, PostingList] = {}
        self._path_of_label: dict[Dewey, TagPath] = {}
        self._category_of_path: dict[TagPath, NodeCategory] = {}
        self._built = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build(self, tree: XMLTree, analyzer: DataAnalyzer) -> "StructureIndex":
        by_tag: dict[str, set[Dewey]] = defaultdict(set)
        by_path: dict[TagPath, set[Dewey]] = defaultdict(set)
        path_of_label: dict[Dewey, TagPath] = {}
        for node in tree.iter_nodes():
            by_tag[node.tag].add(node.dewey)
            path = node.tag_path
            by_path[path].add(node.dewey)
            path_of_label[node.dewey] = path
        self._by_tag = {tag: PostingList(labels) for tag, labels in by_tag.items()}
        self._by_path = {path: PostingList(labels) for path, labels in by_path.items()}
        self._path_of_label = path_of_label
        self._category_of_path = dict(analyzer.categories)
        self._built = True
        return self

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def instances_of_tag(self, tag: str) -> PostingList:
        self._ensure_built()
        return self._by_tag.get(tag, PostingList())

    def instances_of_path(self, tag_path: TagPath) -> PostingList:
        self._ensure_built()
        return self._by_path.get(tag_path, PostingList())

    def tag_path_of(self, label: Dewey) -> TagPath | None:
        self._ensure_built()
        return self._path_of_label.get(label)

    def tag_of(self, label: Dewey) -> str | None:
        path = self.tag_path_of(label)
        return path[-1] if path else None

    def category_of(self, label: Dewey) -> NodeCategory:
        """Category of the node with the given label.

        Unknown labels (e.g. from another document) default to CONNECTION,
        mirroring :meth:`DataAnalyzer.category_of_path`.
        """
        path = self.tag_path_of(label)
        if path is None:
            return NodeCategory.CONNECTION
        return self._category_of_path.get(path, NodeCategory.CONNECTION)

    def category_of_path(self, tag_path: TagPath) -> NodeCategory:
        self._ensure_built()
        return self._category_of_path.get(tag_path, NodeCategory.CONNECTION)

    def parent_of(self, label: Dewey) -> Dewey | None:
        """Parent label (None for the root) — Dewey arithmetic, no lookup."""
        if label.is_root:
            return None
        return label.parent()

    def children_of(self, label: Dewey) -> list[Dewey]:
        """Child labels of a node, derived from the per-path posting lists."""
        self._ensure_built()
        children: list[Dewey] = []
        parent_path = self._path_of_label.get(label)
        if parent_path is None:
            return children
        for path, postings in self._by_path.items():
            if len(path) == len(parent_path) + 1 and path[:-1] == parent_path:
                children.extend(
                    child for child in postings.descendants_of(label) if child.depth == label.depth + 1
                )
        return sorted(children)

    @property
    def known_tags(self) -> list[str]:
        self._ensure_built()
        return sorted(self._by_tag)

    @property
    def known_paths(self) -> list[TagPath]:
        self._ensure_built()
        return sorted(self._by_path)

    def entity_paths(self) -> list[TagPath]:
        """Tag paths classified as entities (shortest first)."""
        self._ensure_built()
        return sorted(
            (path for path, cat in self._category_of_path.items() if cat == NodeCategory.ENTITY),
            key=lambda path: (len(path), path),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("StructureIndex used before build() was called")

    def __repr__(self) -> str:
        status = f"tags={len(self._by_tag)} paths={len(self._by_path)}" if self._built else "unbuilt"
        return f"<StructureIndex {status}>"
