"""The v4 binary, mmap-able snapshot format.

The v1–v3 snapshots (:mod:`repro.index.storage`) are diff-friendly UTF-8
text: loading one re-parses ``document.xml``, re-runs the full analysis and
rebuilds both indexes just to validate the stored sections.  That cost is
what every cold shard bootstrap, replica spin-up and ``corpus-compact``
pays per document.  Version 4 instead persists *everything* the loaded
:class:`~repro.index.builder.DocumentIndex` needs — tree, pre/post/level
order, posting lists, structure index and the full analyzer state
(including the DTD, which v3 could not round-trip) — as one struct-packed
file that is opened via :mod:`mmap` and decoded lazily.

Layout of ``snapshot.bin`` (all integers little-endian)::

    header   magic ``EXIDXBIN`` (8s) · format version (u32) · section count (u32)
    table    section count × (section id u32 · absolute offset u64 · length u64)
    sections META · STRINGS · TREE · ORDER · POSTINGS · STRUCTURE · ANALYZER
    trailer  crc32 of everything above (u32) · end magic ``EXIDXEND`` (8s)

* **META** — JSON: document name and node count.
* **STRINGS** — deduplicated, sorted string table (u32 count, then u32
  byte length + UTF-8 per string); every tag, text value, index term and
  ``/``-joined tag path is referenced by its id.
* **TREE** — one ``<iIi>`` record per node in pre-order: parent pre id
  (−1 for the root), tag string id, text string id (−1 for no text).
  Node identity *is* the pre-order position, so Dewey labels need not be
  stored: one :meth:`XMLTree._reindex` pass reassigns them bit-identically.
* **ORDER** — per node ``<II>``: post-order rank and level.  ``pre`` is
  implicit.  Validated against the reindexed tree on load.
* **POSTINGS** — u32 term count, a directory of (term string id u32,
  posting count u32, section-relative blob offset u64), then the blobs:
  sorted u32 pre ids.  The directory alone is enough to answer
  vocabulary/containment questions; blobs are only decoded when a term is
  actually looked up (:class:`LazyInvertedIndex`).
* **STRUCTURE** — same shape keyed by ``/``-joined tag-path string ids.
* **ANALYZER** — canonical JSON (sorted keys) of the schema summary, node
  categories, entity types, mined keys and the DTD, rebound on load via
  :meth:`~repro.classify.analyzer.DataAnalyzer.rebound`.

Truncation and corruption are rejected *before any posting is trusted*:
the header magic, format version, end sentinel and whole-file checksum are
all verified at open, and every table/directory offset is bounds-checked
against the actual file size.  Any failure raises
:class:`~repro.errors.StorageError`, matching the staged-load contract of
the text formats.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import zlib
from collections import Counter

from repro.classify.analyzer import DataAnalyzer, EntityType
from repro.classify.categories import NodeCategory
from repro.classify.keys import KeyInfo
from repro.errors import StorageError
from repro.index.builder import DocumentIndex
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.index.structure import StructureIndex
from repro.utils.text import normalize_token, singularize
from repro.xmltree.dewey import Dewey
from repro.xmltree.dtd import DTD, AttributeDecl, ChildSpec, ElementDecl
from repro.xmltree.node import XMLNode
from repro.xmltree.schema import SchemaNode, SchemaSummary, TagPath
from repro.xmltree.tree import XMLTree

#: the on-disk format version this module reads and writes
BINARY_FORMAT_VERSION = 4

#: file name of a binary snapshot inside its snapshot directory
BINARY_FILE = "snapshot.bin"

_HEADER_MAGIC = b"EXIDXBIN"
_END_MAGIC = b"EXIDXEND"
_HEADER = struct.Struct("<8sII")
_TABLE_ENTRY = struct.Struct("<IQQ")
_TRAILER = struct.Struct("<I8s")
_TREE_RECORD = struct.Struct("<iIi")
_ORDER_RECORD = struct.Struct("<II")
_DIR_ENTRY = struct.Struct("<IIQ")
_U32 = struct.Struct("<I")

#: section ids (order in the file follows this numbering)
_SEC_META = 1
_SEC_STRINGS = 2
_SEC_TREE = 3
_SEC_ORDER = 4
_SEC_POSTINGS = 5
_SEC_STRUCTURE = 6
_SEC_ANALYZER = 7
_REQUIRED_SECTIONS = (
    _SEC_META,
    _SEC_STRINGS,
    _SEC_TREE,
    _SEC_ORDER,
    _SEC_POSTINGS,
    _SEC_STRUCTURE,
    _SEC_ANALYZER,
)

_PATH_SEPARATOR = "/"

#: shared label for detached reconstructed nodes (reindexing overwrites it)
_ROOT_LABEL = Dewey.root()

_CATEGORY_VALUES = {category.value: category for category in NodeCategory}


# ---------------------------------------------------------------------- #
# writer
# ---------------------------------------------------------------------- #
def write_binary_index(index: DocumentIndex, directory: str | os.PathLike[str]) -> None:
    """Persist ``index`` into ``directory`` as a v4 binary snapshot.

    The snapshot directory holds the single ``snapshot.bin`` file; the
    document, the indexes and the analyzer state all live inside it.
    Output bytes are deterministic: every table and directory is sorted
    and the JSON sections use canonical key order.
    """
    path = os.fspath(directory)
    payload = build_binary_snapshot(index)
    try:
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, BINARY_FILE), "wb") as handle:
            handle.write(payload)
    except OSError as exc:
        raise StorageError(f"failed to save binary index to {path}: {exc}") from exc


def build_binary_snapshot(index: DocumentIndex) -> bytes:
    """Serialise ``index`` to the v4 byte layout (no filesystem access)."""
    tree = index.tree
    nodes = list(tree.iter_nodes())
    pre_of = {node.dewey: position for position, node in enumerate(nodes)}
    post_of, level_of = _compute_order(tree.root, pre_of)

    postings_map = index.inverted.postings_dict()
    structure_paths = {
        _PATH_SEPARATOR.join(tag_path): index.structure.instances_of_path(tag_path)
        for tag_path in index.structure.known_paths
    }

    strings: set[str] = set()
    for node in nodes:
        strings.add(node.tag)
        if node.text is not None:
            strings.add(node.text)
    strings.update(postings_map)
    strings.update(structure_paths)
    string_table = sorted(strings)
    sid = {text: position for position, text in enumerate(string_table)}

    meta = {"name": tree.name, "nodes": len(nodes)}
    sections = {
        _SEC_META: _dump_json(meta),
        _SEC_STRINGS: _pack_strings(string_table),
        _SEC_TREE: _pack_tree(nodes, pre_of, sid),
        _SEC_ORDER: b"".join(
            _ORDER_RECORD.pack(post, level) for post, level in zip(post_of, level_of)
        ),
        _SEC_POSTINGS: _pack_directory(postings_map, sid, pre_of),
        _SEC_STRUCTURE: _pack_directory(structure_paths, sid, pre_of),
        _SEC_ANALYZER: _dump_json(_encode_analyzer(index.analyzer)),
    }

    table_end = _HEADER.size + _TABLE_ENTRY.size * len(_REQUIRED_SECTIONS)
    pieces = [_HEADER.pack(_HEADER_MAGIC, BINARY_FORMAT_VERSION, len(_REQUIRED_SECTIONS))]
    offset = table_end
    for section_id in _REQUIRED_SECTIONS:
        length = len(sections[section_id])
        pieces.append(_TABLE_ENTRY.pack(section_id, offset, length))
        offset += length
    pieces.extend(sections[section_id] for section_id in _REQUIRED_SECTIONS)
    body = b"".join(pieces)
    return body + _TRAILER.pack(zlib.crc32(body), _END_MAGIC)


def _compute_order(
    root: XMLNode, pre_of: dict[Dewey, int]
) -> tuple[list[int], list[int]]:
    """Post-order ranks and levels, indexed by pre id.

    Recomputed here (rather than trusting ``node.post``) so the writer is
    consistent by construction with what :meth:`XMLTree._reindex` assigns
    on load — the reader validates the ORDER section against exactly that.
    """
    count = len(pre_of)
    post_of = [0] * count
    level_of = [0] * count
    post = 0
    stack: list[tuple[XMLNode, int, bool]] = [(root, 0, False)]
    while stack:
        node, level, exiting = stack.pop()
        position = pre_of[node.dewey]
        if exiting:
            post_of[position] = post
            post += 1
            continue
        level_of[position] = level
        stack.append((node, level, True))
        for child in reversed(node.children):
            stack.append((child, level + 1, False))
    return post_of, level_of


def _pack_strings(string_table: list[str]) -> bytes:
    pieces = [_U32.pack(len(string_table))]
    for text in string_table:
        raw = text.encode("utf-8")
        pieces.append(_U32.pack(len(raw)))
        pieces.append(raw)
    return b"".join(pieces)


def _pack_tree(
    nodes: list[XMLNode], pre_of: dict[Dewey, int], sid: dict[str, int]
) -> bytes:
    pieces = []
    for node in nodes:
        parent = pre_of[node.parent.dewey] if node.parent is not None else -1
        text_sid = sid[node.text] if node.text is not None else -1
        pieces.append(_TREE_RECORD.pack(parent, sid[node.tag], text_sid))
    return b"".join(pieces)


def _pack_directory(
    lists: dict[str, PostingList], sid: dict[str, int], pre_of: dict[Dewey, int]
) -> bytes:
    """Directory + blobs for a name → posting-list mapping (sorted by name)."""
    names = sorted(lists)
    directory_size = _U32.size + _DIR_ENTRY.size * len(names)
    entries = []
    blobs = []
    offset = directory_size
    for name in names:
        labels = lists[name].labels
        blob = struct.pack(f"<{len(labels)}I", *(pre_of[label] for label in labels))
        entries.append(_DIR_ENTRY.pack(sid[name], len(labels), offset))
        blobs.append(blob)
        offset += len(blob)
    return b"".join([_U32.pack(len(names)), *entries, *blobs])


def _dump_json(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


# ---------------------------------------------------------------------- #
# analyzer state codec
# ---------------------------------------------------------------------- #
def _encode_analyzer(analyzer: DataAnalyzer) -> dict:
    schema_nodes = []
    for tag_path in sorted(analyzer.schema.nodes):
        entry = analyzer.schema.nodes[tag_path]
        schema_nodes.append(
            {
                "tag_path": list(tag_path),
                "instance_count": entry.instance_count,
                "max_siblings_per_parent": entry.max_siblings_per_parent,
                "with_text": entry.with_text,
                "with_element_children": entry.with_element_children,
                "child_paths": sorted(list(path) for path in entry.child_paths),
                "value_counts": dict(entry.value_counts),
            }
        )
    entity_types = []
    for tag_path in sorted(analyzer.entity_types):
        entity = analyzer.entity_types[tag_path]
        key = entity.key
        entity_types.append(
            {
                "tag_path": list(tag_path),
                "instance_count": entity.instance_count,
                "attribute_paths": [list(path) for path in entity.attribute_paths],
                "key": None
                if key is None
                else {
                    "entity_path": list(key.entity_path),
                    "attribute_path": list(key.attribute_path),
                    "coverage": key.coverage,
                    "uniqueness": key.uniqueness,
                    "from_dtd": key.from_dtd,
                },
            }
        )
    return {
        "schema": schema_nodes,
        "categories": [
            [list(path), category.value]
            for path, category in sorted(analyzer.categories.items())
        ],
        "entity_types": entity_types,
        "dtd": _encode_dtd(analyzer.dtd),
    }


def _encode_dtd(dtd: DTD | None) -> dict | None:
    if dtd is None:
        return None
    return {
        "root": dtd.root,
        "elements": {
            tag: {
                "content_model": decl.content_model,
                "has_text": decl.has_text,
                "is_empty": decl.is_empty,
                "is_any": decl.is_any,
                "children": {
                    child_tag: [spec.repeatable, spec.optional]
                    for child_tag, spec in decl.children.items()
                },
            }
            for tag, decl in dtd.elements.items()
        },
        "attributes": [
            [attr.element, attr.name, attr.attr_type, attr.default]
            for attr in dtd.attributes
        ],
    }


def _decode_analyzer(tree: XMLTree, payload: dict) -> DataAnalyzer:
    try:
        dtd = _decode_dtd(payload["dtd"])
        schema = SchemaSummary(dtd)
        for entry in payload["schema"]:
            tag_path: TagPath = tuple(entry["tag_path"])
            schema.nodes[tag_path] = SchemaNode(
                tag_path=tag_path,
                tag=tag_path[-1],
                instance_count=entry["instance_count"],
                max_siblings_per_parent=entry["max_siblings_per_parent"],
                with_text=entry["with_text"],
                with_element_children=entry["with_element_children"],
                child_paths={tuple(path) for path in entry["child_paths"]},
                value_counts=Counter(entry["value_counts"]),
            )
        categories = {
            tuple(path): _CATEGORY_VALUES[value]
            for path, value in payload["categories"]
        }
        entity_types: dict[TagPath, EntityType] = {}
        for entry in payload["entity_types"]:
            tag_path = tuple(entry["tag_path"])
            key_data = entry["key"]
            key = (
                None
                if key_data is None
                else KeyInfo(
                    entity_path=tuple(key_data["entity_path"]),
                    attribute_path=tuple(key_data["attribute_path"]),
                    coverage=key_data["coverage"],
                    uniqueness=key_data["uniqueness"],
                    from_dtd=key_data["from_dtd"],
                )
            )
            entity_types[tag_path] = EntityType(
                tag_path=tag_path,
                tag=tag_path[-1],
                instance_count=entry["instance_count"],
                attribute_paths=[tuple(path) for path in entry["attribute_paths"]],
                key=key,
            )
    except (KeyError, IndexError, TypeError) as exc:
        raise StorageError(f"malformed analyzer section: {exc}") from exc
    return DataAnalyzer.rebound(tree, dtd, schema, categories, entity_types)


def _decode_dtd(payload: dict | None) -> DTD | None:
    if payload is None:
        return None
    elements = {
        tag: ElementDecl(
            tag=tag,
            content_model=entry["content_model"],
            children={
                child_tag: ChildSpec(
                    tag=child_tag, repeatable=repeatable, optional=optional
                )
                for child_tag, (repeatable, optional) in entry["children"].items()
            },
            has_text=entry["has_text"],
            is_empty=entry["is_empty"],
            is_any=entry["is_any"],
        )
        for tag, entry in payload["elements"].items()
    }
    attributes = [
        AttributeDecl(element=element, name=name, attr_type=attr_type, default=default)
        for element, name, attr_type, default in payload["attributes"]
    ]
    return DTD(elements, attributes, root=payload["root"])


# ---------------------------------------------------------------------- #
# reader
# ---------------------------------------------------------------------- #
class _SnapshotBuffer:
    """A verified, mmap'd v4 snapshot: section table plus raw bytes.

    Holding a reference to this object keeps the mapping alive for the
    lazily-decoded posting lists; the file descriptor itself is closed as
    soon as the mapping exists.
    """

    def __init__(self, file_path: str):
        try:
            size = os.path.getsize(file_path)
        except OSError as exc:
            raise StorageError(f"failed to read binary index {file_path}: {exc}") from exc
        floor = _HEADER.size + _TRAILER.size
        if size < floor:
            raise StorageError(
                f"binary index {file_path} is truncated: {size} bytes is smaller "
                f"than the {floor}-byte header and trailer"
            )
        try:
            with open(file_path, "rb") as handle:
                self.buffer: mmap.mmap | bytes = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as exc:
            raise StorageError(f"failed to map binary index {file_path}: {exc}") from exc
        self.size = size
        self._verify(file_path)

    def _verify(self, file_path: str) -> None:
        buffer = self.buffer
        magic, version, section_count = _HEADER.unpack_from(buffer, 0)
        if magic != _HEADER_MAGIC:
            raise StorageError(
                f"unrecognised binary index header in {file_path}: {magic!r}"
            )
        if version != BINARY_FORMAT_VERSION:
            raise StorageError(
                f"unsupported binary index format version {version} in {file_path} "
                f"(this build reads version {BINARY_FORMAT_VERSION})"
            )
        crc, end_magic = _TRAILER.unpack_from(buffer, self.size - _TRAILER.size)
        if end_magic != _END_MAGIC:
            raise StorageError(
                f"binary index {file_path} is truncated: missing the end sentinel"
            )
        if zlib.crc32(buffer[: self.size - _TRAILER.size]) != crc:
            raise StorageError(
                f"binary index {file_path} is corrupt: checksum mismatch"
            )
        table_end = _HEADER.size + _TABLE_ENTRY.size * section_count
        if table_end + _TRAILER.size > self.size:
            raise StorageError(
                f"binary index {file_path} is truncated: the offset table for "
                f"{section_count} sections does not fit the file"
            )
        sections: dict[int, tuple[int, int]] = {}
        for position in range(section_count):
            section_id, offset, length = _TABLE_ENTRY.unpack_from(
                buffer, _HEADER.size + _TABLE_ENTRY.size * position
            )
            if offset < table_end or offset + length > self.size - _TRAILER.size:
                raise StorageError(
                    f"binary index {file_path} is corrupt: section {section_id} "
                    f"lies outside the file bounds"
                )
            sections[section_id] = (offset, length)
        missing = [sid for sid in _REQUIRED_SECTIONS if sid not in sections]
        if missing:
            raise StorageError(
                f"binary index {file_path} is corrupt: missing section(s) {missing}"
            )
        self.sections = sections

    def section(self, section_id: int) -> tuple[int, int]:
        return self.sections[section_id]

    def section_bytes(self, section_id: int) -> bytes:
        offset, length = self.sections[section_id]
        return bytes(self.buffer[offset : offset + length])


class _PostingSource:
    """Decodes u32 pre-id blobs of the POSTINGS section into label lists."""

    __slots__ = ("_buffer", "_base", "_labels_by_pre")

    def __init__(self, snapshot: _SnapshotBuffer, labels_by_pre: list[Dewey]):
        self._buffer = snapshot.buffer
        self._base = snapshot.section(_SEC_POSTINGS)[0]
        self._labels_by_pre = labels_by_pre

    def posting_list(self, offset: int, count: int) -> PostingList:
        ids = struct.unpack_from(f"<{count}I", self._buffer, self._base + offset)
        labels_by_pre = self._labels_by_pre
        postings = PostingList.__new__(PostingList)
        # pre ids ascend in document order, which is exactly the sorted
        # Dewey order the PostingList invariant requires.
        postings._labels = [labels_by_pre[pre] for pre in ids]
        return postings


class LazyInvertedIndex(InvertedIndex):
    """An inverted index whose posting lists decode from mmap on first use.

    The term directory (term → blob span) is read eagerly — it is what
    vocabulary and containment questions need — but each posting list is
    only materialised when the term is actually looked up, so a cold shard
    answers its first query after decoding just the lists that query
    touches.  Materialisation is guarded by a lock: the serving layer
    shares one index across executor threads.

    :meth:`apply_delta` keeps incremental updates and journal replay lazy
    too: only the terms the delta touches are materialised; the clone
    shares the mmap source for everything else.
    """

    def __init__(
        self,
        source: _PostingSource,
        pending: dict[str, tuple[int, int]],
        indexed_nodes: int,
    ):
        super().__init__()
        self._source = source
        self._pending = dict(pending)
        self._lock = threading.Lock()
        self._built = True
        # Matches InvertedIndex.from_postings semantics (sum of posting
        # lengths), keeping v4-loaded and v3-loaded indexes identical.
        self.indexed_nodes = indexed_nodes

    # -------------------------------------------------------------- #
    # materialisation
    # -------------------------------------------------------------- #
    def _materialize(self, term: str) -> None:
        with self._lock:
            span = self._pending.pop(term, None)
            if span is not None:
                self._postings[term] = self._source.posting_list(*span)

    def _materialize_all(self) -> None:
        with self._lock:
            for term, span in self._pending.items():
                self._postings[term] = self._source.posting_list(*span)
            self._pending = {}

    @property
    def pending_terms(self) -> int:
        """Number of posting lists not yet decoded (observability/tests)."""
        with self._lock:
            return len(self._pending)

    # -------------------------------------------------------------- #
    # overridden lookups
    # -------------------------------------------------------------- #
    def lookup(self, keyword: str) -> PostingList:
        token = normalize_token(keyword)
        self._materialize(token)
        self._materialize(singularize(token))
        return super().lookup(keyword)

    def contains_term(self, keyword: str) -> bool:
        token = normalize_token(keyword)
        forms = {token, singularize(token)}
        with self._lock:
            return any(
                form in self._postings or form in self._pending for form in forms
            )

    @property
    def vocabulary(self) -> list[str]:
        with self._lock:
            return sorted(set(self._postings) | set(self._pending))

    @property
    def vocabulary_size(self) -> int:
        with self._lock:
            return len(self._postings) + len(self._pending)

    def postings_dict(self) -> dict[str, PostingList]:
        self._materialize_all()
        return super().postings_dict()

    def apply_delta(
        self,
        added: dict[str, set[Dewey]],
        removed: dict[str, set[Dewey]],
    ) -> "LazyInvertedIndex":
        touched = set(added) | set(removed)
        for term in touched:
            self._materialize(term)
        with self._lock:
            pending = {
                term: span for term, span in self._pending.items() if term not in touched
            }
            postings = dict(self._postings)
        for term in touched:
            base = postings.get(term, PostingList())
            updated = base.with_changes(
                added=added.get(term, ()), removed=removed.get(term, ())
            )
            if updated.is_empty:
                postings.pop(term, None)
            else:
                postings[term] = updated
        clone = LazyInvertedIndex(self._source, pending, self.indexed_nodes)
        clone._postings = postings
        return clone

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<LazyInvertedIndex terms={len(self._postings) + len(self._pending)} "
                f"pending={len(self._pending)}>"
            )


def load_binary_index(
    directory: str | os.PathLike[str], lazy: bool = True
) -> DocumentIndex:
    """Load a :class:`DocumentIndex` from a v4 binary snapshot directory.

    With ``lazy=True`` (the default) the inverted index is a
    :class:`LazyInvertedIndex` backed by the mmap'd file; ``lazy=False``
    materialises every posting list up front and returns a plain
    :class:`InvertedIndex`.  Either way, queries over the loaded index are
    byte-identical to queries over the index that was saved — and to a
    v3 text load of the same corpus.
    """
    path = os.fspath(directory)
    file_path = os.path.join(path, BINARY_FILE)
    if not os.path.exists(file_path):
        raise StorageError(f"{path} does not contain a saved eXtract index")
    snapshot = _SnapshotBuffer(file_path)

    meta = _load_json(snapshot, _SEC_META, file_path)
    strings = _read_strings(snapshot, file_path)
    tree = _rebuild_tree(snapshot, strings, meta, file_path)
    labels_by_pre = [node.dewey for node in tree.iter_nodes()]
    _validate_order(snapshot, tree, file_path)

    analyzer_payload = _load_json(snapshot, _SEC_ANALYZER, file_path)
    analyzer = _decode_analyzer(tree, analyzer_payload)

    structure = _rebuild_structure(
        snapshot, strings, labels_by_pre, analyzer, file_path
    )

    directory_entries = _read_directory(
        snapshot, _SEC_POSTINGS, strings, file_path
    )
    source = _PostingSource(snapshot, labels_by_pre)
    indexed_nodes = sum(count for count, _ in directory_entries.values())
    if lazy:
        inverted: InvertedIndex = LazyInvertedIndex(
            source,
            {term: (offset, count) for term, (count, offset) in directory_entries.items()},
            indexed_nodes,
        )
    else:
        inverted = InvertedIndex.from_postings(
            {
                term: source.posting_list(offset, count)
                for term, (count, offset) in directory_entries.items()
            }
        )
    return DocumentIndex(
        tree=tree, analyzer=analyzer, inverted=inverted, structure=structure
    )


def _load_json(snapshot: _SnapshotBuffer, section_id: int, file_path: str) -> dict:
    try:
        payload = json.loads(snapshot.section_bytes(section_id).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(
            f"binary index {file_path} is corrupt: malformed JSON section "
            f"{section_id}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise StorageError(
            f"binary index {file_path} is corrupt: section {section_id} is not an object"
        )
    return payload


def _read_strings(snapshot: _SnapshotBuffer, file_path: str) -> list[str]:
    data = snapshot.section_bytes(_SEC_STRINGS)
    try:
        (count,) = _U32.unpack_from(data, 0)
        strings: list[str] = []
        position = _U32.size
        for _ in range(count):
            (length,) = _U32.unpack_from(data, position)
            position += _U32.size
            if position + length > len(data):
                raise StorageError(
                    f"binary index {file_path} is corrupt: string table overruns "
                    f"its section"
                )
            strings.append(data[position : position + length].decode("utf-8"))
            position += length
    except (struct.error, UnicodeDecodeError) as exc:
        raise StorageError(
            f"binary index {file_path} is corrupt: malformed string table: {exc}"
        ) from exc
    return strings


def _rebuild_tree(
    snapshot: _SnapshotBuffer, strings: list[str], meta: dict, file_path: str
) -> XMLTree:
    data = snapshot.section_bytes(_SEC_TREE)
    if len(data) % _TREE_RECORD.size:
        raise StorageError(
            f"binary index {file_path} is corrupt: tree section is not a whole "
            f"number of records"
        )
    count = len(data) // _TREE_RECORD.size
    declared = meta.get("nodes")
    if declared != count:
        raise StorageError(
            f"binary index {file_path} is corrupt: header declares {declared} "
            f"nodes but the tree section holds {count}"
        )
    if count == 0:
        raise StorageError(f"binary index {file_path} is corrupt: empty tree section")
    nodes: list[XMLNode] = []
    try:
        for position, (parent, tag_sid, text_sid) in enumerate(
            _TREE_RECORD.iter_unpack(data)
        ):
            # Fields are wired directly (append_child would re-derive Dewey
            # labels recursively per attachment — O(n²) on deep documents);
            # the single XMLTree reindex below assigns labels and order ids.
            node = XMLNode.__new__(XMLNode)
            node.tag = strings[tag_sid]
            node.text = strings[text_sid] if text_sid >= 0 else None
            node.dewey = _ROOT_LABEL
            node.parent = None
            node.children = []
            node.pre = node.post = node.level = 0
            node._attributes = {}
            if parent >= 0:
                if parent >= position:
                    raise StorageError(
                        f"binary index {file_path} is corrupt: node {position} "
                        f"references a parent after itself"
                    )
                node.parent = nodes[parent]
                nodes[parent].children.append(node)
            elif position != 0:
                raise StorageError(
                    f"binary index {file_path} is corrupt: node {position} is a "
                    f"second root"
                )
            nodes.append(node)
    except IndexError as exc:
        raise StorageError(
            f"binary index {file_path} is corrupt: tree references an unknown "
            f"string id"
        ) from exc
    name = meta.get("name")
    if not isinstance(name, str) or not name:
        raise StorageError(f"binary index {file_path} is corrupt: missing document name")
    return XMLTree(nodes[0], name=name)


def _validate_order(snapshot: _SnapshotBuffer, tree: XMLTree, file_path: str) -> None:
    data = snapshot.section_bytes(_SEC_ORDER)
    if len(data) != _ORDER_RECORD.size * tree.size_nodes:
        raise StorageError(
            f"binary index {file_path} is corrupt: order section size does not "
            f"match the node count"
        )
    for node, (post, level) in zip(tree.iter_nodes(), _ORDER_RECORD.iter_unpack(data)):
        if node.post != post or node.level != level:
            raise StorageError(
                f"binary index {file_path} is corrupt: stored pre/post order "
                f"disagrees with the reconstructed tree at node {node.dewey}"
            )


def _read_directory(
    snapshot: _SnapshotBuffer, section_id: int, strings: list[str], file_path: str
) -> dict[str, tuple[int, int]]:
    """Parse a directory section into name → (count, blob offset).

    Blob spans are bounds-checked against the section length here, so the
    lazy decoder can trust them later without re-validating.
    """
    offset, length = snapshot.section(section_id)
    buffer = snapshot.buffer
    try:
        (count,) = _U32.unpack_from(buffer, offset)
    except struct.error as exc:
        raise StorageError(
            f"binary index {file_path} is corrupt: unreadable directory header"
        ) from exc
    directory_size = _U32.size + _DIR_ENTRY.size * count
    if directory_size > length:
        raise StorageError(
            f"binary index {file_path} is corrupt: directory of {count} entries "
            f"overruns its section"
        )
    entries: dict[str, tuple[int, int]] = {}
    for position in range(count):
        name_sid, list_count, blob_offset = _DIR_ENTRY.unpack_from(
            buffer, offset + _U32.size + _DIR_ENTRY.size * position
        )
        if name_sid >= len(strings):
            raise StorageError(
                f"binary index {file_path} is corrupt: directory references an "
                f"unknown string id"
            )
        if blob_offset + list_count * _U32.size > length:
            raise StorageError(
                f"binary index {file_path} is corrupt: posting blob for "
                f"{strings[name_sid]!r} overruns its section"
            )
        entries[strings[name_sid]] = (list_count, blob_offset)
    return entries


def _rebuild_structure(
    snapshot: _SnapshotBuffer,
    strings: list[str],
    labels_by_pre: list[Dewey],
    analyzer: DataAnalyzer,
    file_path: str,
) -> StructureIndex:
    entries = _read_directory(snapshot, _SEC_STRUCTURE, strings, file_path)
    base, _ = snapshot.section(_SEC_STRUCTURE)
    buffer = snapshot.buffer
    by_path: dict[TagPath, PostingList] = {}
    path_of_label: dict[Dewey, TagPath] = {}
    by_tag_labels: dict[str, list[Dewey]] = {}
    node_count = len(labels_by_pre)
    for path_text, (count, blob_offset) in entries.items():
        tag_path = tuple(path_text.split(_PATH_SEPARATOR))
        ids = struct.unpack_from(f"<{count}I", buffer, base + blob_offset)
        if any(pre >= node_count for pre in ids):
            raise StorageError(
                f"binary index {file_path} is corrupt: structure postings for "
                f"{path_text!r} reference unknown nodes"
            )
        labels = [labels_by_pre[pre] for pre in ids]
        postings = PostingList.__new__(PostingList)
        postings._labels = labels
        by_path[tag_path] = postings
        for label in labels:
            path_of_label[label] = tag_path
        by_tag_labels.setdefault(tag_path[-1], []).extend(labels)
    if len(path_of_label) != node_count:
        raise StorageError(
            f"binary index {file_path} is corrupt: structure postings cover "
            f"{len(path_of_label)} nodes, expected {node_count}"
        )
    structure = StructureIndex()
    structure._by_path = by_path
    structure._path_of_label = path_of_label
    structure._by_tag = {
        tag: PostingList(labels) for tag, labels in by_tag_labels.items()
    }
    structure._category_of_path = dict(analyzer.categories)
    structure._built = True
    return structure
