"""Posting lists of Dewey labels.

A posting list is the sorted (document-order) list of Dewey labels of the
nodes that match one term.  SLCA/ELCA evaluation and the snippet
generator's instance selection work directly on these lists, so the class
offers the binary-search primitives those algorithms rely on: left/right
neighbour lookup, ancestor-aware containment and standard merge operations.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.xmltree.dewey import Dewey
from repro.xmltree.order import NodeOrder, is_ancestor_or_self


class PostingList:
    """An immutable, sorted, de-duplicated list of Dewey labels."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[Dewey] = ()):
        self._labels: list[Dewey] = sorted(set(labels))

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Dewey]:
        return iter(self._labels)

    def __getitem__(self, index: int) -> Dewey:
        return self._labels[index]

    def __contains__(self, label: Dewey) -> bool:
        position = bisect.bisect_left(self._labels, label)
        return position < len(self._labels) and self._labels[position] == label

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        preview = ", ".join(str(label) for label in self._labels[:4])
        suffix = ", ..." if len(self._labels) > 4 else ""
        return f"<PostingList n={len(self._labels)} [{preview}{suffix}]>"

    @property
    def labels(self) -> list[Dewey]:
        """A copy of the underlying sorted label list."""
        return list(self._labels)

    @property
    def is_empty(self) -> bool:
        return not self._labels

    # ------------------------------------------------------------------ #
    # binary-search primitives (used by the SLCA algorithm)
    # ------------------------------------------------------------------ #
    def left_neighbour(self, label: Dewey) -> Dewey | None:
        """The largest posting <= ``label`` in document order (lm in [7])."""
        position = bisect.bisect_right(self._labels, label)
        if position == 0:
            return None
        return self._labels[position - 1]

    def right_neighbour(self, label: Dewey) -> Dewey | None:
        """The smallest posting >= ``label`` in document order (rm in [7])."""
        position = bisect.bisect_left(self._labels, label)
        if position >= len(self._labels):
            return None
        return self._labels[position]

    def closest_match(self, label: Dewey) -> Dewey | None:
        """The posting whose LCA with ``label`` is deepest (closest match).

        This is the core primitive of the Indexed Lookup Eager SLCA
        algorithm [7]: the closest match is always the left neighbour
        ``lm`` or the right neighbour ``rm`` in document order, whichever
        yields the deeper LCA with ``label``.

        **Tie-break** (symmetric matches): when both neighbours yield an
        equal-depth LCA, those two LCAs are the *same node* — each is the
        length-``d`` prefix of ``label`` — so the choice cannot change any
        LCA computed from the returned match.  Following the ``lm``-first
        orientation of the definition in [7] we deterministically return
        the **left** neighbour, which keeps downstream traversals stable
        across runs and documents.
        """
        left = self.left_neighbour(label)
        right = self.right_neighbour(label)
        if left is None:
            return right
        if right is None:
            return left
        left_depth = Dewey.common_ancestor(left, label).depth
        right_depth = Dewey.common_ancestor(right, label).depth
        if left_depth == right_depth:
            return left  # documented tie-break: prefer lm (see docstring)
        return left if left_depth > right_depth else right

    def has_descendant_of(self, ancestor: Dewey, order: NodeOrder | None = None) -> bool:
        """Does any posting lie in the subtree rooted at ``ancestor``?

        With ``order`` (the owning tree's pre/post span table) the
        ancestor test is an O(1) range comparison instead of a Dewey
        prefix walk.
        """
        position = bisect.bisect_left(self._labels, ancestor)
        if position < len(self._labels) and is_ancestor_or_self(
            ancestor, self._labels[position], order
        ):
            return True
        return False

    def descendants_of(self, ancestor: Dewey, order: NodeOrder | None = None) -> list[Dewey]:
        """All postings within the subtree rooted at ``ancestor``."""
        result: list[Dewey] = []
        position = bisect.bisect_left(self._labels, ancestor)
        while position < len(self._labels):
            label = self._labels[position]
            if not is_ancestor_or_self(ancestor, label, order):
                break
            result.append(label)
            position += 1
        return result

    # ------------------------------------------------------------------ #
    # set operations
    # ------------------------------------------------------------------ #
    def union(self, other: "PostingList") -> "PostingList":
        return PostingList(self._labels + other._labels)

    def intersection(self, other: "PostingList") -> "PostingList":
        longer, shorter = (self, other) if len(self) >= len(other) else (other, self)
        return PostingList(label for label in shorter if label in longer)

    def difference(self, other: "PostingList") -> "PostingList":
        return PostingList(label for label in self._labels if label not in other)

    @staticmethod
    def union_all(lists: Iterable["PostingList"]) -> "PostingList":
        labels: list[Dewey] = []
        for posting_list in lists:
            labels.extend(posting_list._labels)
        return PostingList(labels)

    # ------------------------------------------------------------------ #
    # delta application (incremental index maintenance)
    # ------------------------------------------------------------------ #
    def with_changes(
        self, added: Iterable[Dewey] = (), removed: Iterable[Dewey] = ()
    ) -> "PostingList":
        """A new list equal to ``(self - removed) | added``.

        This is the posting-level primitive of incremental index updates
        (:meth:`repro.index.inverted.InvertedIndex.apply_delta`): instead of
        re-sorting the whole list, surviving labels are walked once and the
        (typically tiny, already-sorted) additions are merged in — O(n + a
        log a) rather than the O(n log n) of rebuilding via the constructor.
        A label present in both ``removed`` and ``added`` ends up present.

        >>> plist = PostingList([Dewey((0,)), Dewey((1,))])
        >>> changed = plist.with_changes(added=[Dewey((2,))], removed=[Dewey((0,))])
        >>> changed.to_strings()
        ['1', '2']
        """
        removed_set = set(removed)
        additions = sorted(set(added))
        merged: list[Dewey] = []
        position = 0
        for label in self._labels:
            if label in removed_set:
                continue
            while position < len(additions) and additions[position] < label:
                merged.append(additions[position])
                position += 1
            if position < len(additions) and additions[position] == label:
                position += 1  # already present; keep the single copy below
            merged.append(label)
        merged.extend(additions[position:])
        result = PostingList.__new__(PostingList)
        result._labels = merged
        return result

    # ------------------------------------------------------------------ #
    # serialisation helpers (used by repro.index.storage)
    # ------------------------------------------------------------------ #
    def to_strings(self) -> list[str]:
        return [str(label) for label in self._labels]

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "PostingList":
        return cls(Dewey.parse(text) for text in texts)
