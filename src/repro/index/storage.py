"""On-disk persistence for document indexes.

The original eXtract demo precomputed its indexes on the server so queries
over the web UI were fast.  This module provides the equivalent: a
**versioned snapshot format** for a full :class:`DocumentIndex` — the
inverted postings, the structure index (tag-path posting lists) and the
analyzer summary — written as plain, diff-friendly UTF-8 text, independent
of pickle.  :class:`repro.corpus.Corpus` builds on it to round-trip whole
multi-document corpora (``save_dir``/``load_dir``) so re-indexing is
skipped on reload.

Format (UTF-8 text), version 2::

    #extract-index v2
    #document <name>
    #nodes <count>
    #summary entity=<n> attribute=<n> connection=<n>
    T <term> <label> <label> ...
    P <tag-path joined by '/'> <label> <label> ...

The tree itself is stored alongside as regular XML (via
:mod:`repro.xmltree.serialize`).  On load the document is re-parsed and
re-analyzed, then *validated section by section* against the stored
artefact: node count, analyzer summary, structure paths and vocabulary
must all agree, guarding against a document/index mismatch on disk.  The
stored posting lists are authoritative for the loaded index.

Version 1 snapshots (no ``#summary``/``P`` sections) are still readable.

Limitation: a DTD supplied at build time is not part of the snapshot; if
the DTD changed the analyzer's classification, the stored summary will
disagree with the re-analysis and loading fails with a clear error rather
than silently restoring different semantics.
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.xmltree.parser import parse_xml_file
from repro.xmltree.serialize import to_xml_string

_MAGIC_V2 = "#extract-index v2"
_MAGIC_V1 = "#extract-index v1"
_KNOWN_MAGICS = (_MAGIC_V2, _MAGIC_V1)

#: file names inside a snapshot directory
DOCUMENT_FILE = "document.xml"
INDEX_FILE = "inverted.idx"

_PATH_SEPARATOR = "/"


def save_index(index: DocumentIndex, directory: str | os.PathLike[str]) -> None:
    """Persist ``index`` (document + inverted + structure + summary) into
    ``directory`` as a version-2 snapshot."""
    path = os.fspath(directory)
    os.makedirs(path, exist_ok=True)
    document_path = os.path.join(path, DOCUMENT_FILE)
    index_path = os.path.join(path, INDEX_FILE)
    summary = index.analyzer.summary()
    try:
        with open(document_path, "w", encoding="utf-8") as handle:
            handle.write(to_xml_string(index.tree))
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write(f"{_MAGIC_V2}\n")
            handle.write(f"#document {index.tree.name}\n")
            handle.write(f"#nodes {index.tree.size_nodes}\n")
            handle.write(
                "#summary "
                f"entity={summary['entity']} "
                f"attribute={summary['attribute']} "
                f"connection={summary['connection']}\n"
            )
            postings_map = index.inverted.postings_dict()
            for term in sorted(postings_map):
                # The raw per-term lists, not lookup() results: lookup folds
                # plural forms together, which would inflate the snapshot
                # and drift on repeated save/load cycles.
                labels = " ".join(postings_map[term].to_strings())
                handle.write(f"T {term} {labels}\n")
            for tag_path in sorted(index.structure.known_paths):
                postings = index.structure.instances_of_path(tag_path)
                labels = " ".join(postings.to_strings())
                handle.write(f"P {_PATH_SEPARATOR.join(tag_path)} {labels}\n")
    except OSError as exc:
        raise StorageError(f"failed to save index to {path}: {exc}") from exc


def load_index(directory: str | os.PathLike[str]) -> DocumentIndex:
    """Load a :class:`DocumentIndex` previously written by :func:`save_index`.

    The XML document is re-parsed and re-analyzed; every stored section is
    validated against the freshly built index (node count, analyzer
    summary, structure paths, vocabulary) and the stored posting lists then
    replace the rebuilt ones — they are authoritative for the artefact on
    disk, and queries over the loaded index are byte-identical to queries
    over the index that was saved.
    """
    path = os.fspath(directory)
    document_path = os.path.join(path, DOCUMENT_FILE)
    index_path = os.path.join(path, INDEX_FILE)
    if not os.path.exists(document_path) or not os.path.exists(index_path):
        raise StorageError(f"{path} does not contain a saved eXtract index")

    try:
        parse_result = parse_xml_file(document_path)
    except OSError as exc:
        raise StorageError(f"failed to read stored document: {exc}") from exc

    snapshot = _read_snapshot(index_path)

    if snapshot.document_name:
        # The file on disk is always called document.xml; the logical name
        # lives in the snapshot header and must survive the round trip
        # (cache keys and corpus registration key on it).
        parse_result.tree.name = snapshot.document_name

    index = IndexBuilder().build(parse_result.tree)
    if snapshot.nodes is not None and snapshot.nodes != parse_result.tree.size_nodes:
        raise StorageError(
            f"stored index covers {snapshot.nodes} nodes but the stored document has "
            f"{parse_result.tree.size_nodes}; the artefacts are out of sync"
        )
    if snapshot.summary is not None:
        rebuilt_summary = index.analyzer.summary()
        if rebuilt_summary != snapshot.summary:
            raise StorageError(
                f"stored analyzer summary {snapshot.summary} does not match the "
                f"re-analysis {rebuilt_summary}; the index was likely built with a "
                "DTD that is not part of the snapshot"
            )
    if snapshot.structure_paths is not None:
        rebuilt_structure = {
            _PATH_SEPARATOR.join(tag_path): index.structure.instances_of_path(tag_path)
            for tag_path in index.structure.known_paths
        }
        if set(rebuilt_structure) != set(snapshot.structure_paths):
            raise StorageError(
                "stored structure index paths do not match the stored document; "
                "refusing to load inconsistent index"
            )
        for path_text, stored in snapshot.structure_paths.items():
            if stored != rebuilt_structure[path_text]:
                raise StorageError(
                    f"stored structure postings for path {path_text!r} do not match the "
                    "stored document; refusing to load inconsistent index"
                )
    if snapshot.postings:
        stored_terms = set(snapshot.postings)
        rebuilt_vocabulary = set(index.inverted.vocabulary)
        if stored_terms != rebuilt_vocabulary:
            drifted = sorted(stored_terms ^ rebuilt_vocabulary)[:5]
            raise StorageError(
                f"stored inverted index vocabulary does not match the stored document "
                f"(e.g. {', '.join(drifted)}); refusing to load inconsistent index"
            )
    if snapshot.postings:
        index.inverted = InvertedIndex.from_postings(snapshot.postings)
    return index


class _Snapshot:
    """Parsed content of one ``inverted.idx`` file."""

    def __init__(self) -> None:
        self.version = 0
        self.document_name: str | None = None
        self.nodes: int | None = None
        self.summary: dict[str, int] | None = None
        self.postings: dict[str, PostingList] = {}
        self.structure_paths: dict[str, PostingList] | None = None


def _read_snapshot(index_path: str) -> _Snapshot:
    snapshot = _Snapshot()
    try:
        with open(index_path, "r", encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
            if first not in _KNOWN_MAGICS:
                raise StorageError(f"unrecognised index file header: {first!r}")
            snapshot.version = 2 if first == _MAGIC_V2 else 1
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#document "):
                    snapshot.document_name = line.partition(" ")[2]
                    continue
                if line.startswith("#nodes "):
                    try:
                        snapshot.nodes = int(line.split(" ", 1)[1])
                    except ValueError as exc:
                        raise StorageError(f"malformed #nodes line: {line!r}") from exc
                    continue
                if line.startswith("#summary "):
                    snapshot.summary = _parse_summary(line)
                    continue
                if line.startswith("#"):
                    continue
                kind, _, rest = line.partition(" ")
                name, _, labels_text = rest.partition(" ")
                labels = labels_text.split() if labels_text else []
                if kind == "T":
                    snapshot.postings[name] = PostingList.from_strings(labels)
                elif kind == "P":
                    if snapshot.structure_paths is None:
                        snapshot.structure_paths = {}
                    snapshot.structure_paths[name] = PostingList.from_strings(labels)
    except OSError as exc:
        raise StorageError(f"failed to read stored index: {exc}") from exc
    return snapshot


def _parse_summary(line: str) -> dict[str, int]:
    summary: dict[str, int] = {}
    for piece in line.split(" ")[1:]:
        key, _, value = piece.partition("=")
        try:
            summary[key] = int(value)
        except ValueError as exc:
            raise StorageError(f"malformed #summary line: {line!r}") from exc
    return summary
