"""On-disk persistence for document indexes.

The original eXtract demo precomputed its indexes on the server so queries
over the web UI were fast.  This module provides the equivalent: the
inverted index (plus enough structural metadata to rebuild posting lists)
can be written to and loaded from a plain-text, line-oriented format that
is diff-friendly and independent of pickle.

Format (UTF-8 text)::

    #extract-index v1
    #document <name>
    #nodes <count>
    T <term> <label> <label> ...
    P <tag-path joined by '/'> <label> <label> ...

Only the inverted and per-path label lists are stored; the tree itself is
stored alongside as regular XML (via :mod:`repro.xmltree.serialize`), and
the analyzer/structure index are recomputed on load — recomputation is fast
and keeps the stored artefact simple and robust.
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.xmltree.parser import parse_xml_file
from repro.xmltree.serialize import to_xml_string

_MAGIC = "#extract-index v1"


def save_index(index: DocumentIndex, directory: str | os.PathLike[str]) -> None:
    """Persist ``index`` (document + inverted index) into ``directory``."""
    path = os.fspath(directory)
    os.makedirs(path, exist_ok=True)
    document_path = os.path.join(path, "document.xml")
    index_path = os.path.join(path, "inverted.idx")
    try:
        with open(document_path, "w", encoding="utf-8") as handle:
            handle.write(to_xml_string(index.tree))
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write(f"{_MAGIC}\n")
            handle.write(f"#document {index.tree.name}\n")
            handle.write(f"#nodes {index.tree.size_nodes}\n")
            for term in sorted(index.inverted.postings_dict()):
                postings = index.inverted.lookup(term)
                labels = " ".join(postings.to_strings())
                handle.write(f"T {term} {labels}\n")
    except OSError as exc:
        raise StorageError(f"failed to save index to {path}: {exc}") from exc


def load_index(directory: str | os.PathLike[str]) -> DocumentIndex:
    """Load a :class:`DocumentIndex` previously written by :func:`save_index`.

    The XML document is re-parsed and re-analyzed; the stored inverted
    index is validated against the freshly built one (term count and node
    count), guarding against a document/index mismatch on disk.
    """
    path = os.fspath(directory)
    document_path = os.path.join(path, "document.xml")
    index_path = os.path.join(path, "inverted.idx")
    if not os.path.exists(document_path) or not os.path.exists(index_path):
        raise StorageError(f"{path} does not contain a saved eXtract index")

    try:
        parse_result = parse_xml_file(document_path)
    except OSError as exc:
        raise StorageError(f"failed to read stored document: {exc}") from exc

    stored_postings: dict[str, PostingList] = {}
    stored_nodes: int | None = None
    try:
        with open(index_path, "r", encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
            if first != _MAGIC:
                raise StorageError(f"unrecognised index file header: {first!r}")
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#nodes "):
                    stored_nodes = int(line.split(" ", 1)[1])
                    continue
                if line.startswith("#"):
                    continue
                kind, _, rest = line.partition(" ")
                if kind != "T":
                    continue
                term, _, labels_text = rest.partition(" ")
                labels = labels_text.split() if labels_text else []
                stored_postings[term] = PostingList.from_strings(labels)
    except OSError as exc:
        raise StorageError(f"failed to read stored index: {exc}") from exc

    index = IndexBuilder().build(parse_result.tree)
    if stored_nodes is not None and stored_nodes != parse_result.tree.size_nodes:
        raise StorageError(
            f"stored index covers {stored_nodes} nodes but the stored document has "
            f"{parse_result.tree.size_nodes}; the artefacts are out of sync"
        )
    # Prefer the stored posting lists (they are authoritative for the
    # artefact on disk) but only if they agree in vocabulary size; a
    # mismatch indicates corruption.
    rebuilt_terms = index.inverted.vocabulary_size
    if stored_postings and abs(rebuilt_terms - len(stored_postings)) > 0:
        raise StorageError(
            f"stored inverted index has {len(stored_postings)} terms but rebuilding the "
            f"document yields {rebuilt_terms}; refusing to load inconsistent index"
        )
    if stored_postings:
        index.inverted = InvertedIndex.from_postings(stored_postings)
    return index
