"""On-disk persistence for document indexes and corpus update journals.

The original eXtract demo precomputed its indexes on the server so queries
over the web UI were fast.  This module provides the equivalent: a
**versioned snapshot format** for a full :class:`DocumentIndex` — the
inverted postings, the structure index (tag-path posting lists) and the
analyzer summary — written as plain, diff-friendly UTF-8 text, independent
of pickle.  :class:`repro.corpus.Corpus` builds on it to round-trip whole
multi-document corpora (``save_dir``/``load_dir``) so re-indexing is
skipped on reload.

Format (UTF-8 text), version 3::

    #extract-index v3
    #document <name>
    #nodes <count>
    #summary entity=<n> attribute=<n> connection=<n>
    #counts terms=<n> paths=<n>
    T <term> <label> <label> ...
    P <tag-path joined by '/'> <label> <label> ...
    #end

Version 3 adds the ``#counts`` section header and the ``#end`` sentinel so
a truncated file (a killed writer, a partial copy) is detected *before*
any posting list is trusted — a v2 file cut mid-section could previously
only be caught by the slower cross-validation, and a cut that removed
label text from the tail of a line not at all.

The tree itself is stored alongside as regular XML (via
:mod:`repro.xmltree.serialize`).  On load the document is re-parsed and
re-analyzed, then *validated section by section* against the stored
artefact: node count, analyzer summary, structure paths and vocabulary
must all agree, guarding against a document/index mismatch on disk.  The
stored posting lists are authoritative for the loaded index.

Version 1 (no ``#summary``/``P`` sections) and version 2 snapshots are
still readable.

This module also owns the **corpus-level persistence**: the
``corpus.manifest`` written by :meth:`Corpus.save_dir` and the
**append-only update journal** (``corpus.journal``) the ``corpus-update``
CLI appends to.  Journal records describe document-lifecycle operations —
inline text deltas for incremental updates, references to freshly written
snapshot subdirectories for structural replacements and additions, and
removals — and :meth:`Corpus.load_dir` replays them over the base
snapshots through the same incremental machinery the live corpus uses, so
a reloaded corpus is byte-identical to the corpus the updates were
originally applied to.

Limitation: a DTD supplied at build time is not part of the snapshot; if
the DTD changed the analyzer's classification, the stored summary will
disagree with the re-analysis and loading fails with a clear error rather
than silently restoring different semantics.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import StorageError
from repro.index.binfmt import (
    BINARY_FILE,
    BINARY_FORMAT_VERSION as _BINARY_FORMAT_VERSION,
    load_binary_index,
    write_binary_index,
)
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.xmltree.parser import parse_xml_file
from repro.xmltree.serialize import to_xml_string

#: current version of the plain-text snapshot format this module writes
TEXT_FORMAT_VERSION = 3

#: re-exported from :mod:`repro.index.binfmt`: the binary snapshot version
BINARY_FORMAT_VERSION = _BINARY_FORMAT_VERSION

_MAGIC_V3 = f"#extract-index v{TEXT_FORMAT_VERSION}"
_MAGIC_V2 = "#extract-index v2"
_MAGIC_V1 = "#extract-index v1"
_KNOWN_MAGICS = (_MAGIC_V3, _MAGIC_V2, _MAGIC_V1)

#: file names inside a snapshot directory
DOCUMENT_FILE = "document.xml"
INDEX_FILE = "inverted.idx"

#: corpus-level files (written next to the per-document subdirectories)
MANIFEST_FILE = "corpus.manifest"
JOURNAL_FILE = "corpus.journal"
MANIFEST_FORMAT_VERSION = 1
JOURNAL_FORMAT_VERSION = 1
_MANIFEST_MAGIC = f"#extract-corpus v{MANIFEST_FORMAT_VERSION}"
_JOURNAL_MAGIC = f"#extract-corpus-journal v{JOURNAL_FORMAT_VERSION}"

_PATH_SEPARATOR = "/"
_END_SENTINEL = "#end"


def save_index(
    index: DocumentIndex,
    directory: str | os.PathLike[str],
    format_version: int = TEXT_FORMAT_VERSION,
) -> None:
    """Persist ``index`` (document + inverted + structure + summary) into
    ``directory``.

    ``format_version`` selects the snapshot format: version 3 (the
    default) writes the diff-friendly text format of this module; version
    4 writes the mmap-able binary format of :mod:`repro.index.binfmt`.
    :func:`load_index` detects the format on disk, so readers need no
    version parameter.
    """
    if format_version == BINARY_FORMAT_VERSION:
        write_binary_index(index, directory)
        return
    if format_version != TEXT_FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format version {format_version}; this build "
            f"writes versions {TEXT_FORMAT_VERSION} and {BINARY_FORMAT_VERSION}"
        )
    path = os.fspath(directory)
    os.makedirs(path, exist_ok=True)
    document_path = os.path.join(path, DOCUMENT_FILE)
    index_path = os.path.join(path, INDEX_FILE)
    summary = index.analyzer.summary()
    try:
        with open(document_path, "w", encoding="utf-8") as handle:
            handle.write(to_xml_string(index.tree))
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write(f"{_MAGIC_V3}\n")
            handle.write(f"#document {index.tree.name}\n")
            handle.write(f"#nodes {index.tree.size_nodes}\n")
            handle.write(
                "#summary "
                f"entity={summary['entity']} "
                f"attribute={summary['attribute']} "
                f"connection={summary['connection']}\n"
            )
            postings_map = index.inverted.postings_dict()
            known_paths = index.structure.known_paths
            handle.write(f"#counts terms={len(postings_map)} paths={len(known_paths)}\n")
            for term in sorted(postings_map):
                # The raw per-term lists, not lookup() results: lookup folds
                # plural forms together, which would inflate the snapshot
                # and drift on repeated save/load cycles.
                labels = " ".join(postings_map[term].to_strings())
                handle.write(f"T {term} {labels}\n")
            for tag_path in sorted(known_paths):
                postings = index.structure.instances_of_path(tag_path)
                labels = " ".join(postings.to_strings())
                handle.write(f"P {_PATH_SEPARATOR.join(tag_path)} {labels}\n")
            handle.write(f"{_END_SENTINEL}\n")
    except OSError as exc:
        raise StorageError(f"failed to save index to {path}: {exc}") from exc


def load_index(directory: str | os.PathLike[str], lazy: bool = True) -> DocumentIndex:
    """Load a :class:`DocumentIndex` previously written by :func:`save_index`.

    The snapshot format is detected from the directory contents: a
    ``snapshot.bin`` is loaded through :mod:`repro.index.binfmt` (mmap'd,
    with posting lists materialised lazily unless ``lazy=False``); the
    text formats (v1–v3) take the validate-and-replace path below.

    For the text formats, the XML document is re-parsed and re-analyzed;
    every stored section is validated against the freshly built index
    (node count, analyzer summary, structure paths, vocabulary) and the
    stored posting lists then replace the rebuilt ones — they are
    authoritative for the artefact on disk, and queries over the loaded
    index are byte-identical to queries over the index that was saved.
    """
    path = os.fspath(directory)
    if os.path.exists(os.path.join(path, BINARY_FILE)):
        return load_binary_index(path, lazy=lazy)
    document_path = os.path.join(path, DOCUMENT_FILE)
    index_path = os.path.join(path, INDEX_FILE)
    if not os.path.exists(document_path) or not os.path.exists(index_path):
        raise StorageError(f"{path} does not contain a saved eXtract index")

    try:
        parse_result = parse_xml_file(document_path)
    except OSError as exc:
        raise StorageError(f"failed to read stored document: {exc}") from exc

    snapshot = _read_snapshot(index_path)

    if snapshot.document_name:
        # The file on disk is always called document.xml; the logical name
        # lives in the snapshot header and must survive the round trip
        # (cache keys and corpus registration key on it).
        parse_result.tree.name = snapshot.document_name

    index = IndexBuilder().build(parse_result.tree)
    if snapshot.nodes is not None and snapshot.nodes != parse_result.tree.size_nodes:
        raise StorageError(
            f"stored index covers {snapshot.nodes} nodes but the stored document has "
            f"{parse_result.tree.size_nodes}; the artefacts are out of sync"
        )
    if snapshot.summary is not None:
        rebuilt_summary = index.analyzer.summary()
        if rebuilt_summary != snapshot.summary:
            raise StorageError(
                f"stored analyzer summary {snapshot.summary} does not match the "
                f"re-analysis {rebuilt_summary}; the index was likely built with a "
                "DTD that is not part of the snapshot"
            )
    if snapshot.structure_paths is not None:
        rebuilt_structure = {
            _PATH_SEPARATOR.join(tag_path): index.structure.instances_of_path(tag_path)
            for tag_path in index.structure.known_paths
        }
        if set(rebuilt_structure) != set(snapshot.structure_paths):
            raise StorageError(
                "stored structure index paths do not match the stored document; "
                "refusing to load inconsistent index"
            )
        for path_text, stored in snapshot.structure_paths.items():
            if stored != rebuilt_structure[path_text]:
                raise StorageError(
                    f"stored structure postings for path {path_text!r} do not match the "
                    "stored document; refusing to load inconsistent index"
                )
    if snapshot.postings:
        stored_terms = set(snapshot.postings)
        rebuilt_vocabulary = set(index.inverted.vocabulary)
        if stored_terms != rebuilt_vocabulary:
            drifted = sorted(stored_terms ^ rebuilt_vocabulary)[:5]
            raise StorageError(
                f"stored inverted index vocabulary does not match the stored document "
                f"(e.g. {', '.join(drifted)}); refusing to load inconsistent index"
            )
    if snapshot.postings:
        index.inverted = InvertedIndex.from_postings(snapshot.postings)
    return index


class _Snapshot:
    """Parsed content of one ``inverted.idx`` file."""

    def __init__(self) -> None:
        self.version = 0
        self.document_name: str | None = None
        self.nodes: int | None = None
        self.summary: dict[str, int] | None = None
        self.postings: dict[str, PostingList] = {}
        self.structure_paths: dict[str, PostingList] | None = None
        self.counts: dict[str, int] | None = None
        self.end_seen = False


def _read_snapshot(index_path: str) -> _Snapshot:
    snapshot = _Snapshot()
    try:
        with open(index_path, "r", encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
            if first not in _KNOWN_MAGICS:
                raise StorageError(f"unrecognised index file header: {first!r}")
            snapshot.version = {_MAGIC_V3: 3, _MAGIC_V2: 2, _MAGIC_V1: 1}[first]
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line == _END_SENTINEL:
                    # The sentinel *terminates* the snapshot: anything after
                    # it (a concatenated fragment, stray bytes) must not be
                    # able to override the already-read header sections.
                    snapshot.end_seen = True
                    break
                if line.startswith("#document "):
                    snapshot.document_name = line.partition(" ")[2]
                    continue
                if line.startswith("#nodes "):
                    try:
                        snapshot.nodes = int(line.split(" ", 1)[1])
                    except ValueError as exc:
                        raise StorageError(f"malformed #nodes line: {line!r}") from exc
                    continue
                if line.startswith("#summary "):
                    snapshot.summary = _parse_summary(line)
                    continue
                if line.startswith("#counts "):
                    snapshot.counts = _parse_counts(line)
                    continue
                if line.startswith("#"):
                    continue
                kind, _, rest = line.partition(" ")
                name, _, labels_text = rest.partition(" ")
                labels = labels_text.split() if labels_text else []
                if kind == "T":
                    snapshot.postings[name] = PostingList.from_strings(labels)
                elif kind == "P":
                    if snapshot.structure_paths is None:
                        snapshot.structure_paths = {}
                    snapshot.structure_paths[name] = PostingList.from_strings(labels)
    except OSError as exc:
        raise StorageError(f"failed to read stored index: {exc}") from exc
    if snapshot.version >= 3:
        _check_snapshot_complete(snapshot, index_path)
    return snapshot


def _check_snapshot_complete(snapshot: _Snapshot, index_path: str) -> None:
    """Reject truncated v3 snapshots before any section is trusted."""
    if not snapshot.end_seen:
        raise StorageError(
            f"stored index {index_path} is truncated: missing the {_END_SENTINEL!r} sentinel"
        )
    if snapshot.counts is None:
        raise StorageError(f"stored index {index_path} is missing its #counts section")
    stored_paths = len(snapshot.structure_paths or {})
    if snapshot.counts.get("terms") != len(snapshot.postings) or snapshot.counts.get(
        "paths"
    ) != stored_paths:
        raise StorageError(
            f"stored index {index_path} is truncated: #counts declares "
            f"{snapshot.counts.get('terms')} terms / {snapshot.counts.get('paths')} paths "
            f"but {len(snapshot.postings)} / {stored_paths} were read"
        )


def _parse_counts(line: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for piece in line.split(" ")[1:]:
        key, _, value = piece.partition("=")
        try:
            counts[key] = int(value)
        except ValueError as exc:
            raise StorageError(f"malformed #counts line: {line!r}") from exc
    return counts


def _parse_summary(line: str) -> dict[str, int]:
    summary: dict[str, int] = {}
    for piece in line.split(" ")[1:]:
        key, _, value = piece.partition("=")
        try:
            summary[key] = int(value)
        except ValueError as exc:
            raise StorageError(f"malformed #summary line: {line!r}") from exc
    return summary


# ---------------------------------------------------------------------- #
# corpus manifest
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CorpusManifest:
    """The parsed ``corpus.manifest``: algorithm plus (subdir, name) pairs."""

    algorithm: str
    entries: tuple[tuple[str, str], ...]


def write_corpus_manifest(
    directory: str | os.PathLike[str],
    algorithm: str,
    entries: list[tuple[str, str]],
) -> None:
    """Write the corpus manifest mapping snapshot subdirectories to names."""
    path = os.fspath(directory)
    manifest_path = os.path.join(path, MANIFEST_FILE)
    lines = [_MANIFEST_MAGIC, f"#algorithm {algorithm}"]
    lines.extend(f"entry {subdir} {name}" for subdir, name in entries)
    try:
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as exc:
        raise StorageError(f"failed to write corpus manifest {manifest_path}: {exc}") from exc


def read_corpus_manifest(directory: str | os.PathLike[str]) -> CorpusManifest:
    """Parse the corpus manifest written by :func:`write_corpus_manifest`."""
    path = os.fspath(directory)
    manifest_path = os.path.join(path, MANIFEST_FILE)
    if not os.path.exists(manifest_path):
        raise StorageError(f"{path} does not contain a saved eXtract corpus")
    algorithm = "slca"
    entries: list[tuple[str, str]] = []
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            first = handle.readline().rstrip("\n")
            if first != _MANIFEST_MAGIC:
                raise StorageError(f"unrecognised corpus manifest header: {first!r}")
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#algorithm "):
                    algorithm = line.partition(" ")[2]
                    continue
                if line.startswith("#"):
                    continue
                kind, _, rest = line.partition(" ")
                if kind != "entry":
                    continue
                subdir, _, name = rest.partition(" ")
                entries.append((subdir, name or subdir))
    except OSError as exc:
        raise StorageError(f"failed to read corpus manifest {manifest_path}: {exc}") from exc
    return CorpusManifest(algorithm=algorithm, entries=tuple(entries))


# ---------------------------------------------------------------------- #
# the append-only update journal
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class JournalRecord:
    """One document-lifecycle operation in the corpus update journal.

    ``kind`` is one of:

    * ``update`` — text-only edit of the document in ``subdir``; ``edits``
      holds ``(dewey label text, new text)`` pairs applied through the
      incremental-update path on replay;
    * ``replace`` — structural edit: the document in ``subdir`` is now the
      full snapshot stored in the ``snapshot`` subdirectory;
    * ``add`` — a new document, stored as a full snapshot in ``subdir``
      and registered under ``name``;
    * ``remove`` — the document in ``subdir`` was unregistered.
    """

    kind: str
    subdir: str
    name: str | None = None
    snapshot: str | None = None
    edits: tuple[tuple[str, str], ...] = ()


def append_journal_record(
    directory: str | os.PathLike[str], record: JournalRecord
) -> None:
    """Append one record to the corpus update journal (created on first use).

    The journal is strictly append-only: full snapshots stay immutable
    between ``corpus-save`` runs, and every mutation since the last full
    snapshot is replayable in order.
    """
    path = os.fspath(directory)
    journal_path = os.path.join(path, JOURNAL_FILE)
    lines: list[str] = []
    if not os.path.exists(journal_path):
        lines.append(_JOURNAL_MAGIC)
    if record.kind == "update":
        lines.append(f"update {record.subdir} {len(record.edits)}")
        for label_text, new_text in record.edits:
            # JSON string encoding keeps arbitrary text (spaces, newlines,
            # unicode) on one parseable line.
            lines.append(f"t {label_text} {json.dumps(new_text)}")
    elif record.kind == "replace":
        if not record.snapshot:
            raise StorageError("a 'replace' journal record needs a snapshot subdirectory")
        lines.append(f"replace {record.subdir} {record.snapshot}")
    elif record.kind == "add":
        if not record.name:
            raise StorageError("an 'add' journal record needs a document name")
        lines.append(f"add {record.subdir} {record.name}")
    elif record.kind == "remove":
        lines.append(f"remove {record.subdir}")
    else:
        raise StorageError(f"unknown journal record kind {record.kind!r}")
    try:
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as exc:
        raise StorageError(f"failed to append to update journal {journal_path}: {exc}") from exc


def read_corpus_journal(directory: str | os.PathLike[str]) -> list[JournalRecord]:
    """Parse the update journal; an absent journal is an empty history.

    Truncated or malformed journals raise :class:`StorageError` — replaying
    half an update would silently desynchronise the corpus from the one the
    journal was recorded against.
    """
    path = os.fspath(directory)
    journal_path = os.path.join(path, JOURNAL_FILE)
    if not os.path.exists(journal_path):
        return []
    try:
        with open(journal_path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle]
    except OSError as exc:
        raise StorageError(f"failed to read update journal {journal_path}: {exc}") from exc
    if not lines or lines[0] != _JOURNAL_MAGIC:
        raise StorageError(
            f"unrecognised update journal header in {journal_path}: "
            f"{lines[0]!r}" if lines else f"empty update journal {journal_path}"
        )
    records: list[JournalRecord] = []
    position = 1
    while position < len(lines):
        line = lines[position]
        position += 1
        if not line or line.startswith("#"):
            continue
        kind, _, rest = line.partition(" ")
        if kind == "update":
            subdir, _, count_text = rest.partition(" ")
            try:
                count = int(count_text)
            except ValueError as exc:
                raise StorageError(f"malformed journal update header: {line!r}") from exc
            edits: list[tuple[str, str]] = []
            for _ in range(count):
                if position >= len(lines):
                    raise StorageError(
                        f"truncated update journal {journal_path}: update record for "
                        f"{subdir!r} declares {count} edits but the file ends after "
                        f"{len(edits)}"
                    )
                edit_line = lines[position]
                position += 1
                marker, _, payload = edit_line.partition(" ")
                label_text, _, encoded = payload.partition(" ")
                if marker != "t" or not encoded:
                    raise StorageError(f"malformed journal edit line: {edit_line!r}")
                try:
                    new_text = json.loads(encoded)
                except ValueError as exc:
                    raise StorageError(f"malformed journal edit line: {edit_line!r}") from exc
                if not isinstance(new_text, str):
                    raise StorageError(f"malformed journal edit line: {edit_line!r}")
                edits.append((label_text, new_text))
            records.append(JournalRecord(kind="update", subdir=subdir, edits=tuple(edits)))
        elif kind == "replace":
            subdir, _, snapshot = rest.partition(" ")
            if not subdir or not snapshot:
                raise StorageError(f"malformed journal replace record: {line!r}")
            records.append(JournalRecord(kind="replace", subdir=subdir, snapshot=snapshot))
        elif kind == "add":
            subdir, _, name = rest.partition(" ")
            if not subdir or not name:
                raise StorageError(f"malformed journal add record: {line!r}")
            records.append(JournalRecord(kind="add", subdir=subdir, name=name))
        elif kind == "remove":
            if not rest:
                raise StorageError(f"malformed journal remove record: {line!r}")
            records.append(JournalRecord(kind="remove", subdir=rest))
        else:
            raise StorageError(f"unknown journal record kind in line: {line!r}")
    return records


def discard_corpus_journal(directory: str | os.PathLike[str]) -> bool:
    """Delete the update journal (after a full snapshot superseded it)."""
    journal_path = os.path.join(os.fspath(directory), JOURNAL_FILE)
    if not os.path.exists(journal_path):
        return False
    try:
        os.remove(journal_path)
    except OSError as exc:
        raise StorageError(f"failed to discard update journal {journal_path}: {exc}") from exc
    return True


def directory_documents(directory: str | os.PathLike[str]) -> dict[str, str]:
    """The subdir → document-name mapping after journal bookkeeping.

    Pure bookkeeping (no index is loaded): the manifest entries with every
    journal record's add/remove/replace applied.  The ``corpus-update`` CLI
    uses it to resolve which snapshot subdirectory currently backs a name.
    """
    manifest = read_corpus_manifest(directory)
    mapping: dict[str, str] = dict(manifest.entries)
    for record in read_corpus_journal(directory):
        if record.kind == "add":
            if record.subdir in mapping:
                raise StorageError(
                    f"update journal adds duplicate document directory {record.subdir!r}"
                )
            mapping[record.subdir] = record.name or record.subdir
        elif record.kind == "remove":
            if record.subdir not in mapping:
                raise StorageError(
                    f"update journal references unknown document directory {record.subdir!r}"
                )
            del mapping[record.subdir]
        elif record.kind == "replace":
            if record.subdir not in mapping:
                raise StorageError(
                    f"update journal references unknown document directory {record.subdir!r}"
                )
            mapping[record.snapshot or record.subdir] = mapping.pop(record.subdir)
        elif record.kind == "update":
            if record.subdir not in mapping:
                raise StorageError(
                    f"update journal references unknown document directory {record.subdir!r}"
                )
    return mapping
