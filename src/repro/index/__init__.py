"""Index Builder (Figure 4): keyword, label and structure indexes.

"The Index Builder builds indexes for efficiently retrieving matches to
user input keywords, as well as the information about node category, and
parent-children relationship."

* :mod:`repro.index.postings` — sorted Dewey posting lists and merge ops,
* :mod:`repro.index.inverted` — keyword → posting list inverted index,
* :mod:`repro.index.structure` — tag/label index, node-category index and
  parent/children accessors,
* :mod:`repro.index.builder` — the façade that builds all of them,
* :mod:`repro.index.storage` — a small text-based persistence layer.
"""

from repro.index.postings import PostingList
from repro.index.inverted import InvertedIndex
from repro.index.structure import StructureIndex
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.storage import save_index, load_index

__all__ = [
    "PostingList",
    "InvertedIndex",
    "StructureIndex",
    "DocumentIndex",
    "IndexBuilder",
    "save_index",
    "load_index",
]
