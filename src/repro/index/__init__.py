"""Index Builder (Figure 4): keyword, label and structure indexes.

"The Index Builder builds indexes for efficiently retrieving matches to
user input keywords, as well as the information about node category, and
parent-children relationship."

* :mod:`repro.index.postings` — sorted Dewey posting lists and merge ops,
* :mod:`repro.index.inverted` — keyword → posting list inverted index,
* :mod:`repro.index.structure` — tag/label index, node-category index and
  parent/children accessors,
* :mod:`repro.index.builder` — the façade that builds all of them,
* :mod:`repro.index.storage` — persistence: text snapshots (v1–v3), the
  corpus manifest/journal, and the format-dispatch seam,
* :mod:`repro.index.binfmt` — the v4 mmap-able binary snapshot format with
  lazy posting-list materialisation.
"""

from repro.index.postings import PostingList
from repro.index.inverted import InvertedIndex
from repro.index.structure import StructureIndex
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.storage import (
    BINARY_FORMAT_VERSION,
    TEXT_FORMAT_VERSION,
    save_index,
    load_index,
)
from repro.index.binfmt import LazyInvertedIndex, load_binary_index, write_binary_index

__all__ = [
    "PostingList",
    "InvertedIndex",
    "LazyInvertedIndex",
    "StructureIndex",
    "DocumentIndex",
    "IndexBuilder",
    "save_index",
    "load_index",
    "load_binary_index",
    "write_binary_index",
    "BINARY_FORMAT_VERSION",
    "TEXT_FORMAT_VERSION",
]
