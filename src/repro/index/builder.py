"""The Index Builder façade.

Combines the data analyzer, the inverted keyword index and the structure
index into one :class:`DocumentIndex`, the object the search engine and the
snippet generator actually consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.analyzer import DataAnalyzer
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.index.structure import StructureIndex
from repro.utils.timing import TimingBreakdown
from repro.xmltree.dtd import DTD
from repro.xmltree.tree import XMLTree


@dataclass
class DocumentIndex:
    """All per-document indexes plus the analyzer that produced them."""

    tree: XMLTree
    analyzer: DataAnalyzer
    inverted: InvertedIndex
    structure: StructureIndex

    def keyword_matches(self, keyword: str) -> PostingList:
        """Posting list of nodes matching ``keyword`` (tag or value)."""
        return self.inverted.lookup(keyword)

    @property
    def name(self) -> str:
        return self.tree.name

    def __repr__(self) -> str:
        return (
            f"<DocumentIndex {self.tree.name!r} nodes={self.tree.size_nodes} "
            f"terms={self.inverted.vocabulary_size}>"
        )


class IndexBuilder:
    """Builds a :class:`DocumentIndex` for a document (Figure 4 component)."""

    def __init__(self, dtd: DTD | None = None):
        self.dtd = dtd
        self.timings = TimingBreakdown()

    def build(self, tree: XMLTree) -> DocumentIndex:
        """Analyze and index ``tree``.

        >>> from repro.xmltree.builder import tree_from_dict
        >>> tree = tree_from_dict("retailer", {"store": [{"city": "Houston"}, {"city": "Austin"}]})
        >>> index = IndexBuilder().build(tree)
        >>> len(index.keyword_matches("houston"))
        1
        """
        with self.timings.measure("analyze"):
            analyzer = DataAnalyzer(tree, dtd=self.dtd)
        with self.timings.measure("inverted_index"):
            inverted = InvertedIndex().build(tree)
        with self.timings.measure("structure_index"):
            structure = StructureIndex().build(tree, analyzer)
        return DocumentIndex(tree=tree, analyzer=analyzer, inverted=inverted, structure=structure)
