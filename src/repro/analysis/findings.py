"""Findings: the one value type every analysis rule produces.

A :class:`Finding` names a rule violation at a source location.  Findings
are plain, hashable, ordered data so the framework can sort them into a
stable report order, diff them against a committed baseline, and emit
them as text or JSON without any per-rule formatting code.

The JSON report shape is versioned (:data:`REPORT_SCHEMA_VERSION`) and
round-trips losslessly through :func:`report_to_dict` /
:func:`finding_from_dict` — CI consumers parse one stable format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import AnalysisError

#: bump on incompatible changes to the JSON report shape.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the analysed file's path *relative to the scan root*, in
    POSIX form — stable across machines, which is what lets a committed
    baseline match findings produced on a different checkout.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """The identity a baseline entry matches on.

        Line and column are deliberately excluded: unrelated edits move
        code around, and a grandfathered finding must not "expire" just
        because an import was added above it.
        """
        return (self.rule_id, self.path, self.message)

    def format(self) -> str:
        """The one-line human-readable form (``path:line:col: rule: msg``)."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }


def finding_from_dict(data: dict[str, Any]) -> Finding:
    """Rebuild a :class:`Finding` from its :meth:`~Finding.to_dict` form."""
    if not isinstance(data, dict):
        raise AnalysisError(f"finding entry must be an object, got {type(data).__name__}")
    try:
        return Finding(
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data["column"]),
            rule_id=str(data["rule"]),
            message=str(data["message"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(f"malformed finding entry {data!r}: {exc}") from exc


def report_to_dict(
    findings: list[Finding],
    rules_run: list[str],
    files_analyzed: int,
    baselined: int = 0,
    stale_baseline: list[dict[str, str]] | None = None,
) -> dict[str, Any]:
    """The machine-readable lint report (stable keys, sorted findings)."""
    ordered = sorted(findings)
    by_rule: dict[str, int] = {}
    for finding in ordered:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "rules": sorted(rules_run),
        "files_analyzed": files_analyzed,
        "findings": [finding.to_dict() for finding in ordered],
        "counts": {"total": len(ordered), "by_rule": by_rule},
        "baseline": {
            "suppressed": baselined,
            "stale": list(stale_baseline or []),
        },
    }
