"""Baseline handling: grandfathered findings live in a committed file.

A baseline lets the linter be adopted on a tree that already has
findings: known violations are recorded once (``lint --update-baseline``)
and stop failing the build, while anything *new* still fails.  Entries
match on :meth:`~repro.analysis.findings.Finding.key` — rule id, path,
message — and deliberately not on line/column, so unrelated edits do not
expire them.

An entry whose finding no longer occurs is *stale*.  Stale entries are
always reported and, under ``--strict``, fail the run: a baseline must
shrink as debt is paid, never silently accumulate dead weight.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

#: bump on incompatible changes to the baseline file shape.
BASELINE_VERSION = 1

#: the baseline file picked up automatically from the working directory.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (line-independent identity)."""

    rule_id: str
    path: str
    message: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule_id, "path": self.path, "message": self.message}


def entry_for(finding: Finding) -> BaselineEntry:
    return BaselineEntry(
        rule_id=finding.rule_id, path=finding.path, message=finding.message
    )


def read_baseline(path: str) -> list[BaselineEntry]:
    """Parse a baseline file; malformed content raises :class:`AnalysisError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise AnalysisError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {version!r}; this tool reads "
            f"version {BASELINE_VERSION}"
        )
    entries: list[BaselineEntry] = []
    for raw in data["entries"]:
        entries.append(_entry_from_dict(path, raw))
    return entries


def _entry_from_dict(path: str, raw: Any) -> BaselineEntry:
    if not isinstance(raw, dict):
        raise AnalysisError(
            f"baseline {path}: entry must be an object, got {type(raw).__name__}"
        )
    try:
        return BaselineEntry(
            rule_id=str(raw["rule"]), path=str(raw["path"]), message=str(raw["message"])
        )
    except KeyError as exc:
        raise AnalysisError(
            f"baseline {path}: entry {raw!r} is missing key {exc.args[0]!r}"
        ) from exc


def write_baseline(path: str, findings: list[Finding]) -> list[BaselineEntry]:
    """Write the baseline covering ``findings`` (sorted, deduplicated)."""
    entries = sorted(
        {entry_for(finding) for finding in findings}, key=BaselineEntry.key
    )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split a run's findings against the baseline.

    Returns ``(new_findings, stale_entries)``: findings not covered by
    any entry, and entries no finding matched (debt that has been paid —
    the baseline file should drop them).
    """
    covered = {entry.key() for entry in entries}
    new_findings = [f for f in findings if f.key() not in covered]
    seen = {f.key() for f in findings}
    stale = [entry for entry in entries if entry.key() not in seen]
    return new_findings, stale
