"""The analysis framework: parse once, run a registry of AST rules.

The serving stack's load-bearing invariants (ROADMAP: lock discipline,
wire determinism, the error-code contract, executor lifecycle) existed
only as prose and probabilistic property tests; this framework checks
them mechanically on every lint run.  It is deliberately stdlib-only:
:mod:`ast` for structure, :mod:`tokenize` for suppression comments.

Pieces:

* :class:`ModuleSource` — one parsed file: text, AST, and the
  ``# repro: ignore[rule-id]`` suppressions found in its comments.
* :class:`AnalysisContext` — every module of the run, keyed by its
  scan-root-relative POSIX path, so cross-file rules (the error-contract
  rule reads ``repro/errors.py`` while checking ``repro/api/protocol.py``)
  see the whole tree.
* :class:`Rule` — one invariant.  Subclasses declare ``rule_id`` /
  ``description`` and implement :meth:`Rule.check`; registration is one
  :func:`register_rule` decorator, which is the seam future PRs extend
  (a race-prone-attribute rule for process pools, a format-version rule
  for binary snapshots).
* :class:`Analyzer` — collects ``.py`` files, builds the context, runs
  the selected rules, and filters suppressed findings.

Suppression syntax: a comment ``# repro: ignore[rule-a]`` (or
``ignore[rule-a, rule-b]``) on the flagged line — or on the line directly
above it, for lines too dense to carry a comment — silences those rules
for that line only.  Suppressions are per-line and per-rule on purpose:
a file-wide or rule-free escape hatch would rot into a blanket waiver.
"""

from __future__ import annotations

import abc
import ast
import io
import os
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

#: matches one suppression comment; group 1 is the comma-separated rule list.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")

#: rule id shape enforced at registration (kebab-case, like the ids users type).
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")

#: the pseudo-rule reported when a file cannot be parsed at all.
SYNTAX_ERROR_RULE = "syntax-error"


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Line → rule ids silenced on that line.

    Comments are invisible to :mod:`ast`, so suppressions are read from
    the token stream.  A malformed rule list (empty brackets) raises
    :class:`AnalysisError` — a suppression that silences nothing is
    always a typo, and silently ignoring it would hide the very class of
    drift this subsystem exists to catch.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _SUPPRESS_RE.finditer(token.string):
                rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                if not rule_ids:
                    raise AnalysisError(
                        f"suppression comment on line {token.start[0]} names no "
                        "rule: use '# repro: ignore[rule-id]'"
                    )
                suppressions.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenError:
        # A tokenize failure accompanies a syntax error; the parse step
        # reports that — there is nothing further to suppress.
        pass
    return {line: frozenset(rules) for line, rules in suppressions.items()}


@dataclass
class ModuleSource:
    """One analysed file: location, source text, AST, suppressions."""

    path: str  #: absolute filesystem path
    rel_path: str  #: POSIX path relative to the scan root (finding identity)
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is silenced on ``line`` (or the line above)."""
        for candidate in (line, line - 1):
            if rule_id in self.suppressions.get(candidate, ()):
                return True
        return False

    def suppressed_rule_ids(self) -> frozenset[str]:
        """Every rule id named by a suppression anywhere in the file."""
        ids: set[str] = set()
        for rules in self.suppressions.values():
            ids.update(rules)
        return frozenset(ids)


class AnalysisContext:
    """All modules of one run, addressable by relative-path suffix."""

    def __init__(self, modules: Sequence[ModuleSource]):
        self.modules: dict[str, ModuleSource] = {m.rel_path: m for m in modules}

    def find_module(self, suffix: str) -> ModuleSource | None:
        """The module whose relative path ends with ``suffix`` (POSIX).

        How cross-file rules locate their counterpart regardless of the
        scan root (``src/`` and ``src/repro`` both work): an exact match
        wins, otherwise the unique suffix match.
        """
        if suffix in self.modules:
            return self.modules[suffix]
        for rel_path, module in self.modules.items():
            if rel_path.endswith("/" + suffix) or rel_path == suffix:
                return module
        return None


def path_matches(rel_path: str, suffixes: Iterable[str]) -> bool:
    """True when ``rel_path`` ends with any of the POSIX ``suffixes``.

    ``"repro/api/protocol.py"`` matches scans rooted at ``src/``,
    ``src/repro`` fixtures, and tmp-dir mirrors alike.  A suffix ending in
    ``/`` matches every file under that directory.
    """
    for suffix in suffixes:
        if suffix.endswith("/"):
            if ("/" + rel_path).find("/" + suffix) != -1:
                return True
        elif rel_path == suffix or rel_path.endswith("/" + suffix):
            return True
    return False


class Rule(abc.ABC):
    """One mechanically-checkable invariant.

    Subclasses set :attr:`rule_id` (kebab-case, what users type in
    ``--rule`` and suppressions) and :attr:`description` (one line, shown
    by ``lint --list-rules``), then implement :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""

    @abc.abstractmethod
    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        """Yield findings for one module (called once per analysed file)."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location in ``module``."""
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


#: rule id → rule class; populated by :func:`register_rule`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (import-time wiring)."""
    if not cls.rule_id or not _RULE_ID_RE.match(cls.rule_id):
        raise AnalysisError(
            f"rule {cls.__name__} must declare a kebab-case rule_id, got {cls.rule_id!r}"
        )
    if cls.rule_id == SYNTAX_ERROR_RULE:
        raise AnalysisError(f"rule id {SYNTAX_ERROR_RULE!r} is reserved for parse failures")
    existing = RULE_REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise AnalysisError(
            f"duplicate rule id {cls.rule_id!r}: {existing.__name__} and {cls.__name__}"
        )
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def registered_rule_ids() -> list[str]:
    """Every registered rule id, sorted (ensures the built-ins are loaded)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return sorted(RULE_REGISTRY)


def build_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (default: every registered rule)."""
    available = registered_rule_ids()
    if rule_ids is None:
        selected = available
    else:
        unknown = sorted(set(rule_ids) - set(available))
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"available: {', '.join(available)}"
            )
        selected = sorted(set(rule_ids))
    return [RULE_REGISTRY[rule_id]() for rule_id in selected]


def _collect_files(paths: Sequence[str]) -> list[tuple[str, str]]:
    """(absolute path, scan-root-relative POSIX path) for every ``.py`` file.

    A directory argument is walked recursively (its own path is the scan
    root); a file argument uses its parent directory as the root.  Hidden
    directories and ``__pycache__`` are skipped.
    """
    collected: list[tuple[str, str]] = []
    seen: set[str] = set()
    for raw in paths:
        root = os.path.abspath(raw)
        if os.path.isfile(root):
            rel = os.path.basename(root)
            if root not in seen:
                seen.add(root)
                collected.append((root, rel))
            continue
        if not os.path.isdir(root):
            raise AnalysisError(f"no such file or directory: {raw}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                absolute = os.path.join(dirpath, filename)
                if absolute in seen:
                    continue
                seen.add(absolute)
                rel = os.path.relpath(absolute, root).replace(os.sep, "/")
                collected.append((absolute, rel))
    return collected


@dataclass
class AnalysisReport:
    """Everything one run produced, before baseline filtering."""

    findings: list[Finding]
    files_analyzed: int
    rules_run: list[str]


class Analyzer:
    """Run a set of rules over a file tree and collect findings."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        self.rules = list(rules) if rules is not None else build_rules()

    def load_module(self, absolute: str, rel_path: str) -> ModuleSource | Finding:
        """Parse one file; a syntax error becomes a finding, not a crash."""
        with open(absolute, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            tree = ast.parse(text, filename=absolute)
        except SyntaxError as exc:
            return Finding(
                path=rel_path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                rule_id=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        return ModuleSource(
            path=absolute,
            rel_path=rel_path,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )

    def analyze_paths(self, paths: Sequence[str]) -> AnalysisReport:
        """Analyse every ``.py`` file under ``paths`` with every rule."""
        files = _collect_files(paths)
        modules: list[ModuleSource] = []
        findings: list[Finding] = []
        for absolute, rel_path in files:
            loaded = self.load_module(absolute, rel_path)
            if isinstance(loaded, Finding):
                findings.append(loaded)
            else:
                modules.append(loaded)
        context = AnalysisContext(modules)
        for module in modules:
            for rule in self.rules:
                for finding in rule.check(module, context):
                    if not module.is_suppressed(finding.line, finding.rule_id):
                        findings.append(finding)
        return AnalysisReport(
            findings=sorted(findings),
            files_analyzed=len(files),
            rules_run=[rule.rule_id for rule in self.rules],
        )
