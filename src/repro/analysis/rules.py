"""The project-specific invariant rules.

Each rule mechanises one documented contract of the serving stack (see
``docs/analysis.md`` for the catalogue and ROADMAP for the prose the
rules are grounded in):

==========================  =============================================
``lock-discipline``         container state of a lock-bearing class is
                            only mutated inside ``with self.<lock>:``
``wire-determinism``        no volatile value sources in the modules that
                            build default wire bodies
``error-contract``          ``ERROR_CODES`` / ``HTTP_STATUS_BY_CODE`` /
                            ``_CODE_BY_EXCEPTION`` stay mutually
                            exhaustive and name real exception classes
``no-silent-swallow``       no bare/broad ``except`` on serving paths
                            (a pure re-raise is fine)
``executor-lifecycle``      ``Executor`` subclasses respect the
                            open/close contract; pools only live behind
                            the executor seam
``no-print-in-library``     ``print()`` stays in the CLI and tooling
``no-unbounded-retry``      every transport retry loop carries an attempt
                            bound and a backoff between attempts
``format-version``          modules that write snapshot/journal/manifest
                            bytes keep their magics in module-level
                            ``*MAGIC*`` constants tied to a named
                            ``*_FORMAT_VERSION``
``seeded-rng``              ``repro.eval`` modules draw randomness only
                            from an injected ``random.Random(seed)``;
                            bare ``random.*`` module calls are findings
==========================  =============================================

Every rule is suppressible per line with ``# repro: ignore[rule-id]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.framework import (
    AnalysisContext,
    ModuleSource,
    Rule,
    path_matches,
    register_rule,
)

#: method names that mutate a dict/list/set in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "sort", "reverse",
        "move_to_end",
    }
)


def _is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``time.time``, ``print``, ``x.pop``)."""
    parts: list[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------- #
# lock-discipline
# ---------------------------------------------------------------------- #
@register_rule
class LockDisciplineRule(Rule):
    """Writes to lock-guarded container attributes must hold the lock.

    A class that creates ``self.<...>lock = threading.Lock()`` (or
    ``RLock``) in ``__init__`` is a lock-bearing class; every mutable
    container it also creates in ``__init__`` (``{}``, ``[]``, ``set()``,
    ``OrderedDict()``…) is treated as guarded state.  Outside
    ``__init__``, any mutation of a guarded attribute — reassignment,
    ``self.attr[...] = ...``, ``del``, or an in-place mutator call like
    ``.pop()``/``.update()`` — must sit lexically inside a
    ``with self.<some lock>:`` block.  This is the ``Corpus._entries``
    discipline (atomic entry swaps under ``_serving_lock``) that the
    concurrency tests only probabilistically cover.
    """

    rule_id = "lock-discipline"
    description = (
        "mutations of lock-guarded container attributes must happen inside "
        "a 'with self.<lock>:' block"
    )

    #: container constructors treated as guarded mutable state.
    _CONTAINER_CALLS = frozenset(
        {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
    )

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleSource, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs, guarded = self._init_state(cls)
        if not lock_attrs or not guarded:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                # The object is not shared before __init__ returns.
                continue
            yield from self._check_function(module, item, guarded)

    def _init_state(self, cls: ast.ClassDef) -> tuple[set[str], set[str]]:
        """(lock attributes, guarded container attributes) from ``__init__``."""
        lock_attrs: set[str] = set()
        guarded: set[str] = set()
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return lock_attrs, guarded
        for node in ast.walk(init):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not _is_self_attr(target):
                    continue
                attr = target.attr  # type: ignore[union-attr]
                if self._is_lock_value(value):
                    lock_attrs.add(attr)
                elif self._is_container_value(value):
                    guarded.add(attr)
        return lock_attrs, guarded

    @staticmethod
    def _is_lock_value(value: ast.expr | None) -> bool:
        return (
            isinstance(value, ast.Call)
            and _call_name(value).rsplit(".", 1)[-1] in ("Lock", "RLock")
        )

    def _is_container_value(self, value: ast.expr | None) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        return (
            isinstance(value, ast.Call)
            and not value.args
            and not value.keywords
            and _call_name(value).rsplit(".", 1)[-1] in self._CONTAINER_CALLS
        )

    def _check_function(
        self, module: ModuleSource, func: ast.AST, guarded: set[str]
    ) -> Iterator[Finding]:
        yield from self._walk(module, getattr(func, "body", []), guarded, locked=False)

    def _walk(
        self, module: ModuleSource, body: list[ast.stmt], guarded: set[str], locked: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_locked = locked or any(
                    self._is_lock_context(item.context_expr) for item in stmt.items
                )
                yield from self._walk(module, stmt.body, guarded, inner_locked)
                continue
            if not locked:
                attr = self._mutated_attr(stmt)
                if attr is not None and attr in guarded:
                    yield self.finding(
                        module,
                        stmt,
                        f"write to lock-guarded attribute 'self.{attr}' outside a "
                        "'with self.<lock>:' block",
                    )
            # Nested statement bodies (if/for/try/...) keep the current
            # locked state; nested function definitions are walked too —
            # a closure mutating guarded state inherits the obligation.
            for child_body in self._child_bodies(stmt):
                yield from self._walk(module, child_body, guarded, locked)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _is_lock_context(expr: ast.expr) -> bool:
        """``with self.<x>lock:`` / ``with <anything>._lock:`` style guards."""
        return isinstance(expr, ast.Attribute) and expr.attr.lower().endswith("lock")

    @staticmethod
    def _mutated_attr(stmt: ast.stmt) -> str | None:
        """The guarded-candidate attribute a statement writes, if any."""
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            # self.attr = ... / self.attr += ... / del self.attr
            if _is_self_attr(target):
                return target.attr  # type: ignore[union-attr]
            # self.attr[k] = ... / del self.attr[k]
            if isinstance(target, ast.Subscript) and _is_self_attr(target.value):
                return target.value.attr  # type: ignore[union-attr]
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            # self.attr.pop(...) and friends
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _is_self_attr(func.value)
            ):
                return func.value.attr  # type: ignore[union-attr]
        return None


# ---------------------------------------------------------------------- #
# wire-determinism
# ---------------------------------------------------------------------- #
@register_rule
class WireDeterminismRule(Rule):
    """No volatile value sources in the modules building default wire bodies.

    The protocol contract (ROADMAP, PR 2/5): the default — meta-free —
    serialisation of every response is byte-for-byte deterministic; the
    opt-in ``meta`` block is the only sanctioned home for volatile data.
    So the protocol/service/router/partition modules must not call
    wall-clock time (``time.time``), calendar time (``datetime.now``),
    ``random``, ``id()`` or the salted builtin ``hash()`` — the PR-4
    partitioning bug (salted ``hash()`` instead of SHA-1) is exactly this
    class of drift.  ``time.perf_counter``/``monotonic`` stay allowed:
    they feed the timing fields the protocol only emits inside ``meta``.
    """

    rule_id = "wire-determinism"
    description = (
        "no time.time/datetime.now/random/id()/builtin hash() in the "
        "wire-building modules (volatile data belongs in the meta block)"
    )

    #: the modules whose output reaches default wire bodies.
    PATHS = (
        "repro/api/protocol.py",
        "repro/api/service.py",
        "repro/api/backend.py",
        "repro/api/http.py",
        "repro/cluster/router.py",
        "repro/cluster/shard.py",
        "repro/cluster/partition.py",
    )

    #: dotted call names that produce volatile values.
    _BANNED_DOTTED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.ctime",
            "time.strftime",
            "time.localtime",
            "time.gmtime",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "date.today",
            "datetime.date.today",
        }
    )

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, self.PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if not name:
                continue
            if name in self._BANNED_DOTTED:
                yield self.finding(
                    module,
                    node,
                    f"volatile call {name}() in a wire-building module; "
                    "volatile data may only travel in the opt-in meta block",
                )
            elif name.split(".", 1)[0] == "random":
                yield self.finding(
                    module,
                    node,
                    f"random source {name}() in a wire-building module breaks "
                    "byte-deterministic default wire bodies",
                )
            elif name in ("id", "hash"):
                yield self.finding(
                    module,
                    node,
                    f"builtin {name}() is process-dependent"
                    + (
                        " (salted per interpreter — the PR-4 partitioning bug); "
                        "use hashlib for stable hashing"
                        if name == "hash"
                        else "; its value cannot appear in deterministic wire bodies"
                    ),
                )


# ---------------------------------------------------------------------- #
# telemetry-discipline
# ---------------------------------------------------------------------- #
@register_rule
class TelemetryDisciplineRule(Rule):
    """Serving code reads clocks through the :mod:`repro.obs.clock` seam.

    Three clocks, three jobs — ``perf_counter`` for intervals,
    ``monotonic`` for scheduling, ``wall_clock`` for timestamps — and one
    sanctioned home: scattered direct ``time.*`` reads are exactly how
    span timings, histogram observations and log timestamps drift apart.
    ``time.sleep`` stays allowed (pacing is not measurement), and the
    :mod:`repro.obs.clock` module itself is the one place the underlying
    ``time`` calls live.
    """

    rule_id = "telemetry-discipline"
    description = (
        "no direct time.time/perf_counter/monotonic reads in serving "
        "modules; go through the repro.obs.clock seam"
    )

    #: the serving-stack modules whose clock reads feed telemetry.
    PATHS = (
        "repro/api/gateway.py",
        "repro/api/client.py",
        "repro/api/executors.py",
        "repro/api/http.py",
        "repro/api/service.py",
        "repro/cluster/router.py",
        "repro/cluster/remote.py",
        "repro/cluster/health.py",
        "repro/cluster/replication.py",
        "repro/utils/timing.py",
    )

    #: direct clock reads that must go through repro.obs.clock.
    _BANNED_DOTTED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
        }
    )

    _SEAM_BY_CALL = {
        "time.time": "wall_clock",
        "time.time_ns": "wall_clock",
        "time.perf_counter": "perf_counter",
        "time.perf_counter_ns": "perf_counter",
        "time.monotonic": "monotonic",
        "time.monotonic_ns": "monotonic",
    }

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, self.PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in self._BANNED_DOTTED:
                yield self.finding(
                    module,
                    node,
                    f"direct clock read {name}() in a serving module; use "
                    f"repro.obs.clock.{self._SEAM_BY_CALL[name]}() so every "
                    "span, histogram and log row reads the same clock",
                )


# ---------------------------------------------------------------------- #
# error-contract
# ---------------------------------------------------------------------- #
@register_rule
class ErrorContractRule(Rule):
    """The error-code tables of the protocol module stay exhaustive.

    Checked on ``repro/api/protocol.py`` (cross-referencing
    ``repro/errors.py`` when it is part of the scan):

    * every code in ``_CODE_BY_EXCEPTION`` is declared in ``ERROR_CODES``;
    * ``ERROR_CODES`` and ``HTTP_STATUS_BY_CODE`` cover exactly the same
      codes (a code without an HTTP status would fall back to 500 and
      silently lose its documented wire semantics);
    * the ``"internal"`` fallback code exists in both tables — it is what
      every unlisted exception class maps to;
    * every exception class named in ``_CODE_BY_EXCEPTION`` is defined in
      ``repro/errors.py``.

    The runtime twin of this rule walks the live modules with
    :mod:`inspect` (``tests/api/test_error_contract.py``), so the
    contract holds even when the linter is skipped.
    """

    rule_id = "error-contract"
    description = (
        "ERROR_CODES, HTTP_STATUS_BY_CODE and _CODE_BY_EXCEPTION must stay "
        "mutually exhaustive and name real exception classes"
    )

    PROTOCOL_PATH = "repro/api/protocol.py"
    ERRORS_PATH = "repro/errors.py"

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, (self.PROTOCOL_PATH,)):
            return
        tables = self._module_tables(module.tree)
        error_codes = tables.get("ERROR_CODES")
        status_by_code = tables.get("HTTP_STATUS_BY_CODE")
        code_by_exception = tables.get("_CODE_BY_EXCEPTION")
        for name, value in (
            ("ERROR_CODES", error_codes),
            ("HTTP_STATUS_BY_CODE", status_by_code),
            ("_CODE_BY_EXCEPTION", code_by_exception),
        ):
            if value is None:
                yield self.finding(
                    module,
                    module.tree,
                    f"protocol module defines no literal {name} table; the "
                    "error contract cannot be checked",
                )
        if error_codes is None or status_by_code is None or code_by_exception is None:
            return
        codes, codes_node = error_codes
        statuses, statuses_node = status_by_code
        mapping, mapping_node = code_by_exception

        if "internal" not in codes:
            yield self.finding(
                module, codes_node,
                "ERROR_CODES is missing the 'internal' fallback code every "
                "unlisted exception maps to",
            )
        for code in sorted(set(codes) - set(statuses)):
            yield self.finding(
                module, statuses_node,
                f"error code {code!r} has no HTTP_STATUS_BY_CODE entry; wire "
                "frontends would silently answer 500 for it",
            )
        for code in sorted(set(statuses) - set(codes)):
            yield self.finding(
                module, statuses_node,
                f"HTTP_STATUS_BY_CODE maps undeclared code {code!r}; add it to "
                "ERROR_CODES or drop the entry",
            )
        for exc_name, code, node in mapping:
            if code not in codes:
                yield self.finding(
                    module, node,
                    f"_CODE_BY_EXCEPTION maps {exc_name} to undeclared code "
                    f"{code!r}",
                )
        errors_module = context.find_module(self.ERRORS_PATH)
        if errors_module is not None:
            defined = {
                stmt.name
                for stmt in ast.walk(errors_module.tree)
                if isinstance(stmt, ast.ClassDef)
            }
            for exc_name, _code, node in mapping:
                if exc_name not in defined:
                    yield self.finding(
                        module, node,
                        f"_CODE_BY_EXCEPTION names {exc_name}, which is not "
                        f"defined in {self.ERRORS_PATH}",
                    )

    def _module_tables(self, tree: ast.Module) -> dict[str, object]:
        """The three literal tables, parsed from module-level assignments."""
        tables: dict[str, object] = {}
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "ERROR_CODES":
                codes = self._string_elements(stmt.value)
                if codes is not None:
                    tables["ERROR_CODES"] = (codes, stmt)
            elif target.id == "HTTP_STATUS_BY_CODE":
                if isinstance(stmt.value, ast.Dict):
                    keys = [
                        key.value
                        for key in stmt.value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ]
                    tables["HTTP_STATUS_BY_CODE"] = (keys, stmt)
            elif target.id == "_CODE_BY_EXCEPTION":
                entries = self._exception_entries(stmt.value)
                if entries is not None:
                    tables["_CODE_BY_EXCEPTION"] = (entries, stmt)
        return tables

    @staticmethod
    def _string_elements(value: ast.expr) -> list[str] | None:
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        return [
            element.value
            for element in value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]

    @staticmethod
    def _exception_entries(value: ast.expr) -> list[tuple[str, str, ast.expr]] | None:
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        entries: list[tuple[str, str, ast.expr]] = []
        for element in value.elts:
            if not isinstance(element, (ast.Tuple, ast.List)) or len(element.elts) != 2:
                continue
            exc_node, code_node = element.elts
            if isinstance(exc_node, ast.Name) and isinstance(code_node, ast.Constant):
                entries.append((exc_node.id, str(code_node.value), element))
        return entries


# ---------------------------------------------------------------------- #
# no-silent-swallow
# ---------------------------------------------------------------------- #
@register_rule
class NoSilentSwallowRule(Rule):
    """No bare or broad ``except`` on serving paths.

    A handler catching ``Exception``/``BaseException`` (or bare) in the
    serving modules hides programming errors from the error contract.
    A handler whose entire body is a bare ``raise`` is exempt (it narrows
    nothing and hides nothing).  Boundary sites that genuinely must catch
    everything — mirroring into a Future, answering 500 at the HTTP edge —
    carry an explicit ``# repro: ignore[no-silent-swallow]`` with a
    justifying comment, so every such site is deliberate and auditable.
    """

    rule_id = "no-silent-swallow"
    description = (
        "no bare/broad 'except' on serving paths; justified boundary sites "
        "carry an explicit suppression"
    )

    #: the serving-path modules the contract covers.
    PATHS = (
        "repro/api/",
        "repro/cluster/",
        "repro/index/",
        "repro/corpus.py",
        "repro/system.py",
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, self.PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_catch(node.type)
            if broad is None:
                continue
            if self._is_pure_reraise(node):
                continue
            caught = "bare 'except:'" if broad == "" else f"'except {broad}'"
            yield self.finding(
                module,
                node,
                f"{caught} on a serving path; catch the narrowest exception "
                "set (or justify with '# repro: ignore[no-silent-swallow]')",
            )

    def _broad_catch(self, type_node: ast.expr | None) -> str | None:
        """The broad exception name caught, '' for bare, None when narrow."""
        if type_node is None:
            return ""
        names = [type_node] if not isinstance(type_node, ast.Tuple) else type_node.elts
        for name in names:
            if isinstance(name, ast.Name) and name.id in self._BROAD:
                return name.id
        return None

    @staticmethod
    def _is_pure_reraise(handler: ast.ExceptHandler) -> bool:
        return (
            len(handler.body) == 1
            and isinstance(handler.body[0], ast.Raise)
            and handler.body[0].exc is None
        )


# ---------------------------------------------------------------------- #
# executor-lifecycle
# ---------------------------------------------------------------------- #
@register_rule
class ExecutorLifecycleRule(Rule):
    """Executor subclasses respect the documented lifecycle contract.

    ``repro.api.executors`` pins the contract: ``close()`` is idempotent,
    submitting through a closed executor raises, re-entry re-opens.  The
    mechanical consequences a subclass must honour:

    * an overridden ``map``/``submit`` must gate on ``self._require_open()``
      (or delegate to ``super()``, which gates) — otherwise a closed
      executor would silently resurrect worker resources;
    * an overridden ``close`` must set ``self._closed = True`` or call
      ``super().close()`` — otherwise ``closed`` lies;
    * ``concurrent.futures`` pools are only constructed inside the
      executors module — everything else routes work through the
      ``Executor`` seam, which is what lets process-pool and remote
      variants plug in without touching callers.
    """

    rule_id = "executor-lifecycle"
    description = (
        "Executor subclasses must gate map/submit on _require_open, keep "
        "close() honest, and pools must stay behind the executor seam"
    )

    EXECUTORS_PATH = "repro/api/executors.py"

    _EXECUTOR_BASES = frozenset(
        {"Executor", "SerialExecutor", "ConcurrentExecutor", "ShardExecutor"}
    )
    _POOLS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        in_executors_module = path_matches(module.rel_path, (self.EXECUTORS_PATH,))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._is_executor_subclass(node):
                yield from self._check_subclass(module, node)
            elif (
                not in_executors_module
                and isinstance(node, ast.Call)
                and _call_name(node).rsplit(".", 1)[-1] in self._POOLS
            ):
                yield self.finding(
                    module,
                    node,
                    f"{_call_name(node)} constructed outside the executors "
                    "module; route pooled work through the Executor seam "
                    "(submit/map) so lifecycle and shutdown stay uniform",
                )

    def _is_executor_subclass(self, cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name in self._EXECUTOR_BASES:
                return True
        return False

    def _check_subclass(self, module: ModuleSource, cls: ast.ClassDef) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in ("map", "submit"):
                if not self._calls_any(item, ("_require_open", item.name)):
                    yield self.finding(
                        module,
                        item,
                        f"{cls.name}.{item.name} neither calls "
                        "self._require_open() nor delegates to super(); a "
                        "closed executor would silently accept work",
                    )
            elif item.name == "close":
                if not self._closes_honestly(item):
                    yield self.finding(
                        module,
                        item,
                        f"{cls.name}.close neither sets self._closed = True "
                        "nor calls super().close(); 'closed' would lie and "
                        "close() would not be idempotent",
                    )

    @staticmethod
    def _calls_any(func: ast.AST, names: tuple[str, ...]) -> bool:
        """True when the body calls ``self.<name>()`` or ``super().<name>()``."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute) or target.attr not in names:
                continue
            owner = target.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                return True
            if isinstance(owner, ast.Call) and _call_name(owner) == "super":
                return True
        return False

    def _closes_honestly(self, func: ast.AST) -> bool:
        if self._calls_any(func, ("close",)):
            return True
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _is_self_attr(target, "_closed"):
                        return True
        return False


# ---------------------------------------------------------------------- #
# no-print-in-library
# ---------------------------------------------------------------------- #
@register_rule
class NoPrintInLibraryRule(Rule):
    """``print()`` belongs to the CLI, examples and benchmarks — not the
    library.  Library output travels through return values (the
    ``format_*``/``render_*`` seams) or the response protocol, so serving
    processes never write stray lines to stdout.
    """

    rule_id = "no-print-in-library"
    description = "no print() outside repro/cli.py (library output uses return values)"

    #: paths where printing is the job.
    EXEMPT = (
        "repro/cli.py",
        "examples/",
        "benchmarks/",
        "tests/",
    )

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if path_matches(module.rel_path, self.EXEMPT):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; return the text (or use the "
                    "logging seam) so serving processes keep stdout clean",
                )


# ---------------------------------------------------------------------- #
# no-unbounded-retry
# ---------------------------------------------------------------------- #
@register_rule
class NoUnboundedRetryRule(Rule):
    """Every transport retry loop carries an attempt bound and a backoff.

    A retry loop is a ``for``/``while`` whose body catches a
    transport-class exception (``OSError`` and kin,
    ``http.client.HTTPException``, ``socket.error``/``timeout``, or a
    constant named like ``_TRANSPORT_ERRORS``) in a handler that can run
    another iteration — it ``continue``\\ s, or simply falls through
    instead of ending in an unconditional ``raise``/``return``/``break``.
    An unbounded retry against a dead dependency is a tight connect-storm
    hammering a struggling server (and a spinning client); the documented
    discipline (:class:`repro.api.client.RetryPolicy`) is a bounded
    attempt count with exponential backoff.  Two findings, anchored at the
    transport ``except``:

    * ``while True:`` retry loops have no attempt bound;
    * a retry loop with no sleep/wait/backoff call between attempts
      hammers instead of backing off.

    Loops that *look* like retries but aren't — failover over distinct
    endpoints, health-probe sweeps, delta fan-outs — carry a justified
    ``# repro: ignore[no-unbounded-retry]`` at the ``except``, so every
    such site is deliberate and auditable.  Broad ``except Exception``
    handlers are not treated as transport catches; those are
    ``no-silent-swallow``'s territory.
    """

    rule_id = "no-unbounded-retry"
    description = (
        "transport retry loops must bound their attempts and back off "
        "between them (RetryPolicy discipline)"
    )

    #: exception names (last dotted segment) treated as transport-class.
    _TRANSPORT_NAMES = frozenset(
        {
            "OSError", "IOError", "ConnectionError", "ConnectionResetError",
            "ConnectionRefusedError", "ConnectionAbortedError",
            "BrokenPipeError", "TimeoutError", "HTTPException", "SSLError",
            "URLError", "gaierror", "herror",
        }
    )

    #: dotted names treated as transport-class in full.
    _TRANSPORT_DOTTED = frozenset({"socket.error", "socket.timeout"})

    #: call-name fragments that count as backing off between attempts.
    _BACKOFF_FRAGMENTS = ("sleep", "wait", "backoff")

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            handlers = self._own_handlers(loop)
            if not handlers:
                continue
            has_backoff = self._has_backoff(loop)
            unbounded = self._is_unbounded(loop)
            for handler in handlers:
                if not self._catches_transport(handler.type):
                    continue
                if not self._retry_capable(handler):
                    continue
                if unbounded:
                    yield self.finding(
                        module,
                        handler,
                        "unbounded transport retry: 'while True:' re-attempts "
                        "forever; bound the attempts (for attempt in "
                        "range(n)) and back off between them",
                    )
                elif not has_backoff:
                    yield self.finding(
                        module,
                        handler,
                        "transport retry loop with no backoff between "
                        "attempts; sleep with an increasing delay (see "
                        "RetryPolicy) or justify the site",
                    )

    def _own_handlers(self, loop: ast.AST) -> list[ast.ExceptHandler]:
        """Except handlers belonging to this loop's own iteration.

        Handlers inside a nested loop retry *that* loop; handlers inside a
        nested function don't retry anything by themselves.  Both are
        excluded (the nested loop is visited on its own).
        """
        nested: set[int] = set()
        for child in ast.walk(loop):
            if child is loop:
                continue
            if isinstance(
                child,
                (ast.For, ast.While, ast.AsyncFor, ast.FunctionDef,
                 ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                nested.update(id(sub) for sub in ast.walk(child))
        return [
            node
            for node in ast.walk(loop)
            if isinstance(node, ast.ExceptHandler) and id(node) not in nested
        ]

    def _catches_transport(self, type_node: ast.expr | None) -> bool:
        if type_node is None:
            return False  # bare except: no-silent-swallow's territory
        names = [type_node] if not isinstance(type_node, ast.Tuple) else list(type_node.elts)
        for name in names:
            if isinstance(name, ast.Attribute):
                dotted_parts: list[str] = []
                target: ast.expr = name
                while isinstance(target, ast.Attribute):
                    dotted_parts.append(target.attr)
                    target = target.value
                if isinstance(target, ast.Name):
                    dotted_parts.append(target.id)
                dotted = ".".join(reversed(dotted_parts))
                if dotted in self._TRANSPORT_DOTTED or (
                    dotted_parts and dotted_parts[0] in self._TRANSPORT_NAMES
                ):
                    return True
            elif isinstance(name, ast.Name):
                if name.id in self._TRANSPORT_NAMES or "TRANSPORT" in name.id.upper():
                    return True
        return False

    @staticmethod
    def _retry_capable(handler: ast.ExceptHandler) -> bool:
        """True when the handler can let the loop run another iteration."""
        if any(isinstance(node, ast.Continue) for node in ast.walk(handler)):
            return True
        last = handler.body[-1]
        return not isinstance(last, (ast.Raise, ast.Return, ast.Break))

    def _has_backoff(self, loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            last_segment = _call_name(node).rsplit(".", 1)[-1].lower()
            if any(fragment in last_segment for fragment in self._BACKOFF_FRAGMENTS):
                return True
        return False

    @staticmethod
    def _is_unbounded(loop: ast.AST) -> bool:
        return (
            isinstance(loop, ast.While)
            and isinstance(loop.test, ast.Constant)
            and bool(loop.test.value)
        )


@register_rule
class FormatVersionRule(Rule):
    """On-disk format magics live in named constants next to their version.

    The persistence modules (text/binary snapshots, corpus manifest and
    journal, cluster manifest) each declare a ``*_FORMAT_VERSION`` integer
    and derive their magic header from it — ``save_index`` writing
    ``"#extract-index v3"`` inline would silently fork the format the
    moment the constant moved to 4.  Two findings:

    * a magic-looking literal (``#extract-…`` text header or an
      ``EXIDX…`` binary sentinel) anywhere except a module-level
      assignment to a ``*MAGIC*`` name, and
    * a module that declares magics but never names a
      ``*_FORMAT_VERSION`` constant at all.
    """

    rule_id = "format-version"
    description = (
        "snapshot/journal/manifest magics live in module-level *MAGIC* "
        "constants alongside a named *_FORMAT_VERSION"
    )

    #: the modules that put format bytes on disk.
    PATHS = (
        "repro/index/storage.py",
        "repro/index/binfmt.py",
        "repro/cluster/partition.py",
    )

    _TEXT_MAGIC_PREFIX = "#extract-"
    _BINARY_MAGIC_FRAGMENT = b"EXIDX"

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, self.PATHS):
            return
        allowed, magic_homes = self._magic_assignments(module.tree)
        for node in ast.walk(module.tree):
            if id(node) in allowed or not self._is_magic_literal(node):
                continue
            yield self.finding(
                module,
                node,
                "inline format magic; assign it to a module-level *MAGIC* "
                "constant derived from a *_FORMAT_VERSION",
            )
        if magic_homes and not self._names_format_version(module.tree):
            yield self.finding(
                module,
                magic_homes[0],
                "module declares format magics but never names a "
                "*_FORMAT_VERSION constant",
            )

    def _magic_assignments(
        self, tree: ast.Module
    ) -> tuple[set[int], list[ast.stmt]]:
        """ids of literal nodes inside module-level ``*MAGIC*`` assignments."""
        allowed: set[int] = set()
        homes: list[ast.stmt] = []
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            if not any(
                isinstance(target, ast.Name) and "MAGIC" in target.id
                for target in targets
            ):
                continue
            homes.append(stmt)
            allowed.update(id(node) for node in ast.walk(stmt))
        return allowed, homes

    def _is_magic_literal(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Constant):
            return False
        value = node.value
        if isinstance(value, str):
            return value.startswith(self._TEXT_MAGIC_PREFIX)
        if isinstance(value, bytes):
            return self._BINARY_MAGIC_FRAGMENT in value
        return False

    @staticmethod
    def _names_format_version(tree: ast.Module) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id.endswith("_FORMAT_VERSION")
            for node in ast.walk(tree)
        )


# ---------------------------------------------------------------------- #
# seeded-rng
# ---------------------------------------------------------------------- #
@register_rule
class SeededRngRule(Rule):
    """Evaluation code draws randomness from an injected seeded generator.

    The evaluation contract (PR 10): every experiment and load run is
    replayable from its seed — ``loadgen --seed 7`` twice must produce
    identical request sequences.  That only holds when all randomness in
    :mod:`repro.eval` flows through one injected ``random.Random(seed)``
    instance (``DatasetRandom`` in practice); a single module-level
    ``random.choice()`` draws from the interpreter-global generator and
    silently couples a run to import order and to every other consumer of
    that generator.  Constructing a seeded generator is the sanctioned
    injection point, so ``random.Random(seed)`` stays allowed; drawing
    from the ``random`` module — or building a seedless/entropy-backed
    generator — is the finding.
    """

    rule_id = "seeded-rng"
    description = (
        "repro.eval modules draw randomness only from an injected "
        "random.Random(seed); bare random.* module calls break seeded "
        "replayability"
    )

    #: every module under the evaluation package.
    PATHS = ("repro/eval/",)

    #: generator constructors — allowed only when given an explicit seed.
    _CONSTRUCTORS = frozenset({"random.Random"})

    def check(self, module: ModuleSource, context: AnalysisContext) -> Iterator[Finding]:
        if not path_matches(module.rel_path, self.PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if not name or name.split(".", 1)[0] != "random":
                continue
            if name in self._CONSTRUCTORS:
                if node.args or node.keywords:
                    continue
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed is as unreplayable as "
                    "the module-level generator; pass the run's seed",
                )
            else:
                yield self.finding(
                    module,
                    node,
                    f"module-level {name}() in repro.eval; draw from the "
                    "injected random.Random(seed) generator instead",
                )
