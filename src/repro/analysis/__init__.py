"""``repro.analysis`` — the AST-based invariant linter.

The serving stack's contracts (lock discipline, wire determinism, the
error-code tables, executor lifecycle) are enforced mechanically here;
``python -m repro.cli lint`` is the entry point and ``docs/analysis.md``
the rule catalogue.
"""

from repro.analysis.baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    apply_baseline,
    entry_for,
    read_baseline,
    write_baseline,
)
from repro.analysis.findings import (
    REPORT_SCHEMA_VERSION,
    Finding,
    finding_from_dict,
    report_to_dict,
)
from repro.analysis.framework import (
    SYNTAX_ERROR_RULE,
    AnalysisContext,
    AnalysisReport,
    Analyzer,
    ModuleSource,
    Rule,
    build_rules,
    parse_suppressions,
    path_matches,
    register_rule,
    registered_rule_ids,
)

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "REPORT_SCHEMA_VERSION",
    "SYNTAX_ERROR_RULE",
    "AnalysisContext",
    "AnalysisReport",
    "Analyzer",
    "BaselineEntry",
    "Finding",
    "ModuleSource",
    "Rule",
    "apply_baseline",
    "build_rules",
    "entry_for",
    "finding_from_dict",
    "parse_suppressions",
    "path_matches",
    "read_baseline",
    "register_rule",
    "registered_rule_ids",
    "report_to_dict",
    "write_baseline",
]
