"""Document statistics used by the evaluation harness and the examples.

The efficiency experiments (E3, E7) sweep document size; the workload
generator needs to know which tags and values exist so it can draw query
keywords that are guaranteed (or guaranteed not) to match.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.utils.text import iter_index_terms
from repro.xmltree.tree import XMLTree


@dataclass
class DocumentStats:
    """Aggregate counts describing one XML document."""

    name: str
    node_count: int
    edge_count: int
    max_depth: int
    leaf_count: int
    text_node_count: int
    distinct_tags: int
    tag_counts: Counter[str] = field(default_factory=Counter)
    term_counts: Counter[str] = field(default_factory=Counter)

    @property
    def average_fanout(self) -> float:
        """Mean number of children per internal node."""
        internal = self.node_count - self.leaf_count
        if internal == 0:
            return 0.0
        return self.edge_count / internal

    def most_common_tags(self, limit: int = 10) -> list[tuple[str, int]]:
        return self.tag_counts.most_common(limit)

    def most_common_terms(self, limit: int = 10) -> list[tuple[str, int]]:
        return self.term_counts.most_common(limit)

    def format_summary(self) -> str:
        """Render a plain-text summary block (used by examples)."""
        lines = [
            f"document        : {self.name}",
            f"nodes / edges   : {self.node_count} / {self.edge_count}",
            f"max depth       : {self.max_depth}",
            f"leaves          : {self.leaf_count}",
            f"text nodes      : {self.text_node_count}",
            f"distinct tags   : {self.distinct_tags}",
            f"average fanout  : {self.average_fanout:.2f}",
        ]
        top = ", ".join(f"{tag}({count})" for tag, count in self.most_common_tags(6))
        lines.append(f"frequent tags   : {top}")
        return "\n".join(lines)


def compute_stats(tree: XMLTree) -> DocumentStats:
    """Compute :class:`DocumentStats` in one pass over the document."""
    tag_counts: Counter[str] = Counter()
    term_counts: Counter[str] = Counter()
    leaf_count = 0
    text_node_count = 0
    max_depth = 0
    node_count = 0

    for node in tree.iter_nodes():
        node_count += 1
        tag_counts[node.tag] += 1
        if node.depth > max_depth:
            max_depth = node.depth
        if node.is_leaf:
            leaf_count += 1
        if node.has_text_value:
            text_node_count += 1
            for term in iter_index_terms(node.text or ""):
                term_counts[term] += 1
        for term in iter_index_terms(node.tag):
            term_counts[term] += 1

    return DocumentStats(
        name=tree.name,
        node_count=node_count,
        edge_count=max(0, node_count - 1),
        max_depth=max_depth,
        leaf_count=leaf_count,
        text_node_count=text_node_count,
        distinct_tags=len(tag_counts),
        tag_counts=tag_counts,
        term_counts=term_counts,
    )
