"""Export helpers: Graphviz DOT drawings and DTD generation.

Two small utilities round off the XML substrate:

* :func:`to_dot` renders a tree (document, query result or snippet) in the
  style of the paper's Figures 1 and 2 — element nodes as ellipses, value
  leaves attached below their attribute node — as Graphviz DOT text that
  can be turned into an image with ``dot -Tpng``.
* :func:`export_dtd` writes the *inferred* schema summary back out as a DTD
  internal subset, so a document that arrived without a DTD can be given
  one (useful for persisting the entity classification alongside the data).
"""

from __future__ import annotations

from collections import defaultdict

from repro.xmltree.node import XMLNode
from repro.xmltree.schema import SchemaSummary, TagPath
from repro.xmltree.tree import XMLTree


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    tree_or_node: XMLTree | XMLNode,
    graph_name: str = "xmltree",
    highlight: set | None = None,
    rankdir: str = "TB",
) -> str:
    """Render a tree as Graphviz DOT text.

    ``highlight`` is an optional set of Dewey labels drawn with a filled
    background — used by the examples to show which result nodes a snippet
    selected.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> dot = to_dot(tree_from_dict("a", {"b": "1"}))
    >>> "digraph" in dot and '"a"' in dot
    True
    """
    node = tree_or_node.root if isinstance(tree_or_node, XMLTree) else tree_or_node
    highlight = highlight or set()
    lines = [
        f"digraph {graph_name} {{",
        f"  rankdir={rankdir};",
        '  node [shape=ellipse, fontname="Helvetica", fontsize=11];',
        '  edge [arrowhead=none];',
    ]
    counter = 0

    def emit(current: XMLNode) -> str:
        nonlocal counter
        identifier = f"n{counter}"
        counter += 1
        style = ', style=filled, fillcolor="#ffe9a8"' if current.dewey in highlight else ""
        lines.append(f'  {identifier} [label="{_dot_escape(current.tag)}"{style}];')
        if current.has_text_value:
            value_id = f"{identifier}v"
            lines.append(
                f'  {value_id} [label="{_dot_escape(current.text or "")}", shape=box, '
                'fontsize=10, color="#4477aa", fontcolor="#1a4d8f"];'
            )
            lines.append(f"  {identifier} -> {value_id};")
        for child in current.children:
            child_id = emit(child)
            lines.append(f"  {identifier} -> {child_id};")
        return identifier

    emit(node)
    lines.append("}")
    return "\n".join(lines) + "\n"


def export_dtd(schema: SchemaSummary, root_tag: str | None = None) -> str:
    """Generate DTD element declarations from an inferred schema summary.

    The content model of each element lists its observed child tags (in
    alphabetical order); children that repeat somewhere in the data get ``*``,
    children missing from some instances get ``?``.  Elements whose
    instances carry text and have no element children are declared
    ``(#PCDATA)``; childless valueless elements are ``EMPTY``.

    The output is suitable for embedding in a ``<!DOCTYPE root [...]>``
    internal subset and for re-parsing with
    :func:`repro.xmltree.dtd.parse_dtd`; re-parsing it reproduces the same
    ``*``-node classification the schema summary inferred from the data.
    """
    # group schema nodes by tag; merge child information across paths with
    # the same tag (DTDs are tag-level, paths are context-level)
    by_tag: dict[str, list[TagPath]] = defaultdict(list)
    for path in schema.nodes:
        by_tag[path[-1]].append(path)

    declared: list[str] = []
    order: list[str] = []
    if root_tag and root_tag in by_tag:
        order.append(root_tag)
    order.extend(sorted(tag for tag in by_tag if tag not in order))

    for tag in order:
        paths = by_tag[tag]
        child_tags: list[str] = []
        child_repeat: dict[str, bool] = {}
        child_optional: dict[str, bool] = {}
        has_text = False
        has_children = False
        instance_total = 0
        child_instance_counts: dict[str, int] = defaultdict(int)
        for path in paths:
            entry = schema.node_for(path)
            instance_total += entry.instance_count
            if entry.with_text:
                has_text = True
            if entry.with_element_children:
                has_children = True
            for child_path in sorted(entry.child_paths):
                child_tag = child_path[-1]
                child_entry = schema.nodes.get(child_path)
                if child_tag not in child_repeat:
                    child_tags.append(child_tag)
                    child_repeat[child_tag] = False
                    child_optional[child_tag] = False
                if child_entry is not None:
                    if child_entry.repeats_in_data or schema.is_star_node(child_path):
                        child_repeat[child_tag] = True
                    child_instance_counts[child_tag] += child_entry.instance_count

        if not has_children:
            model = "(#PCDATA)" if has_text else "EMPTY"
        else:
            particles = []
            for child_tag in child_tags:
                suffix = ""
                if child_repeat[child_tag]:
                    suffix = "*"
                elif child_instance_counts[child_tag] < instance_total:
                    suffix = "?"
                particles.append(f"{child_tag}{suffix}")
            model = "(" + ", ".join(particles) + ")"
            if has_text:
                # mixed content must be declared as a choice group in XML;
                # keep it simple and readable for the datasets at hand
                model = "(#PCDATA | " + " | ".join(child_tags) + ")*"
        declared.append(f"<!ELEMENT {tag} {model}>")
    return "\n".join(declared) + "\n"


def export_doctype(schema: SchemaSummary, root_tag: str) -> str:
    """A complete ``<!DOCTYPE ...>`` declaration for the inferred schema."""
    body = export_dtd(schema, root_tag=root_tag)
    indented = "\n".join("  " + line for line in body.strip().splitlines())
    return f"<!DOCTYPE {root_tag} [\n{indented}\n]>\n"
