"""A self-contained XML parser producing :class:`~repro.xmltree.tree.XMLTree`.

The parser covers the subset of XML that keyword-search datasets use:

* elements with attributes and text content,
* comments, processing instructions and CDATA sections (skipped / inlined),
* an XML declaration,
* a ``<!DOCTYPE ...>`` declaration whose *internal subset* is captured and
  handed to :mod:`repro.xmltree.dtd`, because the paper uses the DTD to
  classify ``*``-nodes (§2.1),
* the five predefined entities plus decimal/hex character references.

It is intentionally strict about well-formedness (mismatched tags, stray
``<``, unterminated constructs raise :class:`~repro.errors.XMLParseError`)
so tests can rely on malformed input being rejected.

XML attributes are normalised into child elements by default
(``<store id="3">`` becomes a ``store`` element with an ``id`` child whose
text is ``3``) because eXtract's data model is element-only; pass
``attributes_as_children=False`` to keep them only in
``XMLNode.raw_attributes``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from repro.errors import XMLParseError
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_.\-:]*")
_ATTR_RE = re.compile(
    r"""\s+([A-Za-z_:][A-Za-z0-9_.\-:]*)\s*=\s*("([^"]*)"|'([^']*)')"""
)
_CHARREF_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


@dataclass
class ParseResult:
    """The outcome of parsing: the tree plus the raw internal DTD subset."""

    tree: XMLTree
    dtd_text: str | None
    doctype_name: str | None


class _Cursor:
    """Tracks position in the source text and computes line/column lazily."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)

    def location(self) -> tuple[int, int]:
        prefix = self.text[: self.pos]
        line = prefix.count("\n") + 1
        column = self.pos - (prefix.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line=line, column=column)

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def skip_whitespace(self) -> None:
        while not self.exhausted and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def consume(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def find(self, token: str) -> int:
        return self.text.find(token, self.pos)


def decode_entities(text: str) -> str:
    """Replace predefined entities and character references in ``text``."""

    def _replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[body]
        # Unknown named entity: keep it verbatim rather than failing, the
        # datasets we parse never rely on external entity definitions.
        return match.group(0)

    return _CHARREF_RE.sub(_replace, text)


def parse_xml(
    text: str,
    name: str = "document",
    attributes_as_children: bool = True,
) -> ParseResult:
    """Parse XML text into a :class:`ParseResult`.

    >>> result = parse_xml("<a><b>hi</b></a>")
    >>> result.tree.root.tag
    'a'
    >>> result.tree.root.children[0].text
    'hi'
    """
    if not isinstance(text, str):
        raise XMLParseError(f"expected XML text as str, got {type(text).__name__}")
    cursor = _Cursor(text)
    dtd_text: str | None = None
    doctype_name: str | None = None

    # ---- prolog: XML declaration, comments, PIs, DOCTYPE ---- #
    root: XMLNode | None = None
    while True:
        cursor.skip_whitespace()
        if cursor.exhausted:
            raise cursor.error("document contains no root element")
        if cursor.startswith("<?"):
            _skip_processing_instruction(cursor)
        elif cursor.startswith("<!--"):
            _skip_comment(cursor)
        elif cursor.startswith("<!DOCTYPE"):
            doctype_name, dtd_text = _parse_doctype(cursor)
        elif cursor.startswith("<"):
            root = _parse_element(cursor, attributes_as_children)
            break
        else:
            raise cursor.error("unexpected content before root element")

    # ---- trailing misc ---- #
    while True:
        cursor.skip_whitespace()
        if cursor.exhausted:
            break
        if cursor.startswith("<?"):
            _skip_processing_instruction(cursor)
        elif cursor.startswith("<!--"):
            _skip_comment(cursor)
        else:
            raise cursor.error("unexpected content after root element")

    assert root is not None
    return ParseResult(tree=XMLTree(root, name=name), dtd_text=dtd_text, doctype_name=doctype_name)


def parse_xml_file(path: str | os.PathLike[str], attributes_as_children: bool = True) -> ParseResult:
    """Parse an XML file from disk (UTF-8)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_xml(text, name=os.fspath(path), attributes_as_children=attributes_as_children)


# ---------------------------------------------------------------------- #
# internal parsing helpers
# ---------------------------------------------------------------------- #
def _skip_processing_instruction(cursor: _Cursor) -> None:
    end = cursor.find("?>")
    if end < 0:
        raise cursor.error("unterminated processing instruction")
    cursor.pos = end + 2


def _skip_comment(cursor: _Cursor) -> None:
    end = cursor.find("-->")
    if end < 0:
        raise cursor.error("unterminated comment")
    cursor.pos = end + 3


def _parse_doctype(cursor: _Cursor) -> tuple[str, str | None]:
    cursor.consume("<!DOCTYPE")
    cursor.skip_whitespace()
    match = _NAME_RE.match(cursor.text, cursor.pos)
    if not match:
        raise cursor.error("DOCTYPE declaration without a document element name")
    doctype_name = match.group(0)
    cursor.pos = match.end()

    dtd_text: str | None = None
    depth_guard = 0
    while True:
        if cursor.exhausted:
            raise cursor.error("unterminated DOCTYPE declaration")
        char = cursor.text[cursor.pos]
        if char == "[":
            # internal subset: capture verbatim up to the matching ']'
            end = cursor.find("]")
            if end < 0:
                raise cursor.error("unterminated DOCTYPE internal subset")
            dtd_text = cursor.text[cursor.pos + 1 : end]
            cursor.pos = end + 1
        elif char == ">":
            cursor.pos += 1
            return doctype_name, dtd_text
        else:
            cursor.pos += 1
            depth_guard += 1
            if depth_guard > 10_000_000:  # pragma: no cover - defensive
                raise cursor.error("DOCTYPE declaration too long")


def _parse_attributes(cursor: _Cursor, tag_end: int) -> dict[str, str]:
    attributes: dict[str, str] = {}
    segment = cursor.text[cursor.pos : tag_end]
    for match in _ATTR_RE.finditer(segment):
        name = match.group(1)
        value = match.group(3) if match.group(3) is not None else match.group(4)
        attributes[name] = decode_entities(value)
    return attributes


def _parse_element(cursor: _Cursor, attributes_as_children: bool) -> XMLNode:
    cursor.consume("<")
    match = _NAME_RE.match(cursor.text, cursor.pos)
    if not match:
        raise cursor.error("malformed start tag: missing element name")
    tag = match.group(0)
    cursor.pos = match.end()

    # find the end of the start tag, honouring quoted attribute values
    tag_end = _find_tag_end(cursor)
    attributes = _parse_attributes(cursor, tag_end)
    self_closing = cursor.text[tag_end - 1] == "/"
    content_start = tag_end + 1
    node = XMLNode(tag)
    node.raw_attributes.update(attributes)
    if attributes_as_children:
        for attr_name, attr_value in attributes.items():
            node.append_child(XMLNode(attr_name, attr_value))

    cursor.pos = content_start
    if self_closing:
        return node

    text_pieces: list[str] = []
    while True:
        if cursor.exhausted:
            raise cursor.error(f"unterminated element <{tag}>")
        if cursor.startswith("</"):
            cursor.consume("</")
            close_match = _NAME_RE.match(cursor.text, cursor.pos)
            if not close_match or close_match.group(0) != tag:
                found = close_match.group(0) if close_match else "?"
                raise cursor.error(f"mismatched end tag </{found}> for <{tag}>")
            cursor.pos = close_match.end()
            cursor.skip_whitespace()
            cursor.consume(">")
            break
        if cursor.startswith("<!--"):
            _skip_comment(cursor)
        elif cursor.startswith("<![CDATA["):
            end = cursor.find("]]>")
            if end < 0:
                raise cursor.error("unterminated CDATA section")
            text_pieces.append(cursor.text[cursor.pos + 9 : end])
            cursor.pos = end + 3
        elif cursor.startswith("<?"):
            _skip_processing_instruction(cursor)
        elif cursor.startswith("<"):
            node.append_child(_parse_element(cursor, attributes_as_children))
        else:
            next_angle = cursor.find("<")
            if next_angle < 0:
                raise cursor.error(f"unterminated element <{tag}>")
            text_pieces.append(decode_entities(cursor.text[cursor.pos : next_angle]))
            cursor.pos = next_angle

    text = " ".join(piece.strip() for piece in text_pieces if piece.strip())
    if text:
        node.text = text
    return node


def _find_tag_end(cursor: _Cursor) -> int:
    """Index of the ``>`` closing the current start tag (quote-aware)."""
    position = cursor.pos
    text = cursor.text
    quote: str | None = None
    while position < len(text):
        char = text[position]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == ">":
            return position
        position += 1
    raise cursor.error("unterminated start tag")
