"""Dewey (prefix) labels for XML nodes.

A Dewey label encodes the path from the document root to a node as a tuple
of child ordinals: the root is ``()``, its third child is ``(2,)``, that
child's first child is ``(2, 0)`` and so on.  Dewey labels give us, in
O(depth) time and without touching the tree:

* document order (lexicographic comparison),
* ancestor/descendant tests (prefix tests),
* the lowest common ancestor of two nodes (longest common prefix),

which is exactly what the SLCA [Xu & Papakonstantinou, SIGMOD 2005] and
ELCA [XRANK, SIGMOD 2003] keyword-search algorithms and eXtract's instance
selector need.  The textual form uses dot-separated ordinals
(``"0.2.1"``); the root's textual form is ``"r"``.
"""

from __future__ import annotations

from functools import total_ordering
from collections.abc import Iterable, Iterator

from repro.errors import DeweyError

_ROOT_TEXT = "r"


@total_ordering
class Dewey:
    """An immutable Dewey label.

    Instances behave like small value objects: hashable, totally ordered in
    document order, and cheap to derive children/parents from.

    >>> a = Dewey((0, 2))
    >>> b = a.child(1)
    >>> str(b)
    '0.2.1'
    >>> a.is_ancestor_of(b)
    True
    >>> Dewey.common_ancestor(b, Dewey((0, 3)))
    Dewey('0')
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int] = ()):
        parts = tuple(int(part) for part in components)
        for part in parts:
            if part < 0:
                raise DeweyError(f"Dewey components must be non-negative, got {parts!r}")
        self._components = parts

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def root(cls) -> "Dewey":
        """The label of the document root."""
        return cls(())

    @classmethod
    def parse(cls, text: str) -> "Dewey":
        """Parse the dot-separated textual form produced by ``str()``.

        >>> Dewey.parse("0.2.1").components
        (0, 2, 1)
        >>> Dewey.parse("r") == Dewey.root()
        True
        """
        text = text.strip()
        if text in ("", _ROOT_TEXT):
            return cls(())
        try:
            return cls(int(piece) for piece in text.split("."))
        except ValueError as exc:
            raise DeweyError(f"malformed Dewey label text {text!r}") from exc

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def components(self) -> tuple[int, ...]:
        """The ordinal components as a tuple (empty for the root)."""
        return self._components

    @property
    def depth(self) -> int:
        """Depth of the node: the root has depth 0."""
        return len(self._components)

    @property
    def is_root(self) -> bool:
        return not self._components

    @property
    def ordinal(self) -> int:
        """The position of this node among its siblings (0-based)."""
        if self.is_root:
            raise DeweyError("the root has no sibling ordinal")
        return self._components[-1]

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    def child(self, ordinal: int) -> "Dewey":
        """Label of the ``ordinal``-th child of this node."""
        if ordinal < 0:
            raise DeweyError(f"child ordinal must be non-negative, got {ordinal}")
        return Dewey(self._components + (ordinal,))

    def parent(self) -> "Dewey":
        """Label of the parent node."""
        if self.is_root:
            raise DeweyError("the root has no parent")
        return Dewey(self._components[:-1])

    def ancestors(self, include_self: bool = False) -> Iterator["Dewey"]:
        """Yield ancestor labels from the root down to the parent.

        With ``include_self=True`` the node's own label is yielded last.
        """
        limit = len(self._components) + (1 if include_self else 0)
        for length in range(limit):
            yield Dewey(self._components[:length])

    def prefix(self, length: int) -> "Dewey":
        """The ancestor label of the given depth (``length`` components)."""
        if length < 0 or length > len(self._components):
            raise DeweyError(
                f"prefix length {length} out of range for label of depth {self.depth}"
            )
        return Dewey(self._components[:length])

    # ------------------------------------------------------------------ #
    # relationships
    # ------------------------------------------------------------------ #
    def is_ancestor_of(self, other: "Dewey") -> bool:
        """Strict ancestor test (a node is not its own ancestor)."""
        return (
            len(self._components) < len(other._components)
            and other._components[: len(self._components)] == self._components
        )

    def is_descendant_of(self, other: "Dewey") -> bool:
        """Strict descendant test."""
        return other.is_ancestor_of(self)

    def is_ancestor_or_self(self, other: "Dewey") -> bool:
        """Ancestor-or-self test (prefix test)."""
        return other._components[: len(self._components)] == self._components

    def is_sibling_of(self, other: "Dewey") -> bool:
        """True when both labels share a parent and differ."""
        if self == other or self.is_root or other.is_root:
            return False
        return self._components[:-1] == other._components[:-1]

    @staticmethod
    def common_ancestor(first: "Dewey", second: "Dewey") -> "Dewey":
        """Lowest common ancestor of two labels (longest common prefix)."""
        limit = min(len(first._components), len(second._components))
        length = 0
        while length < limit and first._components[length] == second._components[length]:
            length += 1
        return Dewey(first._components[:length])

    @staticmethod
    def common_ancestor_of_all(labels: Iterable["Dewey"]) -> "Dewey":
        """Lowest common ancestor of a non-empty collection of labels."""
        iterator = iter(labels)
        try:
            result = next(iterator)
        except StopIteration as exc:
            raise DeweyError("common_ancestor_of_all() requires at least one label") from exc
        for label in iterator:
            result = Dewey.common_ancestor(result, label)
            if result.is_root:
                break
        return result

    def distance_to_ancestor(self, ancestor: "Dewey") -> int:
        """Number of edges between this node and an ancestor-or-self label."""
        if not ancestor.is_ancestor_or_self(self):
            raise DeweyError(f"{ancestor} is not an ancestor of {self}")
        return self.depth - ancestor.depth

    def tree_distance(self, other: "Dewey") -> int:
        """Number of edges on the unique path between two nodes."""
        lca = Dewey.common_ancestor(self, other)
        return (self.depth - lca.depth) + (other.depth - lca.depth)

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dewey):
            return NotImplemented
        return self._components == other._components

    def __lt__(self, other: "Dewey") -> bool:
        if not isinstance(other, Dewey):
            return NotImplemented
        # Lexicographic comparison of component tuples is exactly document
        # (pre-order) order, with ancestors sorting before descendants.
        return self._components < other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __str__(self) -> str:
        if self.is_root:
            return _ROOT_TEXT
        return ".".join(str(part) for part in self._components)

    def __repr__(self) -> str:
        return f"Dewey('{self}')"


def document_order(labels: Iterable[Dewey]) -> list[Dewey]:
    """Return the labels sorted in document (pre-order) order."""
    return sorted(labels)


def remove_descendants(labels: Iterable[Dewey]) -> list[Dewey]:
    """Keep only labels that have no ancestor in the collection.

    Useful when a set of matches should be reduced to its "highest"
    members, e.g. when computing default return entities.
    """
    ordered = sorted(set(labels))
    kept: list[Dewey] = []
    for label in ordered:
        if kept and kept[-1].is_ancestor_or_self(label):
            continue
        kept.append(label)
    return kept


def remove_ancestors(labels: Iterable[Dewey]) -> list[Dewey]:
    """Keep only labels that have no descendant in the collection."""
    ordered = sorted(set(labels))
    kept: list[Dewey] = []
    for label in ordered:
        while kept and kept[-1].is_ancestor_or_self(label) and kept[-1] != label:
            kept.pop()
        kept.append(label)
    # A label may still be an ancestor of a later one only if they were
    # adjacent; the pass above removes those, so the result is antichain.
    return kept
