"""DTD parsing and ``*``-node detection.

The paper (§2.1, following XSeek [6]) classifies a node as an *entity* when
"it corresponds to a *-node in the DTD": an element that may occur multiple
times under its parent.  This module parses the element declarations of a
DTD internal subset and answers, for every (parent tag, child tag) pair,
whether the child is repeatable (declared with ``*`` or ``+``, directly or
inside a repeated group).

Only the pieces needed for that question are modelled: ``<!ELEMENT>``
content models and ``<!ATTLIST>`` declarations (kept so key mining can
honour ``ID`` attributes).  Parameter entities and conditional sections are
out of scope for the datasets used here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DTDParseError

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([A-Za-z_:][\w.\-:]*)\s+([^>]+)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([A-Za-z_:][\w.\-:]*)\s+([^>]+)>", re.DOTALL)
_ATTDEF_RE = re.compile(
    r"([A-Za-z_:][\w.\-:]*)\s+"
    r"(CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|ENTITY|ENTITIES|\([^)]*\))\s+"
    r"(#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')|\"[^\"]*\"|'[^']*')",
    re.DOTALL,
)


@dataclass
class ChildSpec:
    """Occurrence information for a child element within a content model."""

    tag: str
    repeatable: bool
    optional: bool


@dataclass
class ElementDecl:
    """A parsed ``<!ELEMENT>`` declaration."""

    tag: str
    content_model: str
    children: dict[str, ChildSpec] = field(default_factory=dict)
    has_text: bool = False
    is_empty: bool = False
    is_any: bool = False


@dataclass
class AttributeDecl:
    """A parsed attribute definition from ``<!ATTLIST>``."""

    element: str
    name: str
    attr_type: str
    default: str

    @property
    def is_id(self) -> bool:
        return self.attr_type.upper() == "ID"


class DTD:
    """A parsed DTD: element declarations plus attribute lists."""

    def __init__(
        self,
        elements: dict[str, ElementDecl],
        attributes: list[AttributeDecl],
        root: str | None = None,
    ):
        self.elements = elements
        self.attributes = attributes
        self.root = root

    def element(self, tag: str) -> ElementDecl | None:
        return self.elements.get(tag)

    def declares(self, tag: str) -> bool:
        return tag in self.elements

    def is_repeatable_child(self, parent_tag: str, child_tag: str) -> bool | None:
        """Whether ``child_tag`` may repeat under ``parent_tag``.

        Returns ``None`` when the DTD says nothing about the pair, so the
        caller can fall back to data-driven inference.
        """
        decl = self.elements.get(parent_tag)
        if decl is None or decl.is_any:
            return None
        spec = decl.children.get(child_tag)
        if spec is None:
            return None
        return spec.repeatable

    def star_node_tags(self) -> set[str]:
        """Tags that are repeatable under at least one declared parent."""
        tags: set[str] = set()
        for decl in self.elements.values():
            for spec in decl.children.values():
                if spec.repeatable:
                    tags.add(spec.tag)
        return tags

    def id_attributes(self, element_tag: str) -> list[str]:
        """Names of attributes declared with type ``ID`` for an element."""
        return [attr.name for attr in self.attributes if attr.element == element_tag and attr.is_id]

    def __repr__(self) -> str:
        return f"<DTD elements={len(self.elements)} attlists={len(self.attributes)}>"


def parse_dtd(dtd_text: str, root: str | None = None) -> DTD:
    """Parse the internal subset text of a DOCTYPE declaration.

    >>> dtd = parse_dtd('''
    ...   <!ELEMENT retailer (name, product, store*)>
    ...   <!ELEMENT store (name, state, city, merchandises)>
    ...   <!ELEMENT name (#PCDATA)>
    ... ''')
    >>> dtd.is_repeatable_child("retailer", "store")
    True
    >>> dtd.is_repeatable_child("retailer", "name")
    False
    """
    if dtd_text is None:
        raise DTDParseError("parse_dtd() requires DTD text, got None")
    elements: dict[str, ElementDecl] = {}
    for match in _ELEMENT_RE.finditer(dtd_text):
        tag, model = match.group(1), " ".join(match.group(2).split())
        elements[tag] = _parse_content_model(tag, model)
    attributes: list[AttributeDecl] = []
    for match in _ATTLIST_RE.finditer(dtd_text):
        element_tag, body = match.group(1), match.group(2)
        for attr_match in _ATTDEF_RE.finditer(body):
            attributes.append(
                AttributeDecl(
                    element=element_tag,
                    name=attr_match.group(1),
                    attr_type=attr_match.group(2).strip(),
                    default=attr_match.group(3).strip(),
                )
            )
    return DTD(elements, attributes, root=root)


def _parse_content_model(tag: str, model: str) -> ElementDecl:
    decl = ElementDecl(tag=tag, content_model=model)
    stripped = model.strip()
    if stripped.upper() == "EMPTY":
        decl.is_empty = True
        return decl
    if stripped.upper() == "ANY":
        decl.is_any = True
        return decl
    if "#PCDATA" in stripped:
        decl.has_text = True
    _collect_children(stripped, decl, group_repeats=False, group_optional=False)
    return decl


def _collect_children(
    model: str, decl: ElementDecl, group_repeats: bool, group_optional: bool
) -> None:
    """Walk a content-model expression, recording per-child occurrence info.

    The grammar handled: names and parenthesised groups separated by ``,``
    or ``|``, each optionally suffixed by ``?``, ``*`` or ``+``.  A child is
    *repeatable* when its own suffix is ``*``/``+`` or when any enclosing
    group carries ``*``/``+``.
    """
    for particle, suffix in _split_particles(model):
        repeats = group_repeats or suffix in ("*", "+")
        optional = group_optional or suffix in ("?", "*")
        if particle.startswith("("):
            _collect_children(particle[1:-1], decl, repeats, optional)
            continue
        name = particle.strip()
        if not name or name == "#PCDATA":
            continue
        existing = decl.children.get(name)
        if existing is None:
            decl.children[name] = ChildSpec(tag=name, repeatable=repeats, optional=optional)
        else:
            existing.repeatable = existing.repeatable or repeats
            existing.optional = existing.optional or optional


def _split_particles(model: str) -> list[tuple[str, str]]:
    """Split a content model into top-level particles with their suffixes."""
    particles: list[tuple[str, str]] = []
    depth = 0
    current: list[str] = []
    tokens = list(model)
    index = 0
    while index < len(tokens):
        char = tokens[index]
        if char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise DTDParseError(f"unbalanced parentheses in content model {model!r}")
            current.append(char)
        elif char in ",|" and depth == 0:
            particles.append(_finish_particle(current))
            current = []
        else:
            current.append(char)
        index += 1
    if depth != 0:
        raise DTDParseError(f"unbalanced parentheses in content model {model!r}")
    if current:
        particles.append(_finish_particle(current))
    return [(body, suffix) for body, suffix in particles if body]


def _finish_particle(chars: list[str]) -> tuple[str, str]:
    text = "".join(chars).strip()
    suffix = ""
    if text and text[-1] in "?*+":
        suffix = text[-1]
        text = text[:-1].strip()
    return text, suffix


def dtd_for_tree_text(dtd_text: str | None, root: str | None = None) -> DTD | None:
    """Convenience wrapper: parse DTD text if present, else return ``None``."""
    if not dtd_text:
        return None
    return parse_dtd(dtd_text, root=root)
