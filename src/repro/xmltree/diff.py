"""Diffing two versions of a document tree (incremental-update support).

:func:`diff_trees` compares an indexed document against an edited version
of it and classifies the difference:

* **empty** — the trees are identical; an update is a no-op,
* **text-only** — the same nodes in the same shape, with the same tags and
  attributes, but some nodes carry different (non-empty) text values.
  These edits can be applied to an existing :class:`~repro.index.builder.
  DocumentIndex` as posting-level deltas (see
  :mod:`repro.index.incremental`),
* **structural** — anything else: nodes added or removed, tags renamed,
  attributes changed, or text appearing/disappearing entirely.  Structural
  changes can move schema classification (entity / attribute / connection)
  and therefore force a full re-index.

Text *presence* flips (``None`` ↔ a value) are deliberately classified as
structural: the attribute rule of §2.1 keys on whether instances carry
text, so such an edit can reclassify a schema node.

The walk compares the two pre-order node sequences positionally.  Because
Dewey labels are assigned purely by position, two trees of equal size with
the same shape visit the same labels in the same order; any divergence in
label, tag or attributes is reported as the structural reason and the walk
stops early.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.xmltree.dewey import Dewey
from repro.xmltree.tree import XMLTree


@dataclass(frozen=True)
class TextEdit:
    """One node whose text value changed between two document versions."""

    label: Dewey
    tag: str
    tag_path: tuple[str, ...]
    old_text: str
    new_text: str

    def __repr__(self) -> str:
        return f"<TextEdit {self.label} {self.old_text!r} -> {self.new_text!r}>"


@dataclass(frozen=True)
class TreeDiff:
    """The difference between an old and a new version of one document."""

    text_edits: tuple[TextEdit, ...] = ()
    #: human-readable reason when the change is structural, else ``None``
    structural_reason: str | None = None

    @property
    def is_empty(self) -> bool:
        return not self.text_edits and self.structural_reason is None

    @property
    def is_text_only(self) -> bool:
        """True when the change can be applied as posting-level deltas."""
        return self.structural_reason is None and bool(self.text_edits)

    @property
    def is_structural(self) -> bool:
        return self.structural_reason is not None

    def changed_labels(self) -> Iterator[Dewey]:
        return (edit.label for edit in self.text_edits)

    def __repr__(self) -> str:
        if self.is_structural:
            return f"<TreeDiff structural: {self.structural_reason}>"
        return f"<TreeDiff text_edits={len(self.text_edits)}>"


def _structural(reason: str) -> TreeDiff:
    return TreeDiff(text_edits=(), structural_reason=reason)


def diff_trees(old: XMLTree, new: XMLTree) -> TreeDiff:
    """Classify the difference between two versions of one document.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> old = tree_from_dict("shop", {"name": "Levis", "city": "Austin"})
    >>> new = tree_from_dict("shop", {"name": "Levis", "city": "Houston"})
    >>> diff = diff_trees(old, new)
    >>> diff.is_text_only, len(diff.text_edits)
    (True, 1)
    >>> diff.text_edits[0].new_text
    'Houston'
    """
    if old.size_nodes != new.size_nodes:
        return _structural(
            f"node count changed from {old.size_nodes} to {new.size_nodes}"
        )
    edits: list[TextEdit] = []
    for old_node, new_node in zip(old.iter_nodes(), new.iter_nodes()):
        if old_node.dewey != new_node.dewey:
            return _structural(
                f"tree shape changed near {old_node.dewey} / {new_node.dewey}"
            )
        if old_node.tag != new_node.tag:
            return _structural(
                f"tag at {old_node.dewey} changed from "
                f"{old_node.tag!r} to {new_node.tag!r}"
            )
        if old_node.raw_attributes != new_node.raw_attributes:
            return _structural(f"attributes at {old_node.dewey} changed")
        if old_node.text != new_node.text:
            # Presence follows has_text_value (truthiness): the parser
            # normalises empty text to None, but nodes built or edited
            # directly may carry "" — which the whole pipeline (schema
            # with_text, indexing, feature extraction) treats as absent.
            if bool(old_node.text) != bool(new_node.text):
                # A value appearing or disappearing can flip the §2.1
                # attribute classification of the whole schema node.
                return _structural(
                    f"text presence at {old_node.dewey} (<{old_node.tag}>) changed"
                )
            if not new_node.text:
                continue  # "" vs None: indistinguishable to the pipeline
            edits.append(
                TextEdit(
                    label=old_node.dewey,
                    tag=old_node.tag,
                    tag_path=old_node.tag_path,
                    old_text=old_node.text or "",
                    new_text=new_node.text or "",
                )
            )
    return TreeDiff(text_edits=tuple(edits))


def clone_tree(tree: XMLTree, name: str | None = None) -> XMLTree:
    """A deep copy of ``tree`` keeping (or overriding) its logical name.

    :meth:`XMLTree.copy` tags copies as projections; update flows (journal
    replay, tests building edited variants) need a faithful clone that
    still carries the original document identity, because cache keys and
    registry names derive from it.
    """
    copy = tree.copy()
    copy.name = name if name is not None else tree.name
    return copy
