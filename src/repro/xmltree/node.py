"""The XML node model used throughout eXtract.

The paper's data model (Figure 1) is element-only: every piece of
information is an element, and leaf elements carry a text value (e.g.
``<city>Houston</city>``).  Real XML additionally has attributes
(``<store id="3">``); the parser and builder normalise those into child
elements so that the classification rules of §2.1 (entity / attribute /
connection node) apply uniformly.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.xmltree.dewey import Dewey


class XMLNode:
    """A single element node of an :class:`~repro.xmltree.tree.XMLTree`.

    Attributes
    ----------
    tag:
        The element name (``store``, ``city``, ...).
    text:
        The concatenated, stripped text content directly under this
        element, or ``None`` when the element has no own text.
    dewey:
        The node's Dewey label; assigned by the tree when the node is
        attached and stable afterwards.
    parent:
        The parent node, or ``None`` for the root.
    children:
        Child nodes in document order.
    pre / post / level:
        The XPath-accelerator node ids (pre-order rank, post-order rank,
        depth), assigned alongside the Dewey labels when the owning tree
        reindexes; ``ancestor(a, b) ⟺ pre(a) <= pre(b) and post(b) <=
        post(a)``.  They are ``0`` on detached nodes and only meaningful
        once the node belongs to an :class:`~repro.xmltree.tree.XMLTree`.
    """

    __slots__ = (
        "tag",
        "text",
        "dewey",
        "parent",
        "children",
        "pre",
        "post",
        "level",
        "_attributes",
    )

    def __init__(self, tag: str, text: str | None = None):
        if not tag or not isinstance(tag, str):
            raise ValueError(f"element tag must be a non-empty string, got {tag!r}")
        self.tag = tag
        self.text = text if text else None
        self.dewey: Dewey = Dewey.root()
        self.parent: XMLNode | None = None
        self.children: list[XMLNode] = []
        self.pre = 0
        self.post = 0
        self.level = 0
        self._attributes: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child and assign its Dewey label.

        Returns the child to allow fluent construction.
        """
        if child.parent is not None:
            raise ValueError(
                f"node <{child.tag}> is already attached (to <{child.parent.tag}>)"
            )
        child.parent = self
        child.dewey = self.dewey.child(len(self.children))
        self.children.append(child)
        child._relabel_subtree()
        return child

    def _relabel_subtree(self) -> None:
        """Recompute Dewey labels of all descendants after (re)attachment."""
        for ordinal, child in enumerate(self.children):
            child.dewey = self.dewey.child(ordinal)
            child.parent = self
            child._relabel_subtree()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        return self.dewey.depth

    @property
    def raw_attributes(self) -> dict[str, str]:
        """XML attributes found on the original element (before conversion)."""
        return self._attributes

    # ------------------------------------------------------------------ #
    # traversal helpers
    # ------------------------------------------------------------------ #
    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document (pre-)order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield strict descendants in document order."""
        iterator = self.iter_subtree()
        next(iterator)  # skip self
        yield from iterator

    def iter_ancestors(self, include_self: bool = False) -> Iterator["XMLNode"]:
        """Yield ancestors from the parent up to the root."""
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_children(self, tag: str) -> list["XMLNode"]:
        """All direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def find_child(self, tag: str) -> "XMLNode | None":
        """The first direct child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_descendants(self, tag: str) -> list["XMLNode"]:
        """All descendants (excluding self) with the given tag, in order."""
        return [node for node in self.iter_descendants() if node.tag == tag]

    # ------------------------------------------------------------------ #
    # content helpers
    # ------------------------------------------------------------------ #
    @property
    def tag_path(self) -> tuple[str, ...]:
        """The tag names from the root down to this node.

        Tag paths identify *node types*: two ``<city>`` elements under
        ``/retailer/store`` have the same tag path and therefore belong to
        the same schema node, which is what the entity/attribute
        classification and the feature types of §2.3 are defined over.
        """
        tags = [node.tag for node in self.iter_ancestors(include_self=True)]
        return tuple(reversed(tags))

    @property
    def has_text_value(self) -> bool:
        """True when the node carries its own (non-empty) text."""
        return bool(self.text)

    def full_text(self) -> str:
        """All text in the subtree, concatenated in document order."""
        pieces = [node.text for node in self.iter_subtree() if node.text]
        return " ".join(pieces)

    def subtree_size_nodes(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.iter_subtree())

    def subtree_size_edges(self) -> int:
        """Number of edges in the subtree rooted here.

        The paper measures snippet size as "the number of edges in the
        tree" (§4), so this is the quantity the size bound constrains.
        """
        return self.subtree_size_nodes() - 1

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        value = f" {self.text!r}" if self.text else ""
        return f"<XMLNode {self.tag}@{self.dewey}{value}>"

    def __iter__(self) -> Iterator["XMLNode"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)
