"""Schema summary inferred from XML data.

eXtract classifies nodes using "DTD or XML data structure" (§2.1).  When no
DTD is available, the structure of the data itself tells us which elements
are ``*``-nodes: a *schema node* (identified by its root-to-node tag path)
is a ``*``-node if **some** instance of its parent schema node has two or
more children of that tag — i.e. the element demonstrably repeats.

The schema summary also records, per schema node:

* how many instances exist,
* whether instances carry their own text and whether they have element
  children (needed for the attribute-node rule),
* the set of distinct text values and per-value occurrence counts (needed
  by key mining and by the dominant-feature statistics).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.utils.text import normalize_value
from repro.xmltree.dtd import DTD
from repro.xmltree.tree import XMLTree

TagPath = tuple[str, ...]


@dataclass
class SchemaNode:
    """Aggregate information about all instances sharing one tag path."""

    tag_path: TagPath
    tag: str
    instance_count: int = 0
    #: max number of same-tag siblings observed under a single parent instance
    max_siblings_per_parent: int = 0
    with_text: int = 0
    with_element_children: int = 0
    child_paths: set[TagPath] = field(default_factory=set)
    value_counts: Counter[str] = field(default_factory=Counter)

    @property
    def parent_path(self) -> TagPath | None:
        if len(self.tag_path) <= 1:
            return None
        return self.tag_path[:-1]

    @property
    def repeats_in_data(self) -> bool:
        """True when some parent instance holds >= 2 children of this tag."""
        return self.max_siblings_per_parent >= 2

    @property
    def always_leaf_with_text(self) -> bool:
        """True when every instance is a text leaf (no element children)."""
        return self.with_element_children == 0 and self.with_text == self.instance_count > 0

    @property
    def distinct_values(self) -> int:
        return len(self.value_counts)

    def __repr__(self) -> str:
        return (
            f"<SchemaNode {'/'.join(self.tag_path)} instances={self.instance_count} "
            f"max_siblings={self.max_siblings_per_parent}>"
        )


class SchemaSummary:
    """The inferred schema of one document (or a corpus of documents)."""

    def __init__(self, dtd: DTD | None = None):
        self.nodes: dict[TagPath, SchemaNode] = {}
        self.dtd = dtd

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_tree(self, tree: XMLTree) -> None:
        """Fold one document into the summary (may be called repeatedly)."""
        for node in tree.iter_nodes():
            path = node.tag_path
            entry = self.nodes.get(path)
            if entry is None:
                entry = SchemaNode(tag_path=path, tag=node.tag)
                self.nodes[path] = entry
            entry.instance_count += 1
            if node.has_text_value:
                entry.with_text += 1
                entry.value_counts[normalize_value(node.text or "")] += 1
            if node.children:
                entry.with_element_children += 1
            for child in node.children:
                entry.child_paths.add(child.tag_path)
            # count same-tag siblings: done from the parent's perspective so
            # every parent instance contributes its own sibling counts
            sibling_counts = Counter(child.tag for child in node.children)
            for child_tag, count in sibling_counts.items():
                child_path = path + (child_tag,)
                child_entry = self.nodes.get(child_path)
                if child_entry is None:
                    child_entry = SchemaNode(tag_path=child_path, tag=child_tag)
                    self.nodes[child_path] = child_entry
                if count > child_entry.max_siblings_per_parent:
                    child_entry.max_siblings_per_parent = count

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def node_for(self, tag_path: TagPath) -> SchemaNode:
        try:
            return self.nodes[tag_path]
        except KeyError as exc:
            raise SchemaError(f"unknown schema node {'/'.join(tag_path)}") from exc

    def has_path(self, tag_path: TagPath) -> bool:
        return tag_path in self.nodes

    def is_star_node(self, tag_path: TagPath) -> bool:
        """Is the schema node a ``*``-node (and hence an entity candidate)?

        The DTD answer, when the DTD declares the parent/child pair, takes
        precedence; otherwise we fall back to what the data shows.  The
        document root is never a ``*``-node (it cannot repeat).
        """
        if len(tag_path) <= 1:
            return False
        entry = self.nodes.get(tag_path)
        if self.dtd is not None:
            from_dtd = self.dtd.is_repeatable_child(tag_path[-2], tag_path[-1])
            if from_dtd is not None:
                return from_dtd
        if entry is None:
            raise SchemaError(f"unknown schema node {'/'.join(tag_path)}")
        return entry.repeats_in_data

    def star_node_paths(self) -> list[TagPath]:
        """All ``*``-node tag paths, shortest first."""
        paths = [path for path in self.nodes if self.is_star_node(path)]
        return sorted(paths, key=lambda path: (len(path), path))

    def tags_of_star_nodes(self) -> set[str]:
        return {path[-1] for path in self.star_node_paths()}

    def paths_with_tag(self, tag: str) -> list[TagPath]:
        """All schema paths ending in ``tag``."""
        return sorted(path for path in self.nodes if path[-1] == tag)

    def child_paths_of(self, tag_path: TagPath) -> list[TagPath]:
        entry = self.nodes.get(tag_path)
        if entry is None:
            return []
        return sorted(entry.child_paths)

    def total_instances(self) -> int:
        return sum(entry.instance_count for entry in self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<SchemaSummary paths={len(self.nodes)} dtd={'yes' if self.dtd else 'no'}>"


def infer_schema(tree: XMLTree, dtd: DTD | None = None) -> SchemaSummary:
    """Infer the schema summary of a single document.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> tree = tree_from_dict("retailer", {
    ...     "name": "Brook Brothers",
    ...     "store": [{"city": "Houston"}, {"city": "Austin"}],
    ... })
    >>> schema = infer_schema(tree)
    >>> schema.is_star_node(("retailer", "store"))
    True
    >>> schema.is_star_node(("retailer", "name"))
    False
    """
    summary = SchemaSummary(dtd=dtd)
    summary.add_tree(tree)
    return summary


def infer_schema_from_trees(trees: list[XMLTree], dtd: DTD | None = None) -> SchemaSummary:
    """Infer a schema summary over a corpus of documents."""
    summary = SchemaSummary(dtd=dtd)
    for tree in trees:
        summary.add_tree(tree)
    return summary
