"""Pre/post-order structure acceleration (the XPath-accelerator encoding).

Dewey labels answer ancestor/descendant questions by prefix comparison,
which costs O(depth) tuple slicing per test.  The SLCA/ELCA algorithms and
the snippet assembly run millions of such tests on larger documents, so the
v4 snapshot format persists — and :class:`~repro.xmltree.tree.XMLTree`
assigns at parse time — the classic *pre/post/level* node encoding
(Grust's XPath accelerator):

* ``pre``   — position in a pre-order (document-order) traversal,
* ``post``  — position in a post-order traversal,
* ``level`` — depth below the root.

With those ids an ancestor-or-self test collapses to two integer
comparisons::

    a  ancestor-or-self of  b   ⟺   pre(a) <= pre(b)  and  post(b) <= post(a)

:class:`NodeOrder` is the lookup table from Dewey label to the ``(pre,
post)`` span of the node carrying it.  It is keyed by label — not attached
to :class:`~repro.xmltree.dewey.Dewey` objects — because search code
freely *derives* labels (``label.prefix(d)``, ``common_ancestor``) and the
derived objects compare/hash equal to the registered ones.

The module-level :func:`is_ancestor_or_self` / :func:`is_ancestor` helpers
are the single seam the search and snippet layers go through: when both
labels are known to the order table the test is O(1); otherwise (labels
from a foreign tree, synthetic labels in unit tests, or no order supplied)
they fall back to the Dewey prefix walk.  Keeping the fallback inside one
helper is what lets a test monkeypatch ``Dewey.is_ancestor_or_self`` and
prove the prefix walk is off the hot path.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.xmltree.dewey import Dewey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.xmltree.tree import XMLTree


class NodeOrder:
    """Dewey label → ``(pre, post)`` span table for one document tree."""

    __slots__ = ("_spans",)

    def __init__(self, spans: dict[Dewey, tuple[int, int]]):
        self._spans = spans

    @classmethod
    def from_tree(cls, tree: "XMLTree") -> "NodeOrder":
        """Snapshot the pre/post ids the tree assigned during reindexing."""
        return cls({node.dewey: (node.pre, node.post) for node in tree.iter_nodes()})

    def span(self, label: Dewey) -> tuple[int, int] | None:
        """The ``(pre, post)`` span of ``label``, or ``None`` if unknown."""
        return self._spans.get(label)

    def __contains__(self, label: Dewey) -> bool:
        return label in self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeOrder nodes={len(self._spans)}>"


def is_ancestor_or_self(
    ancestor: Dewey, label: Dewey, order: NodeOrder | None = None
) -> bool:
    """``ancestor`` is an ancestor of — or equal to — ``label``.

    O(1) span comparison when both labels are in ``order``; Dewey prefix
    walk otherwise.
    """
    if order is not None:
        a = order.span(ancestor)
        b = order.span(label)
        if a is not None and b is not None:
            return a[0] <= b[0] and b[1] <= a[1]
    return ancestor.is_ancestor_or_self(label)


def is_ancestor(ancestor: Dewey, label: Dewey, order: NodeOrder | None = None) -> bool:
    """``ancestor`` is a *strict* ancestor of ``label``."""
    if order is not None:
        a = order.span(ancestor)
        b = order.span(label)
        if a is not None and b is not None:
            # Spans of distinct nodes are properly nested, never equal.
            return a[0] < b[0] and b[1] < a[1]
    return ancestor.is_ancestor_of(label)


def remove_descendants(
    labels: Iterable[Dewey], order: NodeOrder | None = None
) -> list[Dewey]:
    """Keep only labels that have no ancestor in the collection.

    Order-aware counterpart of :func:`repro.xmltree.dewey.remove_descendants`.
    """
    ordered = sorted(set(labels))
    kept: list[Dewey] = []
    for label in ordered:
        if kept and is_ancestor_or_self(kept[-1], label, order):
            continue
        kept.append(label)
    return kept


def remove_ancestors(
    labels: Iterable[Dewey], order: NodeOrder | None = None
) -> list[Dewey]:
    """Keep only labels that have no descendant in the collection.

    Order-aware counterpart of :func:`repro.xmltree.dewey.remove_ancestors`.
    """
    ordered = sorted(set(labels))
    kept: list[Dewey] = []
    for label in ordered:
        while kept and kept[-1] != label and is_ancestor_or_self(kept[-1], label, order):
            kept.pop()
        kept.append(label)
    return kept
