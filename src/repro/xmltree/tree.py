"""The XML document tree.

:class:`XMLTree` owns a root :class:`~repro.xmltree.node.XMLNode` and keeps
a Dewey → node registry so that search results (which are sets of Dewey
labels) can be materialised into node instances in O(1) per label.  It also
provides subtree extraction, which is how query result trees and snippet
trees are cut out of the document.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ExtractError
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.order import NodeOrder


class XMLTree:
    """An ordered, labelled XML document tree.

    >>> from repro.xmltree.builder import TreeBuilder
    >>> builder = TreeBuilder("retailer")
    >>> _ = builder.add_value("name", "Brook Brothers")
    >>> tree = builder.build()
    >>> tree.root.tag
    'retailer'
    >>> tree.size_nodes
    3
    """

    def __init__(self, root: XMLNode, name: str = "document"):
        if root.parent is not None:
            raise ExtractError("the root of an XMLTree must not have a parent")
        self.name = name
        self.root = root
        self._registry: dict[Dewey, XMLNode] = {}
        self._order: NodeOrder | None = None
        self._reindex()

    # ------------------------------------------------------------------ #
    # registry maintenance
    # ------------------------------------------------------------------ #
    def _reindex(self) -> None:
        """Rebuild Dewey labels, pre/post/level ids and the registry.

        One iterative depth-first pass: a node gets its ``pre`` id and
        registry entry on the way down and its ``post`` id on the way back
        up (the two-entry stack trick — each node is pushed a second time
        as an "exit" marker).  This replaces the recursive
        ``_relabel_subtree`` walk, so reindexing is a single O(n) traversal
        regardless of document depth.
        """
        root = self.root
        root.dewey = Dewey.root()
        root.parent = None
        registry: dict[Dewey, XMLNode] = {}
        pre = 0
        post = 0
        stack: list[tuple[XMLNode, bool]] = [(root, False)]
        while stack:
            node, exiting = stack.pop()
            if exiting:
                node.post = post
                post += 1
                continue
            node.pre = pre
            pre += 1
            node.level = node.dewey.depth
            registry[node.dewey] = node
            stack.append((node, True))
            for ordinal in range(len(node.children) - 1, -1, -1):
                child = node.children[ordinal]
                child.parent = node
                child.dewey = node.dewey.child(ordinal)
                stack.append((child, False))
        self._registry = registry
        self._order = None

    def refresh(self) -> None:
        """Public hook to re-label and re-register after manual edits."""
        self._reindex()

    @property
    def order(self) -> NodeOrder:
        """The pre/post span table for O(1) ancestor/descendant tests.

        Built lazily from the ids assigned in :meth:`_reindex` and
        invalidated whenever the tree reindexes.
        """
        if self._order is None:
            self._order = NodeOrder.from_tree(self)
        return self._order

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def node(self, dewey: Dewey) -> XMLNode:
        """Return the node with the given Dewey label.

        Raises :class:`ExtractError` when the label does not exist in this
        tree — a symptom of mixing labels from different documents.
        """
        try:
            return self._registry[dewey]
        except KeyError as exc:
            raise ExtractError(f"no node with Dewey label {dewey} in tree {self.name!r}") from exc

    def has_node(self, dewey: Dewey) -> bool:
        return dewey in self._registry

    def nodes(self, labels: Iterable[Dewey]) -> list[XMLNode]:
        """Materialise many labels at once (order preserved)."""
        return [self.node(label) for label in labels]

    def find_by_tag(self, tag: str) -> list[XMLNode]:
        """All nodes with the given tag, in document order."""
        return [node for node in self.iter_nodes() if node.tag == tag]

    def find_by_tag_path(self, tag_path: tuple[str, ...]) -> list[XMLNode]:
        """All nodes whose root-to-node tag path equals ``tag_path``."""
        return [node for node in self.iter_nodes() if node.tag_path == tag_path]

    # ------------------------------------------------------------------ #
    # traversal and size
    # ------------------------------------------------------------------ #
    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order."""
        return self.root.iter_subtree()

    def iter_leaves(self) -> Iterator[XMLNode]:
        """All leaf nodes in document order."""
        return (node for node in self.iter_nodes() if node.is_leaf)

    @property
    def size_nodes(self) -> int:
        """Number of nodes in the document."""
        return len(self._registry)

    @property
    def size_edges(self) -> int:
        """Number of edges in the document."""
        return max(0, len(self._registry) - 1)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node (root has depth 0)."""
        return max(node.depth for node in self.iter_nodes())

    # ------------------------------------------------------------------ #
    # subtree extraction
    # ------------------------------------------------------------------ #
    def extract_subtree(self, root_label: Dewey) -> "XMLTree":
        """Deep-copy the subtree rooted at ``root_label`` into a new tree.

        The copy gets fresh Dewey labels rooted at the copied node; the
        original labels are preserved on each copied node through the
        ``source`` mapping available via :meth:`extract_projection`.
        """
        tree, _ = self.extract_projection([root_label])
        return tree

    def extract_projection(
        self, labels: Iterable[Dewey]
    ) -> tuple["XMLTree", dict[Dewey, Dewey]]:
        """Build the minimal connected subtree containing ``labels``.

        The projection is the classic "result tree" construction: take the
        lowest common ancestor of all requested labels as the new root and
        keep exactly the nodes lying on a path from that root to a
        requested label, *plus* the full subtrees of the requested labels
        themselves.

        Returns the new tree and a mapping from new Dewey labels to the
        original labels, so callers (e.g. the snippet renderer linking back
        to the full result) can trace provenance.
        """
        wanted = sorted(set(labels))
        if not wanted:
            raise ExtractError("extract_projection() requires at least one label")
        for label in wanted:
            if label not in self._registry:
                raise ExtractError(f"label {label} not present in tree {self.name!r}")

        anchor = Dewey.common_ancestor_of_all(wanted)
        keep: set[Dewey] = set()
        for label in wanted:
            # path from anchor to the label
            for depth in range(anchor.depth, label.depth + 1):
                keep.add(label.prefix(depth))
            # full subtree below the label
            for node in self._registry[label].iter_subtree():
                keep.add(node.dewey)
        keep.add(anchor)

        mapping: dict[Dewey, Dewey] = {}
        new_root = self._copy_projection(self._registry[anchor], keep, mapping)
        tree = XMLTree(new_root, name=f"{self.name}:projection")
        # _copy_projection recorded original labels keyed by id(node); remap
        # now that the new tree has assigned final Dewey labels.
        final_mapping = {node.dewey: mapping[id(node)] for node in tree.iter_nodes()}
        return tree, final_mapping

    def _copy_projection(
        self, node: XMLNode, keep: set[Dewey], mapping: dict[int, Dewey]
    ) -> XMLNode:
        copy = XMLNode(node.tag, node.text)
        copy.raw_attributes.update(node.raw_attributes)
        mapping[id(copy)] = node.dewey
        for child in node.children:
            if child.dewey in keep:
                copy.append_child(self._copy_projection(child, keep, mapping))
        return copy

    def copy(self) -> "XMLTree":
        """A deep copy of the whole document."""
        return self.extract_subtree(Dewey.root())

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, dewey: Dewey) -> bool:
        return dewey in self._registry

    def __len__(self) -> int:
        return self.size_nodes

    def __repr__(self) -> str:
        return f"<XMLTree {self.name!r} root={self.root.tag} nodes={self.size_nodes}>"
