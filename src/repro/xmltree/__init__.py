"""XML substrate: tree model with Dewey labels, parser, DTD, schema summary.

This package implements everything eXtract needs from an XML store:

* :mod:`repro.xmltree.dewey` — Dewey (prefix) labels used by the keyword
  indexes and by the SLCA/ELCA search algorithms,
* :mod:`repro.xmltree.node` / :mod:`repro.xmltree.tree` — an in-memory
  ordered tree model,
* :mod:`repro.xmltree.builder` — programmatic construction of documents
  (used by the synthetic dataset generators),
* :mod:`repro.xmltree.parser` — a self-contained XML parser (no external
  dependencies) that also captures an internal DTD subset when present,
* :mod:`repro.xmltree.dtd` — DTD content-model parsing used to detect
  ``*``-nodes, the paper's criterion for entity nodes,
* :mod:`repro.xmltree.schema` — a schema summary inferred from the data
  itself when no DTD is available (the "XML data structure" alternative the
  paper mentions in §2.1),
* :mod:`repro.xmltree.serialize` — serialisation back to XML text,
* :mod:`repro.xmltree.stats` — document statistics used by the evaluation
  harness.
"""

from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.order import NodeOrder
from repro.xmltree.tree import XMLTree
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.serialize import to_xml_string, to_plain_dict
from repro.xmltree.dtd import DTD, parse_dtd
from repro.xmltree.schema import SchemaSummary, infer_schema
from repro.xmltree.stats import DocumentStats, compute_stats

__all__ = [
    "Dewey",
    "NodeOrder",
    "XMLNode",
    "XMLTree",
    "TreeBuilder",
    "parse_xml",
    "parse_xml_file",
    "to_xml_string",
    "to_plain_dict",
    "DTD",
    "parse_dtd",
    "SchemaSummary",
    "infer_schema",
    "DocumentStats",
    "compute_stats",
]
