"""Fluent programmatic construction of XML trees.

The synthetic dataset generators and many tests build documents directly
instead of going through XML text.  :class:`TreeBuilder` offers a small
stack-based API::

    builder = TreeBuilder("retailer")
    builder.add_value("name", "Brook Brothers")
    with builder.element("store"):
        builder.add_value("city", "Houston")
    tree = builder.build()

Nested Python dictionaries/lists can also be converted with
:func:`tree_from_dict`, which the dataset generators use heavily.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.errors import ExtractError
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class TreeBuilder:
    """Builds an :class:`XMLTree` top-down with an explicit element stack."""

    def __init__(self, root_tag: str, name: str = "document"):
        self._root = XMLNode(root_tag)
        self._stack: list[XMLNode] = [self._root]
        self._name = name
        self._built = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> XMLNode:
        """The element new children are currently appended to."""
        return self._stack[-1]

    def open(self, tag: str, text: str | None = None) -> XMLNode:
        """Open a new child element and descend into it."""
        self._ensure_not_built()
        node = XMLNode(tag, text)
        self.current.append_child(node)
        self._stack.append(node)
        return node

    def close(self) -> None:
        """Close the current element, moving back to its parent."""
        self._ensure_not_built()
        if len(self._stack) == 1:
            raise ExtractError("cannot close the root element of a TreeBuilder")
        self._stack.pop()

    @contextmanager
    def element(self, tag: str, text: str | None = None) -> Iterator[XMLNode]:
        """Context manager form of :meth:`open`/:meth:`close`."""
        node = self.open(tag, text)
        try:
            yield node
        finally:
            self.close()

    def add_value(self, tag: str, value: object) -> XMLNode:
        """Add a leaf child carrying a text value (an "attribute" node)."""
        self._ensure_not_built()
        node = XMLNode(tag, str(value))
        self.current.append_child(node)
        return node

    def add_empty(self, tag: str) -> XMLNode:
        """Add a leaf child with no value (a structural marker element)."""
        self._ensure_not_built()
        node = XMLNode(tag)
        self.current.append_child(node)
        return node

    def add_subtree(self, subtree_root: XMLNode) -> XMLNode:
        """Graft an already-built node (and its subtree) under the cursor."""
        self._ensure_not_built()
        self.current.append_child(subtree_root)
        return subtree_root

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def build(self) -> XMLTree:
        """Finalise and return the tree; the builder cannot be reused."""
        self._ensure_not_built()
        if len(self._stack) != 1:
            open_tags = " > ".join(node.tag for node in self._stack[1:])
            raise ExtractError(f"unclosed elements at build(): {open_tags}")
        self._built = True
        return XMLTree(self._root, name=self._name)

    def _ensure_not_built(self) -> None:
        if self._built:
            raise ExtractError("TreeBuilder already produced its tree; create a new builder")


def tree_from_dict(root_tag: str, content: object, name: str = "document") -> XMLTree:
    """Build a tree from nested Python data.

    Mapping values become child elements (a list value repeats the child
    element once per item — this is how ``*``-nodes are expressed); scalar
    values become leaf text.  Key order of the mapping is preserved, which
    matters for document order.

    >>> tree = tree_from_dict("retailer", {
    ...     "name": "Brook Brothers",
    ...     "store": [{"city": "Houston"}, {"city": "Austin"}],
    ... })
    >>> [node.tag for node in tree.root.children]
    ['name', 'store', 'store']
    """
    root = XMLNode(root_tag)
    _populate(root, content)
    return XMLTree(root, name=name)


def _populate(node: XMLNode, content: object) -> None:
    if isinstance(content, Mapping):
        for key, value in content.items():
            _add_entry(node, str(key), value)
    elif isinstance(content, (list, tuple)):
        raise ExtractError(
            f"a list cannot be the direct content of <{node.tag}>; "
            "lists are only valid as mapping values (repeated child elements)"
        )
    elif content is None:
        return
    else:
        node.text = str(content)


def _add_entry(parent: XMLNode, tag: str, value: object) -> None:
    if isinstance(value, (list, tuple)):
        for item in value:
            child = XMLNode(tag)
            parent.append_child(child)
            _populate(child, item)
    else:
        child = XMLNode(tag)
        parent.append_child(child)
        _populate(child, value)


def subtree_from_dict(tag: str, content: object) -> XMLNode:
    """Like :func:`tree_from_dict` but returns a detached node.

    Useful for grafting generated fragments via
    :meth:`TreeBuilder.add_subtree`.
    """
    node = XMLNode(tag)
    _populate(node, content)
    return node


def sequence_of_values(parent_tag: str, child_tag: str, values: Sequence[object]) -> XMLNode:
    """Build ``<parent><child>v1</child><child>v2</child>...</parent>``."""
    parent = XMLNode(parent_tag)
    for value in values:
        parent.append_child(XMLNode(child_tag, str(value)))
    return parent
