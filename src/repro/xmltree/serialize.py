"""Serialisation of :class:`~repro.xmltree.tree.XMLTree` back to text.

Round-tripping through :func:`to_xml_string` and
:func:`repro.xmltree.parser.parse_xml` is exercised by property-based tests
to make sure the parser and serialiser agree on the data model.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
}


def escape_text(text: str) -> str:
    """Escape characters that are markup-significant in element content."""
    for char, replacement in _ESCAPES.items():
        text = text.replace(char, replacement)
    return text


def to_xml_string(
    tree_or_node: XMLTree | XMLNode,
    indent: str = "  ",
    include_declaration: bool = True,
) -> str:
    """Serialise a tree (or a detached subtree) to pretty-printed XML.

    Leaf elements are rendered on one line (``<city>Houston</city>``);
    elements with children get one line per child, indented.
    """
    node = tree_or_node.root if isinstance(tree_or_node, XMLTree) else tree_or_node
    lines: list[str] = []
    if include_declaration:
        lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    _render(node, lines, indent, 0)
    return "\n".join(lines) + "\n"


def _render(node: XMLNode, lines: list[str], indent: str, level: int) -> None:
    pad = indent * level
    text = escape_text(node.text) if node.text else ""
    if not node.children:
        if text:
            lines.append(f"{pad}<{node.tag}>{text}</{node.tag}>")
        else:
            lines.append(f"{pad}<{node.tag}/>")
        return
    lines.append(f"{pad}<{node.tag}>")
    if text:
        lines.append(f"{pad}{indent}{text}")
    for child in node.children:
        _render(child, lines, indent, level + 1)
    lines.append(f"{pad}</{node.tag}>")


def to_plain_dict(tree_or_node: XMLTree | XMLNode) -> dict[str, object]:
    """Convert a tree to plain nested dictionaries (JSON-friendly).

    Each node becomes ``{"tag": ..., "text": ..., "children": [...]}``.
    The inverse of :func:`from_plain_dict`.
    """
    node = tree_or_node.root if isinstance(tree_or_node, XMLTree) else tree_or_node
    return {
        "tag": node.tag,
        "text": node.text,
        "children": [to_plain_dict(child) for child in node.children],
    }


def from_plain_dict(data: Mapping[str, object], name: str = "document") -> XMLTree:
    """Rebuild a tree from the output of :func:`to_plain_dict`."""
    root = _node_from_plain(data)
    return XMLTree(root, name=name)


def _node_from_plain(data: Mapping[str, object]) -> XMLNode:
    node = XMLNode(str(data["tag"]), data.get("text") if data.get("text") else None)
    for child in data.get("children", []):  # type: ignore[union-attr]
        node.append_child(_node_from_plain(child))  # type: ignore[arg-type]
    return node


def to_outline(tree_or_node: XMLTree | XMLNode, max_depth: int | None = None) -> str:
    """Render an indented tag outline for debugging and examples.

    >>> from repro.xmltree.builder import tree_from_dict
    >>> print(to_outline(tree_from_dict("a", {"b": "1"})))
    a
      b: 1
    """
    node = tree_or_node.root if isinstance(tree_or_node, XMLTree) else tree_or_node
    lines: list[str] = []
    _outline(node, lines, 0, max_depth)
    return "\n".join(lines)


def _outline(node: XMLNode, lines: list[str], level: int, max_depth: int | None) -> None:
    if max_depth is not None and level > max_depth:
        return
    suffix = f": {node.text}" if node.text else ""
    lines.append(f"{'  ' * level}{node.tag}{suffix}")
    for child in node.children:
        _outline(child, lines, level + 1, max_depth)
