"""The end-to-end eXtract system façade.

:class:`ExtractSystem` wires the whole Figure 4 architecture together:
load or accept an XML document, analyze and index it, evaluate keyword
queries and generate size-bounded snippets for every result.  It is the
API the examples and the web-page renderer use; the individual components
remain available for programmatic use.

Because the demo served repeated interactive queries, the system carries
an LRU **query-result cache**: outcomes are keyed on (document, normalised
query, algorithm, snippet bound, limit, construction) and re-served
without touching the index.  :meth:`invalidate_cache` drops everything,
and :class:`repro.corpus.Corpus` invalidates on re-registration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.postings import PostingList
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.results import ResultSet
from repro.search.xseek import ResultConstruction
from repro.snippet.generator import DEFAULT_SIZE_BOUND, SnippetBatch, SnippetGenerator
from repro.snippet.render import render_batch_text, render_result_page
from repro.utils.cache import DEFAULT_CACHE_SIZE, CacheStats, LRUCache
from repro.utils.timing import TimingBreakdown
from repro.xmltree.dtd import dtd_for_tree_text
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.stats import DocumentStats, compute_stats
from repro.xmltree.tree import XMLTree


@dataclass
class SearchOutcome:
    """Results and snippets of one query, plus phase timings."""

    results: ResultSet
    snippets: SnippetBatch
    timings: TimingBreakdown
    from_cache: bool = False

    def __len__(self) -> int:
        return len(self.results)

    def render_text(self, show_ilist: bool = False) -> str:
        return render_batch_text(self.snippets, show_ilist=show_ilist)

    def render_html(self) -> str:
        return render_result_page(self.snippets)


class ExtractSystem:
    """Load → index → search → snippet, in one object.

    >>> from repro.datasets.retail import figure5_document
    >>> system = ExtractSystem.from_tree(figure5_document())
    >>> outcome = system.query("store texas", size_bound=6)
    >>> len(outcome) >= 2
    True
    >>> all(g.snippet.size_edges <= 6 for g in outcome.snippets)
    True
    >>> system.query("store texas", size_bound=6).from_cache
    True
    """

    def __init__(
        self,
        index: DocumentIndex,
        algorithm: str = "slca",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.index = index
        self.engine = SearchEngine(index, algorithm=algorithm)
        self.generator = SnippetGenerator(index.analyzer, cache_size=cache_size)
        self.cache = LRUCache(cache_size)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(
        cls, tree: XMLTree, algorithm: str = "slca", cache_size: int = DEFAULT_CACHE_SIZE
    ) -> "ExtractSystem":
        """Build the system from an in-memory document."""
        return cls(IndexBuilder().build(tree), algorithm=algorithm, cache_size=cache_size)

    @classmethod
    def from_xml(
        cls,
        text: str,
        name: str = "document",
        algorithm: str = "slca",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "ExtractSystem":
        """Build the system from XML text (the DTD internal subset, if any,
        informs entity classification)."""
        parsed = parse_xml(text, name=name)
        dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
        return cls(
            IndexBuilder(dtd=dtd).build(parsed.tree), algorithm=algorithm, cache_size=cache_size
        )

    @classmethod
    def from_file(
        cls,
        path: str | os.PathLike[str],
        algorithm: str = "slca",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "ExtractSystem":
        """Build the system from an XML file on disk."""
        parsed = parse_xml_file(path)
        dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
        return cls(
            IndexBuilder(dtd=dtd).build(parsed.tree), algorithm=algorithm, cache_size=cache_size
        )

    @classmethod
    def from_saved(
        cls,
        directory: str | os.PathLike[str],
        algorithm: str = "slca",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "ExtractSystem":
        """Build the system from a persisted index snapshot (no re-indexing
        of external XML: the snapshot directory is authoritative)."""
        from repro.index.storage import load_index

        return cls(load_index(directory), algorithm=algorithm, cache_size=cache_size)

    # ------------------------------------------------------------------ #
    # the serving pipeline (thread-safe)
    # ------------------------------------------------------------------ #
    def run_query(
        self,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
        use_cache: bool = True,
        postings: dict[str, PostingList] | None = None,
    ) -> SearchOutcome:
        """Evaluate a keyword query and generate snippets for its results.

        This is the pipeline the :class:`repro.api.SnippetService` executes
        requests through.  It is **thread-safe**: every phase measures into
        a per-call :class:`TimingBreakdown`, the result construction mode is
        passed down explicitly (no engine attribute is mutated), and the
        result/snippet caches serialise access internally — so many threads
        may run queries over the same system concurrently and get results
        identical to serial execution.

        Outcomes are served from the LRU cache when an identical request
        (same normalised keywords, bound, limit, construction) was answered
        before; ``use_cache=False`` forces a cold evaluation and does not
        populate the cache.  ``postings`` optionally supplies pre-fetched
        posting lists per keyword (the batch executor shares lookups across
        queries this way).
        """
        parsed = query_text if isinstance(query_text, KeywordQuery) else KeywordQuery.parse(query_text)
        key = self._cache_key("query", parsed, size_bound, limit, construction)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached

        timings = TimingBreakdown()
        with timings.measure("search"):
            results = self.engine.search(
                parsed, limit=limit, postings=postings, construction=construction, timings=timings
            )
        with timings.measure("snippets"):
            snippets = self.generator.generate_all(results, size_bound=size_bound, timings=timings)
        outcome = SearchOutcome(results=results, snippets=snippets, timings=timings)
        if use_cache:
            # The cached copy carries an empty breakdown: a warm hit did no
            # phase work, and re-reporting the cold run's timings would
            # contradict the hit's near-zero wall clock in service metadata.
            self.cache.put(key, SearchOutcome(
                results=results, snippets=snippets, timings=TimingBreakdown(), from_cache=True
            ))
        return outcome

    def run_search(
        self,
        query_text: str | KeywordQuery,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
        use_cache: bool = True,
        postings: dict[str, PostingList] | None = None,
        timings: TimingBreakdown | None = None,
    ) -> ResultSet:
        """Evaluate a keyword query without snippet generation (thread-safe).

        Result sets are cached independently of full outcomes (no snippet
        bound in the key), so callers that only need result roots never pay
        for snippets.  Phase timings go into the caller-provided ``timings``
        breakdown (or a discarded per-call one), never into shared engine
        state — cache hits record no phases.
        """
        results, _ = self.run_search_with_provenance(
            query_text,
            limit=limit,
            construction=construction,
            use_cache=use_cache,
            postings=postings,
            timings=timings,
        )
        return results

    def run_search_with_provenance(
        self,
        query_text: str | KeywordQuery,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
        use_cache: bool = True,
        postings: dict[str, PostingList] | None = None,
        timings: TimingBreakdown | None = None,
    ) -> tuple[ResultSet, bool]:
        """:meth:`run_search` plus whether the result set came from the
        cache (the service reports this in response metadata; result sets,
        unlike :class:`SearchOutcome`, carry no provenance flag of their
        own)."""
        parsed = query_text if isinstance(query_text, KeywordQuery) else KeywordQuery.parse(query_text)
        key = self._cache_key("search", parsed, None, limit, construction)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached, True
        results = self.engine.search(
            parsed,
            limit=limit,
            postings=postings,
            construction=construction,
            timings=timings if timings is not None else TimingBreakdown(),
        )
        if use_cache:
            self.cache.put(key, results)
        return results, False

    # ------------------------------------------------------------------ #
    # deprecated shims (kept for callers of the pre-service API)
    # ------------------------------------------------------------------ #
    def query(
        self,
        query_text: str | KeywordQuery,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
        use_cache: bool = True,
        postings: dict[str, PostingList] | None = None,
    ) -> SearchOutcome:
        """Deprecated alias of :meth:`run_query`.

        Prefer :meth:`run_query`, or a :class:`repro.api.SearchRequest`
        executed through :class:`repro.api.SnippetService` for the typed,
        paginated protocol.  The shim delegates to the exact pipeline the
        service executes, so its outcomes are identical.
        """
        return self.run_query(
            query_text,
            size_bound=size_bound,
            limit=limit,
            construction=construction,
            use_cache=use_cache,
            postings=postings,
        )

    def search(
        self,
        query_text: str | KeywordQuery,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
        use_cache: bool = True,
        postings: dict[str, PostingList] | None = None,
    ) -> ResultSet:
        """Deprecated alias of :meth:`run_search` (see :meth:`query`)."""
        return self.run_search(
            query_text,
            limit=limit,
            construction=construction,
            use_cache=use_cache,
            postings=postings,
        )

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #
    def _cache_key(
        self,
        kind: str,
        parsed: KeywordQuery,
        size_bound: int | None,
        limit: int | None,
        construction: ResultConstruction,
    ) -> tuple:
        return (
            self.index.tree.name,
            kind,
            parsed.keywords,
            self.engine.algorithm,
            size_bound,
            limit,
            construction.value,
        )

    def invalidate_cache(self) -> int:
        """Drop every cached outcome, result set and snippet; returns the
        number of query-level entries removed."""
        self.generator.invalidate_cache()
        return self.cache.clear()

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters of the two serving caches."""
        return {"query": self.cache.stats, "snippet": self.generator.cache.stats}

    def document_stats(self) -> DocumentStats:
        """Statistics of the loaded document."""
        return compute_stats(self.index.tree)

    @property
    def analyzer(self):
        return self.index.analyzer

    def __repr__(self) -> str:
        return f"<ExtractSystem doc={self.index.tree.name!r} nodes={self.index.tree.size_nodes}>"
