"""The end-to-end eXtract system façade.

:class:`ExtractSystem` wires the whole Figure 4 architecture together:
load or accept an XML document, analyze and index it, evaluate keyword
queries and generate size-bounded snippets for every result.  It is the
API the examples and the web-page renderer use; the individual components
remain available for programmatic use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.index.builder import DocumentIndex, IndexBuilder
from repro.search.engine import SearchEngine
from repro.search.results import ResultSet
from repro.search.xseek import ResultConstruction
from repro.snippet.generator import DEFAULT_SIZE_BOUND, SnippetBatch, SnippetGenerator
from repro.snippet.render import render_batch_text, render_result_page
from repro.utils.timing import TimingBreakdown
from repro.xmltree.dtd import dtd_for_tree_text
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.stats import DocumentStats, compute_stats
from repro.xmltree.tree import XMLTree


@dataclass
class SearchOutcome:
    """Results and snippets of one query, plus phase timings."""

    results: ResultSet
    snippets: SnippetBatch
    timings: TimingBreakdown

    def __len__(self) -> int:
        return len(self.results)

    def render_text(self, show_ilist: bool = False) -> str:
        return render_batch_text(self.snippets, show_ilist=show_ilist)

    def render_html(self) -> str:
        return render_result_page(self.snippets)


class ExtractSystem:
    """Load → index → search → snippet, in one object.

    >>> from repro.datasets.retail import figure5_document
    >>> system = ExtractSystem.from_tree(figure5_document())
    >>> outcome = system.query("store texas", size_bound=6)
    >>> len(outcome) >= 2
    True
    >>> all(g.snippet.size_edges <= 6 for g in outcome.snippets)
    True
    """

    def __init__(self, index: DocumentIndex, algorithm: str = "slca"):
        self.index = index
        self.engine = SearchEngine(index, algorithm=algorithm)
        self.generator = SnippetGenerator(index.analyzer)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(cls, tree: XMLTree, algorithm: str = "slca") -> "ExtractSystem":
        """Build the system from an in-memory document."""
        return cls(IndexBuilder().build(tree), algorithm=algorithm)

    @classmethod
    def from_xml(cls, text: str, name: str = "document", algorithm: str = "slca") -> "ExtractSystem":
        """Build the system from XML text (the DTD internal subset, if any,
        informs entity classification)."""
        parsed = parse_xml(text, name=name)
        dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
        return cls(IndexBuilder(dtd=dtd).build(parsed.tree), algorithm=algorithm)

    @classmethod
    def from_file(cls, path: str | os.PathLike[str], algorithm: str = "slca") -> "ExtractSystem":
        """Build the system from an XML file on disk."""
        parsed = parse_xml_file(path)
        dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
        return cls(IndexBuilder(dtd=dtd).build(parsed.tree), algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def query(
        self,
        query_text: str,
        size_bound: int = DEFAULT_SIZE_BOUND,
        limit: int | None = None,
        construction: ResultConstruction = ResultConstruction.XSEEK,
    ) -> SearchOutcome:
        """Evaluate a keyword query and generate snippets for its results."""
        timings = TimingBreakdown()
        self.engine.construction = construction
        with timings.measure("search"):
            results = self.engine.search(query_text, limit=limit)
        with timings.measure("snippets"):
            snippets = self.generator.generate_all(results, size_bound=size_bound)
        timings.merge(self.engine.timings)
        timings.merge(self.generator.timings)
        return SearchOutcome(results=results, snippets=snippets, timings=timings)

    def document_stats(self) -> DocumentStats:
        """Statistics of the loaded document."""
        return compute_stats(self.index.tree)

    @property
    def analyzer(self):
        return self.index.analyzer

    def __repr__(self) -> str:
        return f"<ExtractSystem doc={self.index.tree.name!r} nodes={self.index.tree.size_nodes}>"
