"""eXtract — a snippet generation system for XML keyword search.

A complete Python reproduction of *"eXtract: A Snippet Generation System
for XML Search"* (Huang, Liu, Chen — VLDB 2008 demonstration), including
the XML substrate, the keyword-search engine the demo runs on top of, the
snippet-generation pipeline that is the paper's contribution, baselines,
datasets and the evaluation harness.

Quick start::

    from repro import ExtractSystem
    from repro.datasets import figure5_document

    system = ExtractSystem.from_tree(figure5_document())
    outcome = system.query("store texas", size_bound=6)
    print(outcome.render_text())

The most useful entry points:

* :class:`ExtractSystem` — end-to-end: document → index → search → snippets,
* :class:`repro.api.SnippetService` — the typed serving surface: versioned
  JSON requests/responses, pluggable (serial/threaded) executors,
  pagination (see :mod:`repro.api`),
* :class:`SnippetGenerator` — the paper's contribution in isolation
  (query + query result + size bound → snippet),
* :class:`SearchEngine` / :class:`IndexBuilder` — the search substrate,
* :mod:`repro.datasets` — synthetic documents, including the paper's
  running example,
* :mod:`repro.eval` — the experiment harness regenerating every
  figure/table documented in EXPERIMENTS.md.
"""

from repro.errors import (
    ClusterError,
    DatasetError,
    DeweyError,
    DTDParseError,
    EvaluationError,
    ExtractError,
    InvalidSizeBoundError,
    ProtocolError,
    QueryError,
    SchemaError,
    SearchError,
    SnippetError,
    StorageError,
    XMLParseError,
)
from repro.api import (
    BatchRequest,
    BatchResponse,
    ConcurrentExecutor,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SerialExecutor,
    SnippetPayload,
    SnippetService,
)
from repro.cluster import ClusterService, HashPartitioner, ShardExecutor, ShardServer
from repro.corpus import BatchQueryOutcome, BatchReport, Corpus, compact_corpus_dir
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.index.storage import load_index, save_index
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.results import QueryResult, ResultSet
from repro.snippet.distinct import DistinctSnippetGenerator
from repro.snippet.generator import DEFAULT_SIZE_BOUND, GeneratedSnippet, SnippetBatch, SnippetGenerator
from repro.snippet.ilist import IList, IListBuilder, IListItem, ItemKind
from repro.snippet.snippet_tree import Snippet
from repro.system import ExtractSystem, SearchOutcome
from repro.utils.cache import DEFAULT_CACHE_SIZE, CacheStats, LRUCache
from repro.xmltree.builder import TreeBuilder, tree_from_dict
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.tree import XMLTree

__version__ = "1.0.0"

__all__ = [
    # façade
    "ExtractSystem",
    "SearchOutcome",
    "Corpus",
    # serving layer
    "SnippetService",
    "SearchRequest",
    "SearchResponse",
    "BatchRequest",
    "BatchResponse",
    "SnippetPayload",
    "ErrorResponse",
    "SerialExecutor",
    "ConcurrentExecutor",
    "BatchQueryOutcome",
    "BatchReport",
    # sharded serving
    "ClusterService",
    "ShardServer",
    "ShardExecutor",
    "HashPartitioner",
    "compact_corpus_dir",
    "LRUCache",
    "CacheStats",
    "DEFAULT_CACHE_SIZE",
    "save_index",
    "load_index",
    # snippet pipeline
    "SnippetGenerator",
    "DistinctSnippetGenerator",
    "GeneratedSnippet",
    "SnippetBatch",
    "Snippet",
    "IList",
    "IListBuilder",
    "IListItem",
    "ItemKind",
    "DEFAULT_SIZE_BOUND",
    # search substrate
    "SearchEngine",
    "KeywordQuery",
    "QueryResult",
    "ResultSet",
    "IndexBuilder",
    "DocumentIndex",
    # XML substrate
    "XMLTree",
    "TreeBuilder",
    "tree_from_dict",
    "parse_xml",
    "parse_xml_file",
    # errors
    "ExtractError",
    "XMLParseError",
    "DTDParseError",
    "DeweyError",
    "SchemaError",
    "QueryError",
    "SearchError",
    "SnippetError",
    "InvalidSizeBoundError",
    "DatasetError",
    "StorageError",
    "ProtocolError",
    "ClusterError",
    "EvaluationError",
    "__version__",
]
