"""Exception hierarchy for the eXtract reproduction.

Every error raised intentionally by the library derives from
:class:`ExtractError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` on internal dicts, ...) propagate unchanged.
"""

from __future__ import annotations


class ExtractError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class XMLParseError(ExtractError):
    """Raised when an XML document cannot be parsed into a tree."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DTDParseError(ExtractError):
    """Raised when a DTD declaration cannot be parsed."""


class DeweyError(ExtractError):
    """Raised for malformed Dewey labels or invalid Dewey operations."""


class SchemaError(ExtractError):
    """Raised when a schema summary is inconsistent with the document."""


class IndexError_(ExtractError):
    """Raised for index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while keeping the intent obvious.
    """


class IndexNotBuiltError(IndexError_):
    """Raised when an index is queried before :meth:`build` was called."""


class StorageError(ExtractError):
    """Raised when persisting or loading an index from disk fails."""


class QueryError(ExtractError):
    """Raised for malformed keyword queries (e.g. empty after stop-wording)."""


class SearchError(ExtractError):
    """Raised when query evaluation fails."""


class SnippetError(ExtractError):
    """Raised when snippet generation fails."""


class InvalidSizeBoundError(SnippetError):
    """Raised when a snippet size bound is not a positive integer."""

    def __init__(self, bound: object):
        super().__init__(
            f"snippet size bound must be a positive integer number of edges, got {bound!r}"
        )
        self.bound = bound


class PagingError(ExtractError):
    """Raised for invalid pagination arithmetic (non-positive page numbers
    or page sizes).  Before this guard existed, ``page <= 0`` silently
    produced a negative slice start and returned items from the *end* of
    the sequence."""


class ProtocolError(ExtractError):
    """Raised when a service request/response payload violates the typed
    protocol of :mod:`repro.api` (unknown kind, wrong schema version,
    unknown or ill-typed fields, malformed page tokens)."""


class UnknownDocumentError(ExtractError):
    """Raised when a request names a document that is not registered in the
    serving corpus (or anywhere in a cluster).  Distinguished from the base
    class so wire frontends can map it to a ``unknown_document`` error code
    (HTTP 404) instead of a generic failure."""


class OverloadedError(ExtractError):
    """Raised (or wrapped into an ``overloaded`` error response, HTTP 503)
    by the gateway's admission-control middleware when the bounded
    in-flight request budget is exhausted — shedding load explicitly
    instead of queueing without bound."""


class DeadlineError(ExtractError):
    """Raised (or wrapped into a ``deadline_exceeded`` error response,
    HTTP 504) by the gateway's deadline middleware when a request misses
    its per-request completion deadline."""


class ClusterError(ExtractError):
    """Raised for sharded-cluster misconfiguration (:mod:`repro.cluster`):
    invalid shard counts, out-of-range or missing partition assignments,
    or a cluster manifest that disagrees with the shard directories."""


class DatasetError(ExtractError):
    """Raised when a synthetic dataset generator receives invalid parameters."""


class EvaluationError(ExtractError):
    """Raised when an experiment or metric cannot be computed."""


class AnalysisError(ExtractError):
    """Raised by the static-analysis subsystem (:mod:`repro.analysis`) for
    usage errors: unknown rule ids, malformed suppression comments,
    unreadable or version-mismatched baseline files, bad scan paths.
    Rule *findings* are not errors — they are data (reported, exit code
    1); this class covers the cases where the linter itself cannot run
    as asked (exit code 2)."""
