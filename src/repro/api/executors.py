"""Pluggable request executors for the snippet service.

The service maps a function over a list of work items (requests, batch
queries).  *How* that map runs is an executor policy:

* :class:`SerialExecutor` — run in the calling thread, one item at a time
  (deterministic, zero overhead; the default).
* :class:`ConcurrentExecutor` — fan out over a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Because the query
  pipeline is thread-safe (locked caches, no shared mutable engine state),
  concurrent execution returns results identical to the serial path; the
  win is overlapping work when queries block on anything releasing the
  GIL, and it is the substrate the async/sharding roadmap items build on.

Both preserve **input order** in their output list and surface the first
worker exception (by item order) exactly like a plain loop would, so
swapping executors never changes observable results — only wall-clock.

Lifecycle contract (every implementation, including
:class:`repro.cluster.router.ShardExecutor`, must satisfy it):

* :meth:`Executor.close` is **idempotent** — closing twice is a no-op;
* submitting work through a closed executor raises :class:`RuntimeError`
  with a clear message (silently recreating worker resources would hide
  resource leaks in long-lived services);
* re-entering the executor as a context manager **re-opens** it — worker
  resources are recreated lazily on the next submission.
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, TypeVar

from repro.obs.clock import perf_counter
from repro.obs.trace import activate, current_span_id, current_trace

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: worker-count ceiling guarding against pathological requests
MAX_WORKERS = 64


def _trace_preserving(fn: Callable[..., Any], executor_name: str) -> Callable[..., Any]:
    """Carry the submitting context's trace across the pool boundary.

    Contextvars do not propagate into ``ThreadPoolExecutor`` workers, so a
    task submitted while a trace is active would silently stop recording.
    Called *on the submitting thread*, this captures the active trace and
    span; the wrapper re-activates them inside the worker and records the
    submit→run queue delay as a leaf span.  With no active trace the
    callable passes through untouched — the hot path pays one contextvar
    read.
    """
    trace = current_trace()
    if trace is None:
        return fn
    parent = current_span_id()
    submitted = perf_counter()

    def runner(*args: Any, **kwargs: Any) -> Any:
        with activate(trace, parent):
            trace.add_span(
                f"executor:{executor_name}:queue", perf_counter() - submitted
            )
            return fn(*args, **kwargs)

    return runner


class Executor(abc.ABC):
    """Strategy interface: map a callable over items, preserving order."""

    #: short name used in reprs, benchmarks and the CLI
    name: str = "abstract"

    @property
    def closed(self) -> bool:
        """True between :meth:`close` and the next context-manager entry."""
        return getattr(self, "_closed", False)

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; re-enter it as a context "
                "manager (or create a new executor) before submitting work"
            )

    @abc.abstractmethod
    def map(self, fn: Callable[[_Item], _Result], items: Sequence[_Item]) -> list[_Result]:
        """Apply ``fn`` to every item; results in input order.

        The first exception (by item order) propagates to the caller, as
        in a plain ``for`` loop.  Raises :class:`RuntimeError` when the
        executor has been closed.
        """

    def submit(self, fn: Callable[..., _Result], *args: Any) -> "Future[_Result]":
        """Submit one call, returning a :class:`concurrent.futures.Future`.

        This is the bridge an async frontend needs: the HTTP server awaits
        the future (``asyncio.wrap_future``) while the blocking backend
        call runs wherever the executor policy puts it.  The base
        implementation runs the call **inline** and returns an
        already-completed future (serial semantics — an event loop driving
        it will block, which is exactly what "serial" means);
        :class:`ConcurrentExecutor` dispatches to its thread pool.  Raises
        :class:`RuntimeError` when the executor has been closed.
        """
        self._require_open()
        future: Future[_Result] = Future()
        try:
            future.set_result(fn(*args))
        # Nothing is swallowed: the exception is mirrored into the
        # Future, exactly as a concurrent.futures pool does.
        # repro: ignore[no-silent-swallow]
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release worker resources (idempotent).

        A closed executor refuses further work until re-opened by
        context-manager re-entry.
        """
        self._closed = True

    def __enter__(self) -> "Executor":
        # Context-manager re-entry re-opens a closed executor; worker
        # resources come back lazily on the next map().
        self._closed = False
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialExecutor(Executor):
    """Run every item inline in the calling thread (the reference path)."""

    name = "serial"

    def map(self, fn: Callable[[_Item], _Result], items: Sequence[_Item]) -> list[_Result]:
        self._require_open()
        return [fn(item) for item in items]


class ConcurrentExecutor(Executor):
    """Run items on a shared thread pool.

    The pool is created lazily on first use and reused across calls, so a
    long-lived service pays thread start-up once.  ``close()`` (or exiting
    the context manager) shuts the pool down; per the lifecycle contract a
    closed executor raises on further submissions until re-entered as a
    context manager, which recreates the pool lazily.
    """

    name = "concurrent"

    def __init__(self, max_workers: int = 8):
        if not isinstance(max_workers, int) or isinstance(max_workers, bool) or max_workers < 1:
            raise ValueError(f"max_workers must be a positive integer, got {max_workers!r}")
        self.max_workers = min(max_workers, MAX_WORKERS)
        self._pool: ThreadPoolExecutor | None = None
        # Guards pool creation/shutdown: concurrent first users must share
        # one pool (not leak racing duplicates), and submissions racing a
        # close() must land in a live pool or in a fresh one — never in a
        # shut-down pool.
        self._pool_lock = threading.Lock()

    def _submit_all(self, fn, items) -> list:
        with self._pool_lock:
            # Re-check under the lock: a close() racing this map() must not
            # see us resurrect a fresh pool after it shut the old one down
            # (the pool would leak — nothing would ever close it again).
            self._require_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix=f"repro-{self.name}"
                )
            task = _trace_preserving(fn, self.name)
            return [self._pool.submit(task, item) for item in items]

    def submit(self, fn: Callable[..., _Result], *args: Any) -> "Future[_Result]":
        """Dispatch one call to the shared pool (created lazily)."""
        with self._pool_lock:
            self._require_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix=f"repro-{self.name}"
                )
            return self._pool.submit(_trace_preserving(fn, self.name), *args)

    def map(self, fn: Callable[[_Item], _Result], items: Sequence[_Item]) -> list[_Result]:
        self._require_open()
        if len(items) <= 1:
            # No parallelism to exploit; skip the pool round trip.
            return [fn(item) for item in items]
        futures = self._submit_all(fn, items)
        try:
            # future.result() re-raises the worker exception; walking the
            # futures in submission order surfaces the first failing item,
            # matching serial semantics.
            return [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()

    def close(self) -> None:
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("idle" if self._pool is None else "running")
        return f"<{type(self).__name__} max_workers={self.max_workers} ({state})>"
