"""The gateway: composable middleware around any :class:`ServingBackend`.

A middleware wraps an inner backend and is **itself a backend** — the
composition is uniform, so stages stack in any order and each one is
individually testable against the same contract:

* :class:`ValidationMiddleware` — reject ill-formed requests with a
  structured ``bad_request`` error before they reach the backend;
* :class:`DeadlineMiddleware` — bound per-request wall-clock: a request
  that misses its deadline comes back as a ``deadline_exceeded`` error
  (HTTP 504) instead of hanging its caller;
* :class:`AdmissionControlMiddleware` — bound concurrent in-flight
  requests: a saturating burst is shed with ``overloaded`` errors
  (HTTP 503) instead of queueing without bound, while already-admitted
  requests complete normally;
* :class:`MetricsMiddleware` — request/response/error counters (exposed
  through :meth:`~Middleware.stats`) plus an optional per-request log
  callback.

:func:`build_gateway` assembles the canonical stack::

    metrics(validation(deadline(admission(backend))))

— metrics outermost so every outcome (including shed load) is counted,
validation before the expensive stages so malformed requests never cost a
worker or a slot, and admission **inside** the deadline: a timed-out
request's abandoned worker keeps its admission slot until the backend
call actually finishes, so ``max_in_flight`` bounds *real* backend
concurrency — a wedged backend makes later arrivals shed with
``overloaded`` instead of piling ever more abandoned workers onto it.

Every middleware's single extension point is
:meth:`Middleware.process(request, call_next) <Middleware.process>`, which
sees search, batch and update requests alike — one implementation guards
all three request shapes.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.api.backend import ServingBackend, ServingBackendBase
from repro.api.protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.errors import DeadlineError, ExtractError, OverloadedError

AnyRequest = SearchRequest | BatchRequest | UpdateRequest
AnyResponse = SearchResponse | BatchResponse | UpdateResponse | ErrorResponse
CallNext = Callable[[AnyRequest], AnyResponse]


class Middleware(ServingBackendBase):
    """A backend that decorates another backend.

    Subclasses override :meth:`process`; the three ``execute*`` methods
    funnel through it with the matching inner call, so one hook guards
    every request shape.  Introspection and lifecycle delegate inward:
    :meth:`capabilities` reports the inner backend's surface plus the
    middleware chain (innermost first), :meth:`stats` merges this stage's
    counters over the inner report, :meth:`close` closes the whole stack.
    """

    #: short stage name, shown in the capabilities middleware chain
    name: str = "middleware"

    def __init__(self, inner: ServingBackend):
        self.inner = inner

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        """Serve one request; ``call_next(request)`` invokes the inner stage.

        The default is a transparent pass-through.  Implementations may
        short-circuit (return without calling ``call_next``), substitute
        the request, or inspect the response on the way out — but must
        return a protocol response, never raise a library error.
        """
        return call_next(request)

    # ------------------------------------------------------------------ #
    # the backend surface, funnelled through process()
    # ------------------------------------------------------------------ #
    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        return self.process(request, self.inner.execute)

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        return self.process(batch, self.inner.execute_batch)

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        return self.process(request, self.inner.execute_update)

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def capabilities(self) -> dict[str, Any]:
        caps = dict(self.inner.capabilities())
        caps["middleware"] = [*caps.get("middleware", []), self.name]
        return caps

    def stats(self) -> dict[str, Any]:
        return dict(self.inner.stats())

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} inner={self.inner!r}>"


class ValidationMiddleware(Middleware):
    """Reject ill-formed requests before they consume backend resources.

    ``request.validate()`` failures become a structured ``bad_request``
    error response — the same shape the backend itself would produce, but
    produced here so later stages (admission slots, deadline workers)
    never pay for garbage.
    """

    name = "validation"

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        try:
            request.validate()
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())
        return call_next(request)


class DeadlineMiddleware(Middleware):
    """Bound per-request wall-clock time.

    The inner call runs on a **dedicated** worker thread; if it has not
    completed within ``timeout`` seconds the caller gets a
    ``deadline_exceeded`` error response (HTTP 504).  Python threads
    cannot be killed, so the abandoned worker runs its request to
    completion in the background — the deadline bounds the *caller's*
    latency, not the backend's work (same trade-off as every thread-based
    timeout).  One thread per request (not a bounded pool) is deliberate:
    an abandoned worker must never make a new request queue behind dead
    work and burn its own deadline waiting for a free slot.  Bounding how
    many workers can occupy the backend at once is admission control's
    job — compose it **inside** this stage (see :func:`build_gateway`) so
    an abandoned worker keeps its slot until the backend call really
    finishes.
    """

    name = "deadline"

    def __init__(self, inner: ServingBackend, timeout: float):
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
            raise ValueError(f"timeout must be a positive number of seconds, got {timeout!r}")
        super().__init__(inner)
        self.timeout = float(timeout)

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        outcome: dict[str, Any] = {}
        done = threading.Event()

        def run() -> None:
            try:
                outcome["response"] = call_next(request)
            # The worker thread only ferries the exception across;
            # the caller re-raises it.
            # repro: ignore[no-silent-swallow]
            except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
                outcome["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=run, name="repro-deadline", daemon=True)
        worker.start()
        if not done.wait(self.timeout):
            return ErrorResponse.from_exception(
                DeadlineError(
                    f"request missed its {self.timeout:.3f}s deadline "
                    "(the server kept working; retry with a larger deadline)"
                ),
                request=request.to_dict(),
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["response"]


class AdmissionControlMiddleware(Middleware):
    """Bound concurrent in-flight requests; shed the excess explicitly.

    At most ``max_in_flight`` requests run in the stack below at once.  A
    request arriving with no free slot is **rejected immediately** with an
    ``overloaded`` error response (HTTP 503) — a non-blocking semaphore
    probe, so the overload path cannot deadlock and cannot queue without
    bound.  Admitted requests always release their slot (`finally`), even
    when the backend fails.
    """

    name = "admission"

    def __init__(self, inner: ServingBackend, max_in_flight: int):
        if (
            not isinstance(max_in_flight, int)
            or isinstance(max_in_flight, bool)
            or max_in_flight < 1
        ):
            raise ValueError(
                f"max_in_flight must be a positive integer, got {max_in_flight!r}"
            )
        super().__init__(inner)
        self.max_in_flight = max_in_flight
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._counter_lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        if not self._slots.acquire(blocking=False):
            with self._counter_lock:
                self._rejected += 1
            return ErrorResponse.from_exception(
                OverloadedError(
                    f"server is at its in-flight request limit "
                    f"({self.max_in_flight}); retry later"
                ),
                request=request.to_dict(),
            )
        try:
            with self._counter_lock:
                self._admitted += 1
            return call_next(request)
        finally:
            self._slots.release()

    def stats(self) -> dict[str, Any]:
        merged = super().stats()
        with self._counter_lock:
            merged["admission"] = {
                "max_in_flight": self.max_in_flight,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }
        return merged


class MetricsMiddleware(Middleware):
    """Count requests, responses and error codes; optionally log each call.

    Counters are cumulative since construction and exposed through
    :meth:`stats` under the ``"requests"`` key::

        {"requests": {"total": 7, "by_kind": {"search": 6, "batch": 1},
                      "errors": 2, "by_code": {"unknown_document": 2},
                      "seconds": 0.42}}

    Payloads that fail to parse at the JSON endpoints are counted too
    (``by_kind`` bucket ``"invalid"``) — a flood of garbage requests must
    be visible in the stats, not invisible because it never produced a
    typed request.  ``log`` (when given) is called after every request as
    ``log(request, response, seconds)`` — the request-logging hook; it
    runs outside the counter lock, and a failing logger never fails the
    request.
    """

    name = "metrics"

    def __init__(
        self,
        inner: ServingBackend,
        log: Callable[[AnyRequest, AnyResponse, float], None] | None = None,
    ):
        super().__init__(inner)
        self._log = log
        self._lock = threading.Lock()
        self._total = 0
        self._errors = 0
        self._seconds = 0.0
        self._by_kind: dict[str, int] = {}
        self._by_code: dict[str, int] = {}

    def _record(self, kind: str, response: AnyResponse, seconds: float) -> None:
        with self._lock:
            self._total += 1
            self._seconds += seconds
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
            if isinstance(response, ErrorResponse):
                self._errors += 1
                code = response.code or "internal"
                self._by_code[code] = self._by_code.get(code, 0) + 1

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        started = time.perf_counter()
        response = call_next(request)
        seconds = time.perf_counter() - started
        self._record(request.kind, response, seconds)
        if self._log is not None:
            try:
                self._log(request, response, seconds)
            # A broken log callback must not fail the request it
            # observes; the response is already built.
            # repro: ignore[no-silent-swallow]
            except Exception:  # noqa: BLE001 - observability must not fail serving
                pass
        return response

    def _reject(self, error: ExtractError, request: dict[str, Any] | None) -> dict[str, Any]:
        # Payloads rejected before they became a typed request (malformed
        # JSON, unknown kind) never reach process(); the base endpoints
        # funnel them through this hook, so they land in the counters too.
        response = ErrorResponse.from_exception(error, request=request)
        self._record("invalid", response, 0.0)
        return response.to_dict()

    def stats(self) -> dict[str, Any]:
        merged = super().stats()
        with self._lock:
            merged["requests"] = {
                "total": self._total,
                "by_kind": dict(self._by_kind),
                "errors": self._errors,
                "by_code": dict(self._by_code),
                "seconds": self._seconds,
            }
        return merged


def build_gateway(
    backend: ServingBackend,
    validate: bool = True,
    max_in_flight: int | None = None,
    deadline: float | None = None,
    metrics: bool = True,
    log: Callable[[AnyRequest, AnyResponse, float], None] | None = None,
) -> ServingBackend:
    """Wrap ``backend`` in the canonical middleware stack.

    Stages are applied innermost-first — admission, deadline, validation,
    metrics — so the composed order is
    ``metrics(validation(deadline(admission(backend))))``; any stage whose
    knob is ``None``/``False`` is skipped.  Admission sits inside the
    deadline on purpose: a timed-out request's worker holds its slot until
    the backend call finishes, so ``max_in_flight`` bounds how many calls
    can actually occupy the backend — arrivals beyond that are shed
    quickly with ``overloaded`` rather than stacking abandoned workers on
    a wedged backend.  Closing the returned backend closes the whole
    stack down to ``backend`` itself.
    """
    stack = backend
    if max_in_flight is not None:
        stack = AdmissionControlMiddleware(stack, max_in_flight=max_in_flight)
    if deadline is not None:
        stack = DeadlineMiddleware(stack, timeout=deadline)
    if validate:
        stack = ValidationMiddleware(stack)
    if metrics or log is not None:
        stack = MetricsMiddleware(stack, log=log)
    return stack
