"""The gateway: composable middleware around any :class:`ServingBackend`.

A middleware wraps an inner backend and is **itself a backend** — the
composition is uniform, so stages stack in any order and each one is
individually testable against the same contract:

* :class:`ValidationMiddleware` — reject ill-formed requests with a
  structured ``bad_request`` error before they reach the backend;
* :class:`DeadlineMiddleware` — bound per-request wall-clock: a request
  that misses its deadline comes back as a ``deadline_exceeded`` error
  (HTTP 504) instead of hanging its caller;
* :class:`AdmissionControlMiddleware` — bound concurrent in-flight
  requests: a saturating burst is shed with ``overloaded`` errors
  (HTTP 503) instead of queueing without bound, while already-admitted
  requests complete normally;
* :class:`MetricsMiddleware` — request/response/error counters (exposed
  through :meth:`~Middleware.stats`) plus an optional per-request log
  callback.

* :class:`TracingMiddleware` — per-request :class:`~repro.obs.Trace`
  context: assigns the ``request_id``, opens the root span, records every
  stage below as a child span, keeps finished traces in a bounded buffer
  and injects the span tree into the opt-in ``meta`` block.

:func:`build_gateway` assembles the canonical stack::

    tracing(metrics(validation(deadline(admission(backend)))))

— tracing outermost so the whole request (including shed load and
validation failures) lands in one trace, metrics next so every outcome is
counted, validation before the expensive stages so malformed requests
never cost a worker or a slot, and admission **inside** the deadline: a
timed-out request's abandoned worker keeps its admission slot until the
backend call actually finishes, so ``max_in_flight`` bounds *real*
backend concurrency — a wedged backend makes later arrivals shed with
``overloaded`` instead of piling ever more abandoned workers onto it.

Every middleware's single extension point is
:meth:`Middleware.process(request, call_next) <Middleware.process>`, which
sees search, batch and update requests alike — one implementation guards
all three request shapes.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable

from repro.api.backend import ServingBackend, ServingBackendBase
from repro.api.protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.errors import DeadlineError, ExtractError, OverloadedError
from repro.obs.clock import perf_counter
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace, TraceBuffer, activate, current_span_id, current_trace
from repro.obs.trace import _current_trace as _current_trace_var

AnyRequest = SearchRequest | BatchRequest | UpdateRequest
AnyResponse = SearchResponse | BatchResponse | UpdateResponse | ErrorResponse
CallNext = Callable[[AnyRequest], AnyResponse]


class Middleware(ServingBackendBase):
    """A backend that decorates another backend.

    Subclasses override :meth:`process`; the three ``execute*`` methods
    funnel through it with the matching inner call, so one hook guards
    every request shape.  Introspection and lifecycle delegate inward:
    :meth:`capabilities` reports the inner backend's surface plus the
    middleware chain (innermost first), :meth:`stats` merges this stage's
    counters over the inner report, :meth:`close` closes the whole stack.
    """

    #: short stage name, shown in the capabilities middleware chain
    name: str = "middleware"

    #: record a ``stage:<name>`` span around :meth:`process` when a trace
    #: is active (:class:`TracingMiddleware` opts out — it owns the root)
    traced: bool = True

    def __init__(self, inner: ServingBackend):
        self.inner = inner
        # Precomputed: f-string formatting per request is measurable on
        # the warm search path.
        self._stage_span_name = f"stage:{self.name}"

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        """Serve one request; ``call_next(request)`` invokes the inner stage.

        The default is a transparent pass-through.  Implementations may
        short-circuit (return without calling ``call_next``), substitute
        the request, or inspect the response on the way out — but must
        return a protocol response, never raise a library error.
        """
        return call_next(request)

    # ------------------------------------------------------------------ #
    # the backend surface, funnelled through process()
    # ------------------------------------------------------------------ #
    def _process(self, request: AnyRequest, inner_call: CallNext) -> AnyResponse:
        """Run :meth:`process`, recording a per-stage span when the
        request carries an active trace.

        Reads the contextvar directly rather than through
        :func:`current_trace`: this runs once per stage per request, and
        the wrapper call is measurable against the trace-overhead budget.
        """
        trace = _current_trace_var.get()
        if trace is None or not self.traced:
            return self.process(request, inner_call)
        with trace.span(self._stage_span_name):
            return self.process(request, inner_call)

    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        return self._process(request, self.inner.execute)

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        return self._process(batch, self.inner.execute_batch)

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        return self._process(request, self.inner.execute_update)

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def capabilities(self) -> dict[str, Any]:
        caps = dict(self.inner.capabilities())
        caps["middleware"] = [*caps.get("middleware", []), self.name]
        return caps

    def stats(self) -> dict[str, Any]:
        # Deep copy: stats() hands out a *snapshot*.  A caller mutating
        # nested sections of the returned dict must never corrupt the live
        # counters a later caller reads.
        return copy.deepcopy(self.inner.stats())

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} inner={self.inner!r}>"


class ValidationMiddleware(Middleware):
    """Reject ill-formed requests before they consume backend resources.

    ``request.validate()`` failures become a structured ``bad_request``
    error response — the same shape the backend itself would produce, but
    produced here so later stages (admission slots, deadline workers)
    never pay for garbage.
    """

    name = "validation"

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        try:
            request.validate()
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())
        return call_next(request)


class DeadlineMiddleware(Middleware):
    """Bound per-request wall-clock time.

    The inner call runs on a **dedicated** worker thread; if it has not
    completed within ``timeout`` seconds the caller gets a
    ``deadline_exceeded`` error response (HTTP 504).  Python threads
    cannot be killed, so the abandoned worker runs its request to
    completion in the background — the deadline bounds the *caller's*
    latency, not the backend's work (same trade-off as every thread-based
    timeout).  One thread per request (not a bounded pool) is deliberate:
    an abandoned worker must never make a new request queue behind dead
    work and burn its own deadline waiting for a free slot.  Bounding how
    many workers can occupy the backend at once is admission control's
    job — compose it **inside** this stage (see :func:`build_gateway`) so
    an abandoned worker keeps its slot until the backend call really
    finishes.
    """

    name = "deadline"

    def __init__(self, inner: ServingBackend, timeout: float):
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
            raise ValueError(f"timeout must be a positive number of seconds, got {timeout!r}")
        super().__init__(inner)
        self.timeout = float(timeout)

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        outcome: dict[str, Any] = {}
        done = threading.Event()
        # Contextvars don't cross thread boundaries by themselves; the
        # worker re-activates the caller's trace so inner stages keep
        # recording spans (parented under this stage's span).
        trace = current_trace()
        parent_span = current_span_id()

        def run() -> None:
            try:
                with activate(trace, parent_span):
                    outcome["response"] = call_next(request)
            # The worker thread only ferries the exception across;
            # the caller re-raises it.
            # repro: ignore[no-silent-swallow]
            except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
                outcome["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=run, name="repro-deadline", daemon=True)
        worker.start()
        if not done.wait(self.timeout):
            return ErrorResponse.from_exception(
                DeadlineError(
                    f"request missed its {self.timeout:.3f}s deadline "
                    "(the server kept working; retry with a larger deadline)"
                ),
                request=request.to_dict(),
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["response"]


class AdmissionControlMiddleware(Middleware):
    """Bound concurrent in-flight requests; shed the excess explicitly.

    At most ``max_in_flight`` requests run in the stack below at once.  A
    request arriving with no free slot is **rejected immediately** with an
    ``overloaded`` error response (HTTP 503) — a non-blocking semaphore
    probe, so the overload path cannot deadlock and cannot queue without
    bound.  Admitted requests always release their slot (`finally`), even
    when the backend fails.
    """

    name = "admission"

    def __init__(self, inner: ServingBackend, max_in_flight: int):
        if (
            not isinstance(max_in_flight, int)
            or isinstance(max_in_flight, bool)
            or max_in_flight < 1
        ):
            raise ValueError(
                f"max_in_flight must be a positive integer, got {max_in_flight!r}"
            )
        super().__init__(inner)
        self.max_in_flight = max_in_flight
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._counter_lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        if not self._slots.acquire(blocking=False):
            with self._counter_lock:
                self._rejected += 1
            return ErrorResponse.from_exception(
                OverloadedError(
                    f"server is at its in-flight request limit "
                    f"({self.max_in_flight}); retry later"
                ),
                request=request.to_dict(),
            )
        try:
            with self._counter_lock:
                self._admitted += 1
            return call_next(request)
        finally:
            self._slots.release()

    def stats(self) -> dict[str, Any]:
        merged = super().stats()
        with self._counter_lock:
            merged["admission"] = {
                "max_in_flight": self.max_in_flight,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }
        return merged


class MetricsMiddleware(Middleware):
    """Count requests, responses and error codes; optionally log each call.

    The counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    (pass one to aggregate with other components; the default is a
    private registry, so two stacks never mix):

    * ``repro_requests_total{kind}`` — requests served, by request kind;
    * ``repro_errors_total{code}`` — error responses, by machine code;
    * ``repro_request_seconds{kind}`` — latency histogram (p50/p95/p99).

    :meth:`stats` derives the legacy ``"requests"`` section from the
    registry, unchanged in shape::

        {"requests": {"total": 7, "by_kind": {"search": 6, "batch": 1},
                      "errors": 2, "by_code": {"unknown_document": 2},
                      "seconds": 0.42}}

    Payloads that fail to parse at the JSON endpoints are counted too
    (``by_kind`` bucket ``"invalid"``) — a flood of garbage requests must
    be visible in the stats, not invisible because it never produced a
    typed request.  ``log`` (when given) is called after every request as
    ``log(request, response, seconds)`` — the request-logging hook (see
    :class:`~repro.obs.reqlog.RequestLogger`); it runs outside the
    counter locks, and a failing logger never fails the request.
    """

    name = "metrics"
    # No stage:metrics span: this stage times the same envelope the root
    # span already covers, and its histogram records that duration — a
    # span here would be telemetry about telemetry, at hot-path cost.
    traced = False

    def __init__(
        self,
        inner: ServingBackend,
        log: Callable[[AnyRequest, AnyResponse, float], None] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        super().__init__(inner)
        self._log = log
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_requests_total", "Requests served, by request kind.", ("kind",)
        )
        self._errors = self.registry.counter(
            "repro_errors_total", "Error responses, by machine-readable code.", ("code",)
        )
        self._seconds = self.registry.histogram(
            "repro_request_seconds", "Request latency in seconds, by kind.", ("kind",)
        )
        # Bound label rows, resolved once per kind — per-request label
        # resolution is measurable on the warm search path.
        self._rows_by_kind: dict[str, tuple[Any, Any]] = {}

    def _record(self, kind: str, response: AnyResponse, seconds: float) -> None:
        rows = self._rows_by_kind.get(kind)
        if rows is None:
            rows = self._rows_by_kind[kind] = (
                self._requests.labels(kind=kind),
                self._seconds.labels(kind=kind),
            )
        requests_row, seconds_row = rows
        requests_row.inc()
        seconds_row.observe(seconds)
        if isinstance(response, ErrorResponse):
            self._errors.inc(code=response.code or "internal")

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        started = perf_counter()
        response = call_next(request)
        seconds = perf_counter() - started
        self._record(request.kind, response, seconds)
        if self._log is not None:
            try:
                self._log(request, response, seconds)
            # A broken log callback must not fail the request it
            # observes; the response is already built.
            # repro: ignore[no-silent-swallow]
            except Exception:  # noqa: BLE001 - observability must not fail serving
                pass
        return response

    def _reject(self, error: ExtractError, request: dict[str, Any] | None) -> dict[str, Any]:
        # Payloads rejected before they became a typed request (malformed
        # JSON, unknown kind) never reach process(); the base endpoints
        # funnel them through this hook, so they land in the counters too.
        response = ErrorResponse.from_exception(error, request=request)
        self._record("invalid", response, 0.0)
        return response.to_dict()

    def stats(self) -> dict[str, Any]:
        merged = super().stats()
        by_kind = {
            row["labels"]["kind"]: int(row["value"])
            for row in self._requests.snapshot()["series"]
        }
        by_code = {
            row["labels"]["code"]: int(row["value"])
            for row in self._errors.snapshot()["series"]
        }
        seconds = sum(
            row["sum"] for row in self._seconds.snapshot()["series"]
        )
        merged["requests"] = {
            "total": sum(by_kind.values()),
            "by_kind": by_kind,
            "errors": sum(by_code.values()),
            "by_code": by_code,
            "seconds": seconds,
        }
        return merged


class TracingMiddleware(Middleware):
    """Per-request trace context: the outermost stage of the stack.

    Each request gets a :class:`~repro.obs.trace.Trace` (fresh
    ``request_id``) activated for the duration of :meth:`process`; every
    stage below records child spans against it through the contextvar.
    Finished traces land in a bounded :class:`TraceBuffer` (served by
    ``GET /v1/trace``), and — when the request opted into ``meta`` — the
    span tree is injected as ``meta["trace"]`` on the way out, so default
    wire bytes never change.

    When a trace is *already* active (the HTTP frontend activated one
    from an ``X-Repro-Trace`` header on a remote shard server), this
    stage joins it instead of starting a second one: the spans it records
    ship back to the coordinator in the response header and stitch into
    the caller's trace.
    """

    name = "tracing"
    traced = False  # this stage owns the root span; no stage:* wrapper

    def __init__(
        self,
        inner: ServingBackend,
        registry: MetricsRegistry | None = None,
        trace_buffer: TraceBuffer | None = None,
        process_name: str = "local",
        buffer_capacity: int = 128,
    ):
        super().__init__(inner)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_buffer = (
            trace_buffer
            if trace_buffer is not None
            else TraceBuffer(capacity=buffer_capacity)
        )
        self.process_name = process_name
        self._finished = threading.local()
        self._root_names: dict[str, str] = {}

    def _root_span_name(self, kind: str) -> str:
        name = self._root_names.get(kind)
        if name is None:
            name = self._root_names[kind] = f"request:{kind}"
        return name

    def process(self, request: AnyRequest, call_next: CallNext) -> AnyResponse:
        joined = _current_trace_var.get()
        if joined is not None:
            # Already inside a propagated trace (remote shard server);
            # record this gateway's root span against it and move on —
            # the HTTP frontend that activated the trace buffers it.
            with joined.span(self._root_span_name(request.kind)):
                return call_next(request)
        trace = Trace(process=self.process_name)
        # Inlined activate(): one contextvar set/reset instead of two —
        # the root span below owns the span-id variable anyway.
        trace_token = _current_trace_var.set(trace)
        try:
            with trace.span(self._root_span_name(request.kind)):
                response = call_next(request)
        finally:
            _current_trace_var.reset(trace_token)
        self.trace_buffer.put(trace)
        # Stashed per-thread so handle_dict (same thread, one frame up)
        # can inject the span tree into an opted-in meta block.
        self._finished.trace = trace
        return response

    def handle_dict(
        self,
        payload: dict[str, Any],
        request: AnyRequest | None = None,
    ) -> dict[str, Any]:
        self._finished.trace = None
        body = super().handle_dict(payload, request)
        finished = getattr(self._finished, "trace", None)
        self._finished.trace = None
        if finished is not None and isinstance(body, dict):
            meta = body.get("meta")
            if isinstance(meta, dict):
                # meta exists only when the request asked for it
                # (include_meta) — default responses stay byte-identical.
                meta["trace"] = finished.to_wire()
        return body

    def last_trace(self) -> dict[str, Any] | None:
        """The most recently finished trace (wire shape), if any."""
        newest = self.trace_buffer.newest(1)
        return newest[0] if newest else None


def build_gateway(
    backend: ServingBackend,
    validate: bool = True,
    max_in_flight: int | None = None,
    deadline: float | None = None,
    metrics: bool = True,
    log: Callable[[AnyRequest, AnyResponse, float], None] | None = None,
    tracing: bool = True,
    registry: MetricsRegistry | None = None,
    trace_buffer: TraceBuffer | None = None,
    process_name: str = "local",
) -> ServingBackend:
    """Wrap ``backend`` in the canonical middleware stack.

    Stages are applied innermost-first — admission, deadline, validation,
    metrics, tracing — so the composed order is
    ``tracing(metrics(validation(deadline(admission(backend)))))``; any
    stage whose knob is ``None``/``False`` is skipped.  Admission sits
    inside the deadline on purpose: a timed-out request's worker holds its
    slot until the backend call finishes, so ``max_in_flight`` bounds how
    many calls can actually occupy the backend — arrivals beyond that are
    shed quickly with ``overloaded`` rather than stacking abandoned
    workers on a wedged backend.  Closing the returned backend closes the
    whole stack down to ``backend`` itself.

    One :class:`~repro.obs.metrics.MetricsRegistry` is shared by the
    metrics and tracing stages; a backend that exposes its own
    ``registry`` attribute (:class:`~repro.cluster.remote.RemoteClusterService`
    records failover/shed/health series into one) is adopted, so
    ``GET /v1/metrics`` exports gateway and backend series together.
    """
    if registry is None:
        backend_registry = getattr(backend, "registry", None)
        registry = (
            backend_registry
            if isinstance(backend_registry, MetricsRegistry)
            else MetricsRegistry()
        )
    stack = backend
    if max_in_flight is not None:
        stack = AdmissionControlMiddleware(stack, max_in_flight=max_in_flight)
    if deadline is not None:
        stack = DeadlineMiddleware(stack, timeout=deadline)
    if validate:
        stack = ValidationMiddleware(stack)
    if metrics or log is not None:
        stack = MetricsMiddleware(stack, log=log, registry=registry)
    if tracing:
        stack = TracingMiddleware(
            stack,
            registry=registry,
            trace_buffer=trace_buffer,
            process_name=process_name,
        )
    return stack
