"""A typed in-repo client for the HTTP frontend (:mod:`repro.api.http`).

:class:`ServiceClient` speaks the versioned endpoints with stdlib
``http.client`` and is **itself a** :class:`~repro.api.backend.ServingBackend`
— a remote service plugs in behind the exact seam the local facades
implement, so code written against the protocol cannot tell a
:class:`~repro.api.SnippetService` in-process from one across the network::

    from repro.api import SearchRequest, ServiceClient

    client = ServiceClient("127.0.0.1", 8080)
    response = client.execute(SearchRequest(query="store texas", document="stores"))

``execute*`` return typed protocol responses; transport failures
(connection refused, read timeout) become a structured
:class:`~repro.api.protocol.ErrorResponse` with code ``internal`` instead
of an exception, preserving the backend contract that ``execute*`` never
raise.  The raw-dict endpoints (:meth:`handle_dict` and the inherited
``handle_text`` / ``handle_json``) route on the payload's ``kind``.

``keep_alive=True`` reuses one persistent connection (HTTP keep-alive) —
noticeably faster for request streams, but then the client must stay on a
single thread; the default opens a connection per request and is
thread-safe.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any

from repro.api.backend import ServingBackendBase
from repro.api.protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
    parse_response,
)
from repro.api.http import POST_ENDPOINTS
from repro.errors import ProtocolError

#: request kind → versioned endpoint (the inverse of the server's table)
ENDPOINT_BY_KIND = {kind: path for path, kind in POST_ENDPOINTS.items()}


class ServiceClient(ServingBackendBase):
    """Drive a served backend over HTTP; a backend itself."""

    backend_name = "http-client"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        keep_alive: bool = False,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._conn: http.client.HTTPConnection | None = None
        self._conn_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _open(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _round_trip(self, method: str, path: str, body: bytes | None) -> dict[str, Any]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        # A broken persistent connection is retried once — but only for
        # idempotent traffic.  An update the server may already have
        # applied (it consumed the request, the response got lost) must
        # never be silently re-sent: the retry would apply it twice.
        retriable = method == "GET" or path != "/v1/update"
        if self.keep_alive:
            with self._conn_lock:
                for attempt in (1, 2):
                    if self._conn is None:
                        self._conn = self._open()
                    try:
                        self._conn.request(method, path, body=body, headers=headers)
                        response = self._conn.getresponse()
                        text = response.read().decode("utf-8")
                        break
                    except (http.client.HTTPException, OSError):
                        self._conn.close()
                        self._conn = None
                        if attempt == 2 or not retriable:
                            raise
        else:
            conn = self._open()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                text = response.read().decode("utf-8")
            finally:
                conn.close()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"server returned a non-JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"server returned a non-object JSON body ({type(payload).__name__})"
            )
        return payload

    def _post_dict(self, payload: dict[str, Any]) -> dict[str, Any]:
        kind = payload.get("kind") if isinstance(payload, dict) else None
        # Unroutable payloads (unknown, missing, or unhashable kinds) still
        # go to /v1/search so the *server* produces its canonical
        # structured error for them.
        path = ENDPOINT_BY_KIND.get(kind, "/v1/search") if isinstance(kind, str) else "/v1/search"
        try:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"request payload is not JSON-serialisable: {exc}") from exc
        return self._round_trip("POST", path, body)

    @staticmethod
    def _transport_error(
        exc: Exception, request: dict[str, Any] | None
    ) -> ErrorResponse:
        return ErrorResponse(
            error=type(exc).__name__,
            message=f"transport failure talking to the service: {exc}",
            request=request,
            code="internal",
        )

    # ------------------------------------------------------------------ #
    # the backend surface
    # ------------------------------------------------------------------ #
    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(request.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, request.to_dict())

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(batch.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, batch.to_dict())

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(request.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, request.to_dict())

    def handle_dict(
        self,
        payload: dict[str, Any],
        request: SearchRequest | BatchRequest | UpdateRequest | None = None,
    ) -> dict[str, Any]:
        """Ship the raw payload to the server and return its raw answer —
        parsing, validation and error shaping all happen server-side, so
        the dict that comes back is exactly what any other backend's
        ``handle_dict`` would have produced."""
        del request  # the server re-parses; a pre-parsed form saves nothing
        try:
            return self._post_dict(payload)
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            echoed = payload if isinstance(payload, dict) else None
            return self._transport_error(exc, echoed).to_dict()

    # ------------------------------------------------------------------ #
    # monitoring endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        """``GET /v1/health`` (raises on transport failure — health checks
        must distinguish "down" from "unhealthy answer")."""
        return self._round_trip("GET", "/v1/health", None)

    def capabilities(self) -> dict[str, Any]:
        """The *served* backend's capabilities (from the health endpoint)."""
        return self.health().get("backend", {})

    def stats(self) -> dict[str, Any]:
        """``GET /v1/stats`` — the served backend's counters."""
        return self._round_trip("GET", "/v1/stats", None)

    def close(self) -> None:
        with self._conn_lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __repr__(self) -> str:
        mode = "keep-alive" if self.keep_alive else "per-request"
        return f"<ServiceClient http://{self.host}:{self.port} ({mode})>"
