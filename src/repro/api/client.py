"""A typed in-repo client for the HTTP frontend (:mod:`repro.api.http`).

:class:`ServiceClient` speaks the versioned endpoints with stdlib
``http.client`` and is **itself a** :class:`~repro.api.backend.ServingBackend`
— a remote service plugs in behind the exact seam the local facades
implement, so code written against the protocol cannot tell a
:class:`~repro.api.SnippetService` in-process from one across the network::

    from repro.api import SearchRequest, ServiceClient

    client = ServiceClient("127.0.0.1", 8080)
    response = client.execute(SearchRequest(query="store texas", document="stores"))

``execute*`` return typed protocol responses; transport failures
(connection refused, read timeout) become a structured
:class:`~repro.api.protocol.ErrorResponse` with code ``internal`` instead
of an exception, preserving the backend contract that ``execute*`` never
raise.  The raw-dict endpoints (:meth:`handle_dict` and the inherited
``handle_text`` / ``handle_json``) route on the payload's ``kind``.

``keep_alive=True`` reuses one persistent connection (HTTP keep-alive) —
noticeably faster for request streams, but then the client must stay on a
single thread; the default opens a connection per request and is
thread-safe.

``retry=RetryPolicy(...)`` opts idempotent reads (search, batch, health,
stats) into bounded retry with exponential backoff on transport failure —
a server killed mid-request surfaces as a connection reset, which a fresh
attempt against its restarted (or failed-over) successor can absorb.
Updates and replication ops are **never** retried regardless of policy:
the server may have applied the request before the response was lost, and
re-sending would apply it twice.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.api.backend import ServingBackendBase
from repro.obs.trace import (
    TRACE_HEADER,
    TRACE_SPANS_HEADER,
    current_trace,
    trace_header_value,
)
from repro.api.protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
    parse_response,
)
from repro.api.http import POST_ENDPOINTS
from repro.errors import ProtocolError

#: request kind → versioned endpoint (the inverse of the server's table)
ENDPOINT_BY_KIND = {kind: path for path, kind in POST_ENDPOINTS.items()}

#: endpoints whose requests may already have been applied when the
#: response is lost — never retried, never re-sent on a broken keep-alive
#: connection
NON_IDEMPOTENT_PATHS = ("/v1/update", "/v1/replicate")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-exponential-backoff for idempotent reads.

    ``attempts`` is the total try count (1 = no retry); the delay before
    retry *n* is ``backoff * multiplier**(n-1)``, capped at
    ``max_backoff``.  The policy only ever applies to idempotent traffic
    (GETs and read POSTs); :attr:`NON_IDEMPOTENT_PATHS` are excluded at
    the transport layer no matter what the policy says.
    """

    attempts: int = 3
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.attempts, int) or isinstance(self.attempts, bool) or (
            self.attempts < 1
        ):
            raise ValueError(f"retry attempts must be a positive integer, got {self.attempts!r}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("retry backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"retry multiplier must be >= 1, got {self.multiplier!r}")

    def delay_before(self, attempt: int) -> float:
        """The sleep before attempt ``attempt`` (2-based: first retry = 2)."""
        return min(self.backoff * self.multiplier ** (attempt - 2), self.max_backoff)


class ServiceClient(ServingBackendBase):
    """Drive a served backend over HTTP; a backend itself."""

    backend_name = "http-client"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        keep_alive: bool = False,
        retry: RetryPolicy | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.retry = retry
        self._conn: http.client.HTTPConnection | None = None
        self._conn_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _open(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _round_trip(self, method: str, path: str, body: bytes | None) -> dict[str, Any]:
        idempotent = method == "GET" or path not in NON_IDEMPOTENT_PATHS
        policy = self.retry if (self.retry is not None and idempotent) else None
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._round_trip_once(method, path, body, idempotent)
            except (OSError, http.client.HTTPException):
                if attempt == attempts:
                    raise
                time.sleep(policy.delay_before(attempt + 1))
        raise AssertionError("unreachable: the retry loop returns or raises")

    def _round_trip_once(
        self, method: str, path: str, body: bytes | None, idempotent: bool
    ) -> dict[str, Any]:
        trace = current_trace()
        if trace is None:
            return self._transport_once(method, path, body, idempotent, None)
        # One span per attempt (retries each get their own), covering the
        # whole remote round trip; the server's spans — shipped back in
        # the response header — stitch in underneath it.
        with trace.span(
            f"http:{method} {path}", endpoint=f"{self.host}:{self.port}"
        ):
            return self._transport_once(method, path, body, idempotent, trace)

    def _transport_once(
        self,
        method: str,
        path: str,
        body: bytes | None,
        idempotent: bool,
        trace: Any,
    ) -> dict[str, Any]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        if trace is not None:
            # Propagate the request_id so the server joins this trace
            # instead of starting its own.
            headers[TRACE_HEADER] = trace_header_value(trace)
        remote_spans: str | None = None
        if self.keep_alive:
            with self._conn_lock:
                # A broken persistent connection is reconnected-and-resent
                # once — but only for idempotent traffic.  An update the
                # server may already have applied (it consumed the request,
                # the response got lost) must never be silently re-sent:
                # the resend would apply it twice.
                for attempt in (1, 2):
                    if self._conn is None:
                        self._conn = self._open()
                    try:
                        self._conn.request(method, path, body=body, headers=headers)
                        response = self._conn.getresponse()
                        text = response.read().decode("utf-8")
                        remote_spans = response.getheader(TRACE_SPANS_HEADER)
                        break
                    # No backoff by design: this reconnects a socket the
                    # server's keep-alive timeout already closed, once, not
                    # a retry against a failing server (RetryPolicy's loop
                    # in _round_trip handles those, with backoff).
                    # repro: ignore[no-unbounded-retry]
                    except (http.client.HTTPException, OSError):
                        self._conn.close()
                        self._conn = None
                        if attempt == 2 or not idempotent:
                            raise
        else:
            conn = self._open()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                text = response.read().decode("utf-8")
                remote_spans = response.getheader(TRACE_SPANS_HEADER)
            finally:
                conn.close()
        if trace is not None and remote_spans:
            try:
                spans = json.loads(remote_spans)
                if isinstance(spans, list):
                    trace.absorb_wire(spans)
            # A malformed span header must not fail the request whose
            # body arrived intact — the trace just loses remote detail.
            # repro: ignore[no-silent-swallow]
            except (json.JSONDecodeError, TypeError, ValueError):
                pass
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"server returned a non-JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"server returned a non-object JSON body ({type(payload).__name__})"
            )
        return payload

    def _post_dict(self, payload: dict[str, Any]) -> dict[str, Any]:
        kind = payload.get("kind") if isinstance(payload, dict) else None
        # Unroutable payloads (unknown, missing, or unhashable kinds) still
        # go to /v1/search so the *server* produces its canonical
        # structured error for them.
        path = ENDPOINT_BY_KIND.get(kind, "/v1/search") if isinstance(kind, str) else "/v1/search"
        try:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"request payload is not JSON-serialisable: {exc}") from exc
        return self._round_trip("POST", path, body)

    def post(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST a raw protocol payload, routed by its ``kind``.

        Unlike :meth:`handle_dict` this **raises** on transport failure
        (``OSError`` / ``http.client.HTTPException`` /
        :class:`~repro.errors.ProtocolError`) — the seam a failover
        coordinator needs, because "this endpoint is unreachable" must be
        distinguishable from "the service answered with an error".
        """
        return self._post_dict(payload)

    def replicate(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST a replication op to ``/v1/replicate`` (raises on transport
        failure).  Replication is non-idempotent: never retried, and a
        broken keep-alive connection is not re-sent."""
        try:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"replication payload is not JSON-serialisable: {exc}") from exc
        return self._round_trip("POST", "/v1/replicate", body)

    @staticmethod
    def _transport_error(
        exc: Exception, request: dict[str, Any] | None
    ) -> ErrorResponse:
        return ErrorResponse(
            error=type(exc).__name__,
            message=f"transport failure talking to the service: {exc}",
            request=request,
            code="internal",
        )

    # ------------------------------------------------------------------ #
    # the backend surface
    # ------------------------------------------------------------------ #
    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(request.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, request.to_dict())

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(batch.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, batch.to_dict())

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        try:
            return parse_response(self._post_dict(request.to_dict()))
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            return self._transport_error(exc, request.to_dict())

    def handle_dict(
        self,
        payload: dict[str, Any],
        request: SearchRequest | BatchRequest | UpdateRequest | None = None,
    ) -> dict[str, Any]:
        """Ship the raw payload to the server and return its raw answer —
        parsing, validation and error shaping all happen server-side, so
        the dict that comes back is exactly what any other backend's
        ``handle_dict`` would have produced."""
        del request  # the server re-parses; a pre-parsed form saves nothing
        try:
            return self._post_dict(payload)
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            echoed = payload if isinstance(payload, dict) else None
            return self._transport_error(exc, echoed).to_dict()

    # ------------------------------------------------------------------ #
    # monitoring endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        """``GET /v1/health`` (raises on transport failure — health checks
        must distinguish "down" from "unhealthy answer")."""
        return self._round_trip("GET", "/v1/health", None)

    def capabilities(self) -> dict[str, Any]:
        """The *served* backend's capabilities (from the health endpoint)."""
        return self.health().get("backend", {})

    def stats(self) -> dict[str, Any]:
        """``GET /v1/stats`` — the served backend's counters."""
        return self._round_trip("GET", "/v1/stats", None)

    def metrics(self) -> dict[str, Any]:
        """``GET /v1/metrics`` — the versioned JSON metrics snapshot."""
        return self._round_trip("GET", "/v1/metrics", None)

    def metrics_text(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — the text exposition body.

        Raw transport (no retry, no keep-alive): this is the scrape path,
        and a scraper's failure handling belongs to the scraper.
        """
        conn = self._open()
        try:
            conn.request("GET", "/v1/metrics?format=prometheus")
            response = conn.getresponse()
            return response.read().decode("utf-8")
        finally:
            conn.close()

    def trace(self, request_id: str | None = None) -> dict[str, Any]:
        """``GET /v1/trace`` (newest traces) or ``/v1/trace/<id>`` (one)."""
        path = "/v1/trace" if request_id is None else f"/v1/trace/{request_id}"
        return self._round_trip("GET", path, None)

    def close(self) -> None:
        with self._conn_lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __repr__(self) -> str:
        mode = "keep-alive" if self.keep_alive else "per-request"
        return f"<ServiceClient http://{self.host}:{self.port} ({mode})>"


class ClientPool:
    """A fixed set of keep-alive clients, one per worker thread.

    A ``keep_alive=True`` client is fast (one persistent connection) but
    single-threaded; the default client is thread-safe but opens a
    connection per request.  A load generator with N workers wants the
    third point: N persistent connections, one owned by each worker.
    :meth:`client` hands worker ``i`` its dedicated client — created
    lazily, so a pool sized for the worst case costs nothing for idle
    slots — and :meth:`close` closes every connection the pool opened.

    The pool is a context manager::

        with ClientPool(port=port, size=workers) as pool:
            ...  # worker i uses pool.client(i)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        size: int = 1,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ):
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise ValueError(f"pool size must be a positive integer, got {size!r}")
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self.retry = retry
        self._lock = threading.Lock()
        self._clients: list[ServiceClient | None] = [None] * size

    def client(self, worker: int) -> ServiceClient:
        """Worker ``worker``'s dedicated keep-alive client (lazily built).

        The caller contract mirrors ``keep_alive``'s: each index must be
        used from one thread at a time.
        """
        if not 0 <= worker < self.size:
            raise ValueError(
                f"worker index {worker!r} outside pool of size {self.size}"
            )
        with self._lock:
            existing = self._clients[worker]
            if existing is None:
                existing = self._clients[worker] = ServiceClient(
                    host=self.host,
                    port=self.port,
                    timeout=self.timeout,
                    keep_alive=True,
                    retry=self.retry,
                )
        return existing

    def clients(self) -> list[ServiceClient]:
        """The clients created so far (idle slots excluded)."""
        with self._lock:
            return [client for client in self._clients if client is not None]

    def close(self) -> None:
        """Close every connection the pool opened; the pool stays usable
        (a later :meth:`client` call reconnects lazily)."""
        with self._lock:
            clients = [client for client in self._clients if client is not None]
            self._clients = [None] * self.size
        for client in clients:
            client.close()

    def __len__(self) -> int:
        return self.size

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        live = len(self.clients())
        return (
            f"<ClientPool http://{self.host}:{self.port} "
            f"size={self.size} live={live}>"
        )
