"""``repro.api`` — the typed, versioned serving surface of the reproduction.

The package splits serving into three layers:

* :mod:`repro.api.protocol` — the wire contract: request/response
  dataclasses with a lossless, schema-versioned JSON round trip;
* :mod:`repro.api.executors` — pluggable execution strategies (serial or
  thread-pool concurrent) with identical observable results;
* :mod:`repro.api.service` — :class:`SnippetService`, the facade that owns
  a corpus and runs requests through an executor.

Quick start::

    from repro import Corpus
    from repro.api import SearchRequest, SnippetService

    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    service = SnippetService(corpus)
    response = service.run(
        SearchRequest(query="store texas", document="stores", size_bound=6, page_size=1)
    )
    print(response.results[0].text)
    if response.next_page:
        print(service.run(SearchRequest(
            query="store texas", document="stores", size_bound=6, page_size=1,
        ).with_page(response.next_page)))
"""

from repro.api.executors import ConcurrentExecutor, Executor, SerialExecutor
from repro.api.protocol import (
    CONSTRUCTION_MODES,
    SCHEMA_VERSION,
    UPDATE_ACTIONS,
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SnippetPayload,
    UpdateRequest,
    UpdateResponse,
    decode_page_token,
    encode_page_token,
    parse_request,
    parse_response,
)
from repro.api.service import JsonServing, SnippetService

__all__ = [
    "SCHEMA_VERSION",
    "CONSTRUCTION_MODES",
    "UPDATE_ACTIONS",
    "SearchRequest",
    "BatchRequest",
    "UpdateRequest",
    "SearchResponse",
    "BatchResponse",
    "UpdateResponse",
    "BatchEntry",
    "SnippetPayload",
    "ErrorResponse",
    "parse_request",
    "parse_response",
    "encode_page_token",
    "decode_page_token",
    "Executor",
    "SerialExecutor",
    "ConcurrentExecutor",
    "SnippetService",
    "JsonServing",
]
