"""``repro.api`` — the typed, versioned serving surface of the reproduction.

The package splits serving into layers:

* :mod:`repro.api.protocol` — the wire contract: request/response
  dataclasses with a lossless, schema-versioned JSON round trip, plus the
  machine-readable error codes and their HTTP status mapping;
* :mod:`repro.api.backend` — :class:`ServingBackend`, the checked
  transport-agnostic contract every serving facade implements;
* :mod:`repro.api.executors` — pluggable execution strategies (serial or
  thread-pool concurrent) with identical observable results;
* :mod:`repro.api.service` — :class:`SnippetService`, the facade that owns
  a corpus and runs requests through an executor;
* :mod:`repro.api.gateway` — composable middleware (validation, deadlines,
  admission control, metrics), each middleware itself a backend;
* :mod:`repro.api.http` — the asyncio HTTP/1.1 JSON frontend over any
  backend (``POST /v1/search`` …, stdlib only);
* :mod:`repro.api.client` — :class:`ServiceClient`, the typed in-repo HTTP
  client (itself a backend: a remote service plugs in behind the seam).

Quick start::

    from repro import Corpus
    from repro.api import SearchRequest, SnippetService

    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    service = SnippetService(corpus)
    response = service.run(
        SearchRequest(query="store texas", document="stores", size_bound=6, page_size=1)
    )
    print(response.results[0].text)
    if response.next_page:
        print(service.run(SearchRequest(
            query="store texas", document="stores", size_bound=6, page_size=1,
        ).with_page(response.next_page)))
"""

from repro.api.backend import ServingBackend, ServingBackendBase
from repro.api.client import ClientPool, RetryPolicy, ServiceClient
from repro.api.executors import ConcurrentExecutor, Executor, SerialExecutor
from repro.api.gateway import (
    AdmissionControlMiddleware,
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    ValidationMiddleware,
    build_gateway,
)
from repro.api.http import HttpServer
from repro.api.protocol import (
    CONSTRUCTION_MODES,
    ERROR_CODES,
    HTTP_STATUS_BY_CODE,
    SCHEMA_VERSION,
    UPDATE_ACTIONS,
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SnippetPayload,
    UpdateRequest,
    UpdateResponse,
    code_for_exception,
    decode_page_token,
    encode_page_token,
    http_status_for_code,
    parse_request,
    parse_response,
)
from repro.api.service import JsonServing, SnippetService

__all__ = [
    "SCHEMA_VERSION",
    "CONSTRUCTION_MODES",
    "UPDATE_ACTIONS",
    "ERROR_CODES",
    "HTTP_STATUS_BY_CODE",
    "SearchRequest",
    "BatchRequest",
    "UpdateRequest",
    "SearchResponse",
    "BatchResponse",
    "UpdateResponse",
    "BatchEntry",
    "SnippetPayload",
    "ErrorResponse",
    "parse_request",
    "parse_response",
    "encode_page_token",
    "decode_page_token",
    "code_for_exception",
    "http_status_for_code",
    "Executor",
    "SerialExecutor",
    "ConcurrentExecutor",
    "ServingBackend",
    "ServingBackendBase",
    "SnippetService",
    "JsonServing",
    "Middleware",
    "ValidationMiddleware",
    "DeadlineMiddleware",
    "AdmissionControlMiddleware",
    "MetricsMiddleware",
    "build_gateway",
    "HttpServer",
    "ServiceClient",
    "ClientPool",
    "RetryPolicy",
]
