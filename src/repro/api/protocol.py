"""The typed request/response protocol of the snippet service.

The original eXtract demo was a web service: a PHP page posted keyword
queries and rendered the returned snippets (§4).  This module is the wire
contract of the reproduction's serving layer — plain dataclasses with a
lossless JSON round trip (``to_dict`` / ``from_dict``), so any frontend
(the CLI ``serve-request`` subcommand, tests, a future HTTP server) can
talk to :class:`repro.api.SnippetService` without importing internals.

Design rules:

* **Versioned** — every payload carries ``schema_version``; ``from_dict``
  rejects payloads from a different protocol version instead of guessing.
* **Discriminated** — every payload carries ``kind`` (``search``,
  ``batch``, ``search_response``, ``batch_response``, ``error``);
  :func:`parse_request` dispatches on it.
* **Strict** — unknown fields raise :class:`~repro.errors.ProtocolError`
  rather than being silently dropped, so typos in hand-written requests
  fail loudly.
* **Deterministic by default** — volatile serving metadata (wall-clock
  timings, cache hits) lives in an optional ``meta`` block that is only
  emitted when a request sets ``include_meta``; the default serialisation
  of a response is byte-for-byte reproducible, which the concurrency tests
  rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, ClassVar

from repro.errors import (
    DeadlineError,
    OverloadedError,
    PagingError,
    ProtocolError,
    QueryError,
    UnknownDocumentError,
    XMLParseError,
)
from repro.snippet.generator import DEFAULT_SIZE_BOUND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SearchOutcome

#: current version of the service protocol; bump on incompatible change.
SCHEMA_VERSION = 1

#: result-construction modes accepted on the wire (mirrors
#: :class:`repro.search.xseek.ResultConstruction` values).
CONSTRUCTION_MODES = ("xseek", "subtree", "match_paths")

_PAGE_TOKEN_PREFIX = "p"


# ---------------------------------------------------------------------- #
# error codes
# ---------------------------------------------------------------------- #
#: machine-readable failure codes carried by :class:`ErrorResponse`.
#: ``error`` names the Python exception class (for humans and logs); the
#: ``code`` is the stable contract clients and HTTP frontends branch on.
ERROR_CODES = (
    "bad_request",        # malformed payload, protocol violation, bad query/XML
    "invalid_page",       # pagination arithmetic rejected (PagingError)
    "unknown_document",   # request names a document the corpus doesn't hold
    "overloaded",         # admission control shed the request (retry later)
    "deadline_exceeded",  # the request missed its per-request deadline
    "not_found",          # HTTP frontend: no such endpoint
    "method_not_allowed", # HTTP frontend: endpoint exists, verb doesn't
    "internal",           # anything else — a server-side failure
)

#: the documented code → HTTP status mapping every wire frontend applies
#: (:mod:`repro.api.http` uses it verbatim).  Codes outside this table —
#: there are none today — fall back to 500.
HTTP_STATUS_BY_CODE = {
    "bad_request": 400,
    "invalid_page": 400,
    "unknown_document": 404,
    "not_found": 404,
    "method_not_allowed": 405,
    "overloaded": 503,
    "deadline_exceeded": 504,
    "internal": 500,
}

#: exception class → error code, most specific class first (the lookup
#: walks the exception's MRO, so subclasses inherit their parent's code
#: unless listed themselves).
_CODE_BY_EXCEPTION = (
    (UnknownDocumentError, "unknown_document"),
    (OverloadedError, "overloaded"),
    (DeadlineError, "deadline_exceeded"),
    (PagingError, "invalid_page"),
    (ProtocolError, "bad_request"),
    (QueryError, "bad_request"),
    (XMLParseError, "bad_request"),
)


def code_for_exception(exc: BaseException) -> str:
    """The machine-readable error code for a library exception."""
    for exc_type, code in _CODE_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return code
    return "internal"


def http_status_for_code(code: str | None) -> int:
    """The HTTP status an :class:`ErrorResponse` code maps onto (500 for
    unknown or missing codes — an uncoded error is a server-side failure)."""
    return HTTP_STATUS_BY_CODE.get(code, 500)


# ---------------------------------------------------------------------- #
# page tokens
# ---------------------------------------------------------------------- #
def encode_page_token(page: int) -> str:
    """The opaque continuation token naming a result page (1-based)."""
    if not isinstance(page, int) or isinstance(page, bool) or page < 1:
        raise ProtocolError(f"page number must be a positive integer, got {page!r}")
    return f"{_PAGE_TOKEN_PREFIX}{page}"


def decode_page_token(token: str) -> int:
    """The page number named by a token produced by :func:`encode_page_token`."""
    digits = token[len(_PAGE_TOKEN_PREFIX):] if isinstance(token, str) else ""
    if (
        not isinstance(token, str)
        or not token.startswith(_PAGE_TOKEN_PREFIX)
        # str.isdigit() alone admits unicode digits int() rejects (e.g.
        # superscripts) or re-interprets (Arabic-Indic); tokens are ASCII.
        or not digits.isascii()
        or not digits.isdigit()
    ):
        raise ProtocolError(f"malformed page token {token!r}")
    page = int(digits)
    if page < 1:
        raise ProtocolError(f"malformed page token {token!r}")
    return page


# ---------------------------------------------------------------------- #
# shared (de)serialisation helpers
# ---------------------------------------------------------------------- #
def _check_envelope(payload: dict[str, Any], expected_kind: str) -> None:
    if not isinstance(payload, dict):
        raise ProtocolError(f"payload must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != expected_kind:
        raise ProtocolError(f"expected payload kind {expected_kind!r}, got {kind!r}")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"unsupported schema_version {version!r} (this build speaks version {SCHEMA_VERSION})"
        )


def _reject_unknown_fields(
    payload: dict[str, Any], known: set[str], kind: str, envelope: bool = True
) -> None:
    """``envelope=False`` is for nested sub-objects (snippet payloads,
    batch entries) that carry no ``kind``/``schema_version`` of their own —
    those fields are then unknown like any other, not silently accepted."""
    allowed = known | ({"kind", "schema_version"} if envelope else set())
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ProtocolError(f"unknown field(s) in {kind!r} payload: {', '.join(unknown)}")


def _require(payload: dict[str, Any], name: str, kind: str) -> Any:
    if name not in payload:
        raise ProtocolError(f"{kind!r} payload is missing required field {name!r}")
    return payload[name]


def _meta_dict(payload: dict[str, Any], kind: str) -> dict[str, Any]:
    meta = payload.get("meta")
    if meta is None:
        return {}
    if not isinstance(meta, dict):
        raise ProtocolError(
            f"meta in {kind!r} payload must be a JSON object, got {type(meta).__name__}"
        )
    return meta


def _as_list(value: Any, name: str, kind: str) -> list[Any]:
    """Reject scalars where a JSON array is expected — without this, a
    string would silently explode into a tuple of characters downstream."""
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(
            f"{name} in {kind!r} payload must be a list, got {type(value).__name__}"
        )
    return list(value)


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchRequest:
    """One keyword query over one registered document.

    ``page``/``page_size`` paginate the (ranked, optionally ``limit``-ed)
    result list; responses carry a ``next_page`` token that can be fed to
    :meth:`with_page` for the follow-up request.  ``include_snippets=False``
    skips snippet generation entirely (cheaper, results only);
    ``include_meta=True`` asks the service to attach volatile serving
    metadata (timings, cache provenance) to the response.
    """

    kind: ClassVar[str] = "search"

    query: str
    document: str
    size_bound: int = DEFAULT_SIZE_BOUND
    limit: int | None = None
    construction: str = "xseek"
    use_cache: bool = True
    page: int = 1
    page_size: int | None = None
    include_snippets: bool = True
    include_meta: bool = False
    schema_version: int = SCHEMA_VERSION

    def validate(self) -> "SearchRequest":
        """Raise :class:`ProtocolError` on an ill-formed request; return self."""
        if not isinstance(self.query, str) or not self.query.strip():
            raise ProtocolError(f"query must be a non-empty string, got {self.query!r}")
        if not isinstance(self.document, str) or not self.document:
            raise ProtocolError(f"document must be a non-empty string, got {self.document!r}")
        if not isinstance(self.size_bound, int) or isinstance(self.size_bound, bool) or self.size_bound < 1:
            raise ProtocolError(f"size_bound must be a positive integer, got {self.size_bound!r}")
        if self.limit is not None and (
            not isinstance(self.limit, int) or isinstance(self.limit, bool) or self.limit < 0
        ):
            raise ProtocolError(f"limit must be a non-negative integer or null, got {self.limit!r}")
        if self.construction not in CONSTRUCTION_MODES:
            raise ProtocolError(
                f"unknown construction {self.construction!r}; expected one of {CONSTRUCTION_MODES}"
            )
        if not isinstance(self.page, int) or isinstance(self.page, bool) or self.page < 1:
            raise ProtocolError(f"page must be a positive integer, got {self.page!r}")
        if self.page_size is not None and (
            not isinstance(self.page_size, int) or isinstance(self.page_size, bool) or self.page_size < 1
        ):
            raise ProtocolError(f"page_size must be a positive integer or null, got {self.page_size!r}")
        # Flags must be real booleans: a JSON string like "false" is truthy
        # and would silently invert the client's intent if coerced.
        for flag in ("use_cache", "include_snippets", "include_meta"):
            value = getattr(self, flag)
            if not isinstance(value, bool):
                raise ProtocolError(f"{flag} must be a boolean, got {value!r}")
        if self.schema_version != SCHEMA_VERSION:
            raise ProtocolError(
                f"unsupported schema_version {self.schema_version!r} "
                f"(this build speaks version {SCHEMA_VERSION})"
            )
        return self

    def with_page(self, token_or_page: str | int) -> "SearchRequest":
        """The follow-up request for another page (token or page number)."""
        page = token_or_page if isinstance(token_or_page, int) else decode_page_token(token_or_page)
        return replace(self, page=page)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "query": self.query,
            "document": self.document,
            "size_bound": self.size_bound,
            "limit": self.limit,
            "construction": self.construction,
            "use_cache": self.use_cache,
            "page": self.page,
            "page_size": self.page_size,
            "include_snippets": self.include_snippets,
            "include_meta": self.include_meta,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SearchRequest":
        _check_envelope(payload, cls.kind)
        known = {f.name for f in fields(cls)}
        _reject_unknown_fields(payload, known, cls.kind)
        request = cls(
            query=_require(payload, "query", cls.kind),
            document=_require(payload, "document", cls.kind),
            size_bound=payload.get("size_bound", DEFAULT_SIZE_BOUND),
            limit=payload.get("limit"),
            construction=payload.get("construction", "xseek"),
            use_cache=payload.get("use_cache", True),
            page=payload.get("page", 1),
            page_size=payload.get("page_size"),
            include_snippets=payload.get("include_snippets", True),
            include_meta=payload.get("include_meta", False),
        )
        return request.validate()


@dataclass(frozen=True)
class BatchRequest:
    """Many keyword queries over many documents in one round trip.

    ``documents=None`` means every document registered in the serving
    corpus, in name order (resolved at execution time).  All queries share
    ``size_bound``/``limit``/``construction``; per-query overrides belong
    in individual :class:`SearchRequest`\\ s.
    """

    kind: ClassVar[str] = "batch"

    queries: tuple[str, ...]
    documents: tuple[str, ...] | None = None
    size_bound: int = DEFAULT_SIZE_BOUND
    limit: int | None = None
    construction: str = "xseek"
    use_cache: bool = True
    include_snippets: bool = True
    include_meta: bool = False
    schema_version: int = SCHEMA_VERSION

    def validate(self) -> "BatchRequest":
        # A bare string is iterable and would silently char-split into
        # one-letter queries; require a real sequence.
        if isinstance(self.queries, str) or not isinstance(self.queries, (list, tuple)):
            raise ProtocolError(
                f"queries must be a list of strings, got {type(self.queries).__name__}"
            )
        if not self.queries:
            raise ProtocolError("batch payload needs at least one query")
        probe = self.search_request(self.queries[0], "document")
        probe.validate()
        for query in self.queries:
            if not isinstance(query, str) or not query.strip():
                raise ProtocolError(f"every batch query must be a non-empty string, got {query!r}")
        if self.documents is not None:
            if isinstance(self.documents, str) or not isinstance(self.documents, (list, tuple)):
                raise ProtocolError(
                    f"documents must be a list of strings or null, got {type(self.documents).__name__}"
                )
            for document in self.documents:
                if not isinstance(document, str) or not document:
                    raise ProtocolError(
                        f"every batch document must be a non-empty string, got {document!r}"
                    )
        return self

    def search_request(self, query: str, document: str) -> SearchRequest:
        """The equivalent single-query request for one (query, document)."""
        return SearchRequest(
            query=query,
            document=document,
            size_bound=self.size_bound,
            limit=self.limit,
            construction=self.construction,
            use_cache=self.use_cache,
            include_snippets=self.include_snippets,
            include_meta=self.include_meta,
            schema_version=self.schema_version,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "queries": list(self.queries),
            "documents": list(self.documents) if self.documents is not None else None,
            "size_bound": self.size_bound,
            "limit": self.limit,
            "construction": self.construction,
            "use_cache": self.use_cache,
            "include_snippets": self.include_snippets,
            "include_meta": self.include_meta,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BatchRequest":
        _check_envelope(payload, cls.kind)
        known = {f.name for f in fields(cls)}
        _reject_unknown_fields(payload, known, cls.kind)
        queries = _as_list(_require(payload, "queries", cls.kind), "queries", cls.kind)
        documents = payload.get("documents")
        if documents is not None:
            documents = _as_list(documents, "documents", cls.kind)
        request = cls(
            queries=tuple(queries),
            documents=tuple(documents) if documents is not None else None,
            size_bound=payload.get("size_bound", DEFAULT_SIZE_BOUND),
            limit=payload.get("limit"),
            construction=payload.get("construction", "xseek"),
            use_cache=payload.get("use_cache", True),
            include_snippets=payload.get("include_snippets", True),
            include_meta=payload.get("include_meta", False),
        )
        return request.validate()


#: document-lifecycle actions accepted on the wire
UPDATE_ACTIONS = ("update", "remove")


@dataclass(frozen=True)
class UpdateRequest:
    """A document-lifecycle operation: upsert a document or remove it.

    ``action="update"`` replaces (or, when the name is unknown, registers)
    the document with the XML carried in ``xml``; the service applies
    text-only edits incrementally (posting-level deltas, targeted cache
    invalidation) and falls back to a full re-index for structural
    changes.  ``action="remove"`` unregisters the document (``xml`` must
    be omitted).  ``include_meta`` attaches volatile serving metadata
    (seconds, cache invalidation counts) to the response.
    """

    kind: ClassVar[str] = "update"

    document: str
    xml: str | None = None
    action: str = "update"
    include_meta: bool = False
    schema_version: int = SCHEMA_VERSION

    def validate(self) -> "UpdateRequest":
        """Raise :class:`ProtocolError` on an ill-formed request; return self."""
        if not isinstance(self.document, str) or not self.document:
            raise ProtocolError(f"document must be a non-empty string, got {self.document!r}")
        if self.action not in UPDATE_ACTIONS:
            raise ProtocolError(
                f"unknown update action {self.action!r}; expected one of {UPDATE_ACTIONS}"
            )
        if self.action == "update":
            if not isinstance(self.xml, str) or not self.xml.strip():
                raise ProtocolError(
                    f"an {self.action!r} request needs a non-empty xml document, got {self.xml!r}"
                )
        elif self.xml is not None:
            raise ProtocolError("a 'remove' request must not carry an xml document")
        if not isinstance(self.include_meta, bool):
            raise ProtocolError(f"include_meta must be a boolean, got {self.include_meta!r}")
        if self.schema_version != SCHEMA_VERSION:
            raise ProtocolError(
                f"unsupported schema_version {self.schema_version!r} "
                f"(this build speaks version {SCHEMA_VERSION})"
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "document": self.document,
            "xml": self.xml,
            "action": self.action,
            "include_meta": self.include_meta,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "UpdateRequest":
        _check_envelope(payload, cls.kind)
        known = {f.name for f in fields(cls)}
        _reject_unknown_fields(payload, known, cls.kind)
        request = cls(
            document=_require(payload, "document", cls.kind),
            xml=payload.get("xml"),
            action=payload.get("action", "update"),
            include_meta=payload.get("include_meta", False),
        )
        return request.validate()


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SnippetPayload:
    """One result on a response page: ranking metadata plus its snippet.

    ``snippet_edges`` / ``covered_items`` / ``coverable_items`` / ``text``
    are ``None`` when the request asked for results only
    (``include_snippets=False``).
    """

    kind: ClassVar[str] = "snippet"

    result_id: int
    score: float
    root: str
    root_tag: str
    matched_keywords: tuple[str, ...]
    result_edges: int
    snippet_edges: int | None = None
    covered_items: int | None = None
    coverable_items: int | None = None
    text: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "result_id": self.result_id,
            "score": self.score,
            "root": self.root,
            "root_tag": self.root_tag,
            "matched_keywords": list(self.matched_keywords),
            "result_edges": self.result_edges,
            "snippet_edges": self.snippet_edges,
            "covered_items": self.covered_items,
            "coverable_items": self.coverable_items,
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SnippetPayload":
        if not isinstance(payload, dict):
            raise ProtocolError(f"snippet payload must be a JSON object, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        _reject_unknown_fields(payload, known, cls.kind, envelope=False)
        return cls(
            result_id=_require(payload, "result_id", cls.kind),
            score=_require(payload, "score", cls.kind),
            root=_require(payload, "root", cls.kind),
            root_tag=_require(payload, "root_tag", cls.kind),
            matched_keywords=tuple(
                _as_list(payload.get("matched_keywords", ()), "matched_keywords", cls.kind)
            ),
            result_edges=_require(payload, "result_edges", cls.kind),
            snippet_edges=payload.get("snippet_edges"),
            covered_items=payload.get("covered_items"),
            coverable_items=payload.get("coverable_items"),
            text=payload.get("text"),
        )


@dataclass(frozen=True)
class SearchResponse:
    """One page of results for one :class:`SearchRequest`.

    ``total_results`` counts matches before ``limit``/pagination;
    ``next_page`` is a continuation token (see
    :meth:`SearchRequest.with_page`) or ``None`` on the last page.

    ``from_cache``/``timings``/``seconds`` are volatile serving metadata:
    excluded from equality, serialised only when the originating request
    set ``include_meta``, so the default wire form is deterministic.
    ``shard`` is serving provenance stamped by the cluster router
    (:class:`repro.cluster.ClusterService`): the id of the shard that
    served the response.  It is ``None`` for single-corpus services and is
    emitted in the ``meta`` block only when set, so the meta wire form of
    a non-sharded service is unchanged.
    ``outcome`` is a server-side handle on the raw
    :class:`~repro.system.SearchOutcome` (never serialised) that lets the
    deprecated ``Corpus``/``ExtractSystem`` shims return their legacy types
    without re-executing.
    """

    kind: ClassVar[str] = "search_response"

    query: str
    document: str
    keywords: tuple[str, ...]
    algorithm: str
    total_results: int
    page: int
    page_size: int | None
    next_page: str | None
    results: tuple[SnippetPayload, ...]
    schema_version: int = SCHEMA_VERSION
    from_cache: bool = field(default=False, compare=False)
    seconds: float = field(default=0.0, compare=False)
    timings: dict[str, float] = field(default_factory=dict, compare=False, repr=False)
    shard: int | None = field(default=None, compare=False)
    outcome: "SearchOutcome | None" = field(default=None, compare=False, repr=False)

    def to_dict(self, include_meta: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "query": self.query,
            "document": self.document,
            "keywords": list(self.keywords),
            "algorithm": self.algorithm,
            "total_results": self.total_results,
            "page": self.page,
            "page_size": self.page_size,
            "next_page": self.next_page,
            "results": [result.to_dict() for result in self.results],
        }
        if include_meta:
            meta: dict[str, Any] = {
                "from_cache": self.from_cache,
                "seconds": self.seconds,
                "timings": dict(self.timings),
            }
            if self.shard is not None:
                meta["shard"] = self.shard
            payload["meta"] = meta
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SearchResponse":
        _check_envelope(payload, cls.kind)
        known = {
            "query", "document", "keywords", "algorithm", "total_results",
            "page", "page_size", "next_page", "results", "meta",
        }
        _reject_unknown_fields(payload, known, cls.kind)
        meta = _meta_dict(payload, cls.kind)
        results = _as_list(_require(payload, "results", cls.kind), "results", cls.kind)
        return cls(
            query=_require(payload, "query", cls.kind),
            document=_require(payload, "document", cls.kind),
            keywords=tuple(_as_list(payload.get("keywords", ()), "keywords", cls.kind)),
            algorithm=_require(payload, "algorithm", cls.kind),
            total_results=_require(payload, "total_results", cls.kind),
            page=payload.get("page", 1),
            page_size=payload.get("page_size"),
            next_page=payload.get("next_page"),
            results=tuple(SnippetPayload.from_dict(result) for result in results),
            from_cache=meta.get("from_cache", False),
            seconds=meta.get("seconds", 0.0),
            timings=dict(meta.get("timings", {})),
            shard=meta.get("shard"),
        )


@dataclass(frozen=True)
class BatchEntry:
    """One batch query's responses, in batch document order."""

    kind: ClassVar[str] = "batch_entry"

    query: str
    responses: tuple[SearchResponse, ...]
    seconds: float = field(default=0.0, compare=False)

    @property
    def total_results(self) -> int:
        return sum(response.total_results for response in self.responses)

    def to_dict(self, include_meta: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query": self.query,
            "responses": [response.to_dict(include_meta=include_meta) for response in self.responses],
        }
        if include_meta:
            payload["meta"] = {"seconds": self.seconds}
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BatchEntry":
        if not isinstance(payload, dict):
            raise ProtocolError(f"batch entry must be a JSON object, got {type(payload).__name__}")
        _reject_unknown_fields(payload, {"query", "responses", "meta"}, cls.kind, envelope=False)
        responses = _as_list(_require(payload, "responses", cls.kind), "responses", cls.kind)
        meta = _meta_dict(payload, cls.kind)
        return cls(
            query=_require(payload, "query", cls.kind),
            responses=tuple(SearchResponse.from_dict(response) for response in responses),
            seconds=meta.get("seconds", 0.0),
        )


@dataclass(frozen=True)
class BatchResponse:
    """The response to a :class:`BatchRequest`: one entry per query."""

    kind: ClassVar[str] = "batch_response"

    entries: tuple[BatchEntry, ...]
    documents: tuple[str, ...]
    schema_version: int = SCHEMA_VERSION

    @property
    def total_results(self) -> int:
        return sum(entry.total_results for entry in self.entries)

    def to_dict(self, include_meta: bool = False) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "documents": list(self.documents),
            "entries": [entry.to_dict(include_meta=include_meta) for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BatchResponse":
        _check_envelope(payload, cls.kind)
        _reject_unknown_fields(payload, {"entries", "documents"}, cls.kind)
        entries = _as_list(_require(payload, "entries", cls.kind), "entries", cls.kind)
        return cls(
            entries=tuple(BatchEntry.from_dict(entry) for entry in entries),
            documents=tuple(
                _as_list(_require(payload, "documents", cls.kind), "documents", cls.kind)
            ),
        )


@dataclass(frozen=True)
class UpdateResponse:
    """The outcome of an :class:`UpdateRequest`.

    ``action`` reports what actually happened (``updated``, ``added`` or
    ``removed`` — an upsert of an unknown document comes back ``added``);
    ``incremental`` whether the edit was applied as posting-level deltas;
    ``changed_nodes``/``changed_terms`` the size of that delta.  Volatile
    serving metadata (wall-clock seconds, cache invalidation counters —
    functions of serving history, not of the update) lives in the opt-in
    ``meta`` block so the default wire form stays deterministic.
    """

    kind: ClassVar[str] = "update_response"

    document: str
    action: str
    incremental: bool
    nodes: int
    changed_nodes: int = 0
    changed_terms: int = 0
    structural_reason: str | None = None
    schema_version: int = SCHEMA_VERSION
    seconds: float = field(default=0.0, compare=False)
    cache_entries_kept: int = field(default=0, compare=False)
    cache_entries_invalidated: int = field(default=0, compare=False)
    shard: int | None = field(default=None, compare=False)

    def to_dict(self, include_meta: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "document": self.document,
            "action": self.action,
            "incremental": self.incremental,
            "nodes": self.nodes,
            "changed_nodes": self.changed_nodes,
            "changed_terms": self.changed_terms,
            "structural_reason": self.structural_reason,
        }
        if include_meta:
            meta: dict[str, Any] = {
                "seconds": self.seconds,
                "cache_entries_kept": self.cache_entries_kept,
                "cache_entries_invalidated": self.cache_entries_invalidated,
            }
            if self.shard is not None:
                meta["shard"] = self.shard
            payload["meta"] = meta
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "UpdateResponse":
        _check_envelope(payload, cls.kind)
        known = {
            "document", "action", "incremental", "nodes",
            "changed_nodes", "changed_terms", "structural_reason", "meta",
        }
        _reject_unknown_fields(payload, known, cls.kind)
        meta = _meta_dict(payload, cls.kind)
        return cls(
            document=_require(payload, "document", cls.kind),
            action=_require(payload, "action", cls.kind),
            incremental=_require(payload, "incremental", cls.kind),
            nodes=_require(payload, "nodes", cls.kind),
            changed_nodes=payload.get("changed_nodes", 0),
            changed_terms=payload.get("changed_terms", 0),
            structural_reason=payload.get("structural_reason"),
            seconds=meta.get("seconds", 0.0),
            cache_entries_kept=meta.get("cache_entries_kept", 0),
            cache_entries_invalidated=meta.get("cache_entries_invalidated", 0),
            shard=meta.get("shard"),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A structured failure: error class, machine-readable code, message.

    ``error`` is the :mod:`repro.errors` class name (``QueryError``,
    ``ProtocolError``, ...) — useful in logs; ``code`` is the stable
    machine-readable contract (one of :data:`ERROR_CODES`) that clients
    branch on and :data:`HTTP_STATUS_BY_CODE` maps to an HTTP status.
    ``request`` echoes the offending request payload when available.

    ``code`` is optional on :meth:`from_dict` so payloads produced by
    pre-code builds still parse (they come back with ``code=None``).
    """

    kind: ClassVar[str] = "error"

    error: str
    message: str
    request: dict[str, Any] | None = None
    code: str | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": self.schema_version,
            "error": self.error,
            "code": self.code,
            "message": self.message,
            "request": self.request,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ErrorResponse":
        _check_envelope(payload, cls.kind)
        _reject_unknown_fields(payload, {"error", "code", "message", "request"}, cls.kind)
        return cls(
            error=_require(payload, "error", cls.kind),
            message=_require(payload, "message", cls.kind),
            request=payload.get("request"),
            code=payload.get("code"),
        )

    @classmethod
    def from_exception(cls, exc: BaseException, request: dict[str, Any] | None = None) -> "ErrorResponse":
        return cls(
            error=type(exc).__name__,
            message=str(exc),
            request=request,
            code=code_for_exception(exc),
        )


# ---------------------------------------------------------------------- #
# dispatch
# ---------------------------------------------------------------------- #
_REQUEST_KINDS = {
    SearchRequest.kind: SearchRequest,
    BatchRequest.kind: BatchRequest,
    UpdateRequest.kind: UpdateRequest,
}
_RESPONSE_KINDS = {
    SearchResponse.kind: SearchResponse,
    BatchResponse.kind: BatchResponse,
    UpdateResponse.kind: UpdateResponse,
    ErrorResponse.kind: ErrorResponse,
}


def parse_request(payload: dict[str, Any]) -> "SearchRequest | BatchRequest | UpdateRequest":
    """Parse a request payload, dispatching on its ``kind`` field."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    # The isinstance guard keeps an unhashable kind (a JSON array/object)
    # from blowing up the dict lookup with a TypeError a wire frontend
    # could never turn into a structured error response.
    parser = _REQUEST_KINDS.get(kind) if isinstance(kind, str) else None
    if parser is None:
        raise ProtocolError(
            f"unknown request kind {kind!r}; expected one of {sorted(_REQUEST_KINDS)}"
        )
    return parser.from_dict(payload)


def parse_response(
    payload: dict[str, Any],
) -> "SearchResponse | BatchResponse | UpdateResponse | ErrorResponse":
    """Parse a response payload, dispatching on its ``kind`` field."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"response must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    parser = _RESPONSE_KINDS.get(kind) if isinstance(kind, str) else None
    if parser is None:
        raise ProtocolError(
            f"unknown response kind {kind!r}; expected one of {sorted(_RESPONSE_KINDS)}"
        )
    return parser.from_dict(payload)
