"""The transport-agnostic serving contract: :class:`ServingBackend`.

Every serving facade of the reproduction — the single-corpus
:class:`repro.api.SnippetService`, the sharded
:class:`repro.cluster.ClusterService`, every gateway middleware
(:mod:`repro.api.gateway`) and the HTTP client
(:class:`repro.api.client.ServiceClient`) — implements one checked
interface:

* ``execute`` / ``execute_batch`` / ``execute_update`` — typed protocol
  requests in, typed responses out; failures become
  :class:`~repro.api.protocol.ErrorResponse`, never an exception, which is
  exactly what a wire endpoint wants;
* ``handle_dict`` / ``handle_text`` / ``handle_json`` — the plain-JSON
  endpoint surface a transport (CLI, HTTP server) drives;
* ``capabilities`` / ``stats`` — introspection: what the backend serves
  and how it has been doing, both JSON-ready;
* ``close`` — release resources (idempotent).

The interface is a :func:`typing.runtime_checkable`
:class:`typing.Protocol`, so ``isinstance(backend, ServingBackend)`` holds
for anything with the right surface — no inheritance required.  What used
to be the ad-hoc ``JsonServing`` mixin survives as
:class:`ServingBackendBase`, the convenience base that derives the whole
JSON surface (and default introspection) from the three ``execute*``
methods; ``JsonServing`` is now an alias of it.

This seam is what lets frontends and backends scale independently: the
HTTP frontend (:mod:`repro.api.http`) sees only a :class:`ServingBackend`,
so a single corpus, an N-shard cluster, a middleware-wrapped gateway stack
or a remote client all plug in behind the same contract.
"""

from __future__ import annotations

import json
from typing import Any, Protocol, runtime_checkable

from repro.api.protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    UpdateRequest,
    UpdateResponse,
    parse_request,
)
from repro.errors import ExtractError, ProtocolError

#: every request kind a full backend serves (capabilities advertise these)
REQUEST_KINDS = (SearchRequest.kind, BatchRequest.kind, UpdateRequest.kind)

#: version of the unified stats() payload shape (see :func:`stats_envelope`)
STATS_SCHEMA_VERSION = 1


def stats_envelope(backend_name: str, **sections: Any) -> dict[str, Any]:
    """The unified ``stats()`` shape every serving facade returns.

    Every snapshot starts from the same envelope::

        {"schema_version": 1, "backend": "<backend_name>", ...sections}

    so clients can consume :class:`~repro.api.SnippetService`,
    :class:`~repro.cluster.ClusterService`,
    :class:`~repro.cluster.remote.RemoteClusterService` and a
    :class:`~repro.api.client.ServiceClient` (which passes the served
    backend's envelope through) uniformly: dispatch on ``backend``, check
    ``schema_version``, then read the optional sections (``documents``,
    ``caches``, ``shards``, and the gateway-merged ``requests`` /
    ``admission``).  Middleware stages merge their sections *into* the
    inner envelope rather than wrapping it, so one flat object describes
    the whole stack.
    """
    return {
        "schema_version": STATS_SCHEMA_VERSION,
        "backend": backend_name,
        **sections,
    }


@runtime_checkable
class ServingBackend(Protocol):
    """The transport-agnostic serving contract (structural, checked).

    ``isinstance(obj, ServingBackend)`` verifies the surface is present;
    the semantic contract — ``execute*`` never raise library errors, the
    JSON endpoints are total functions of their input — is pinned by the
    shared test suites, not the type checker.
    """

    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        """Serve one search request; failures become an ErrorResponse."""
        ...  # pragma: no cover - protocol stub

    def execute_batch(self, batch: BatchRequest) -> BatchResponse | ErrorResponse:
        """Serve one batch request; failures become an ErrorResponse."""
        ...  # pragma: no cover - protocol stub

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        """Serve one lifecycle request; failures become an ErrorResponse."""
        ...  # pragma: no cover - protocol stub

    def handle_dict(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one JSON-style request object; never raises library errors."""
        ...  # pragma: no cover - protocol stub

    def handle_text(self, text: str) -> dict[str, Any]:
        """Serve one JSON document, returning the response as a dict."""
        ...  # pragma: no cover - protocol stub

    def handle_json(self, text: str) -> str:
        """Serve one JSON document (string in, string out)."""
        ...  # pragma: no cover - protocol stub

    def capabilities(self) -> dict[str, Any]:
        """What this backend serves (JSON-ready; stable keys, cheap call)."""
        ...  # pragma: no cover - protocol stub

    def stats(self) -> dict[str, Any]:
        """Serving counters accumulated so far (JSON-ready)."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...  # pragma: no cover - protocol stub


class ServingBackendBase:
    """Everything a :class:`ServingBackend` needs beyond ``execute*``.

    Subclasses implement ``execute`` / ``execute_batch`` /
    ``execute_update`` (returning protocol responses, never raising library
    errors) and inherit the plain-JSON endpoints plus default
    introspection — :class:`repro.api.SnippetService`, the sharded
    :class:`repro.cluster.ClusterService` and every gateway middleware
    speak byte-identical JSON through this one implementation, which is
    what makes them interchangeable at the wire level.
    """

    #: short backend name surfaced by :meth:`capabilities` (subclasses set it)
    backend_name: str = "backend"

    def handle_dict(
        self,
        payload: dict[str, Any],
        request: SearchRequest | BatchRequest | UpdateRequest | None = None,
    ) -> dict[str, Any]:
        """Serve one JSON-style request object; never raises library errors.

        Parses the payload (dispatching on ``kind``), executes it, and
        returns the response as a plain dict — with volatile serving
        metadata attached only when the request set ``include_meta``.
        ``request`` lets a frontend that already parsed the payload (for
        fail-fast validation) skip the re-parse.  Malformed payloads — not
        a JSON object, unknown kind, ill-typed fields — come back as a
        structured ``bad_request`` error response.
        """
        try:
            if request is None:
                request = parse_request(payload)
        except ExtractError as error:
            echoed = payload if isinstance(payload, dict) else None
            return self._reject(error, echoed)
        if isinstance(request, BatchRequest):
            response = self.execute_batch(request)
        elif isinstance(request, UpdateRequest):
            response = self.execute_update(request)
        else:
            response = self.execute(request)
        if isinstance(response, ErrorResponse):
            return response.to_dict()
        return response.to_dict(include_meta=request.include_meta)

    def handle_text(self, text: str) -> dict[str, Any]:
        """Serve one JSON document, returning the response as a dict.

        Frontends that format the response themselves (the CLI's
        ``--pretty`` flag, the HTTP server) use this to avoid a parse →
        serialise → re-parse round trip; :meth:`handle_json` is the
        string-in/string-out convenience over it.
        """
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError, ValueError) as error:
            return self._reject(ProtocolError(f"request is not valid JSON: {error}"), None)
        return self.handle_dict(payload)

    def handle_json(self, text: str) -> str:
        """Serve one JSON document (the wire entry point)."""
        return json.dumps(self.handle_text(text), sort_keys=True)

    def _reject(self, error: ExtractError, request: dict[str, Any] | None) -> dict[str, Any]:
        """Shape a payload-level rejection (malformed JSON, unknown kind,
        ill-typed fields) — the one funnel both JSON endpoints use, so an
        observing middleware can override it to count rejections that
        never became a typed request."""
        return ErrorResponse.from_exception(error, request=request).to_dict()

    # ------------------------------------------------------------------ #
    # introspection & lifecycle defaults
    # ------------------------------------------------------------------ #
    def capabilities(self) -> dict[str, Any]:
        return {"backend": self.backend_name, "kinds": list(REQUEST_KINDS)}

    def stats(self) -> dict[str, Any]:
        return {}

    def close(self) -> None:
        """Release backend resources (idempotent); base holds none."""

    def __enter__(self) -> "ServingBackendBase":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
