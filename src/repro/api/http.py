"""The asyncio HTTP/1.1 JSON frontend over any :class:`ServingBackend`.

The original eXtract demo was a web service (§4); this module is the
reproduction's network face — stdlib ``asyncio`` only, no third-party
dependencies.  Versioned endpoints:

===========================  =====================================================
``POST /v1/search``          one :class:`~repro.api.SearchRequest` payload
``POST /v1/batch``           one :class:`~repro.api.BatchRequest` payload
``POST /v1/update``          one :class:`~repro.api.UpdateRequest` payload
``GET /v1/health``           liveness + backend capabilities
``GET /v1/stats``            the backend's serving counters
===========================  =====================================================

A server built with ``replicate_backend=`` additionally answers
``POST /v1/replicate`` (cluster replication ops — see
:mod:`repro.cluster.remote`); the endpoint bypasses ``backend`` and its
middleware by design and stays out of the public endpoint tables.

Contract: for a well-routed request the response **body is byte-identical
to the in-process** ``backend.handle_json(body)`` — the HTTP layer adds
transport, never semantics.  Protocol failures stay structured
:class:`~repro.api.protocol.ErrorResponse` bodies, with the HTTP status
derived from their machine-readable ``code`` via the documented
:data:`~repro.api.protocol.HTTP_STATUS_BY_CODE` mapping (``bad_request`` →
400, ``unknown_document`` → 404, ``overloaded`` → 503,
``deadline_exceeded`` → 504, ...).

The event loop never runs backend work: blocking calls go through the
executor seam (:meth:`repro.api.executors.Executor.submit` +
``asyncio.wrap_future``), by default a
:class:`~repro.api.executors.ConcurrentExecutor` thread pool — pass a
:class:`~repro.api.executors.SerialExecutor` to serialise the whole server
(useful for deterministic tests).

Two ways to run it::

    # embedded in an asyncio program
    server = HttpServer(backend, port=8080)
    await server.serve_async()

    # threaded, from synchronous code (tests, the CLI `serve` command)
    with HttpServer(backend, port=0) as server:
        print(server.port)   # the bound port
        ...                  # server answers until the with-block exits
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from repro.api.backend import ServingBackend
from repro.api.executors import ConcurrentExecutor, Executor
from repro.api.protocol import (
    BatchRequest,
    ErrorResponse,
    SearchRequest,
    UpdateRequest,
    code_for_exception,
    http_status_for_code,
)
from repro.errors import ExtractError, ProtocolError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TRACE_SPANS_HEADER,
    Trace,
    TraceBuffer,
    activate,
    parse_trace_header,
)

#: request kind expected by each POST endpoint
POST_ENDPOINTS = {
    "/v1/search": SearchRequest.kind,
    "/v1/batch": BatchRequest.kind,
    "/v1/update": UpdateRequest.kind,
}

GET_ENDPOINTS = ("/v1/health", "/v1/stats", "/v1/metrics", "/v1/trace")

#: traces are addressed by id under this prefix (``GET /v1/trace/<id>``)
TRACE_PREFIX = "/v1/trace/"

#: most recent traces listed by a bare ``GET /v1/trace``
TRACE_LIST_COUNT = 10

#: the replication endpoint, served only when the server was built with a
#: ``replicate_backend``.  Deliberately NOT in :data:`POST_ENDPOINTS`:
#: replication is cluster plumbing, not part of the public protocol
#: surface (it does not appear in 404 listings, kind routing or the
#: client's endpoint table for requests).
REPLICATE_ENDPOINT = "/v1/replicate"

#: largest accepted request body; a bound, not a tuning knob — one XML
#: document per update request easily fits.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: largest accepted request line + header block
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_body(message: str, code: str, request: dict[str, Any] | None = None) -> dict[str, Any]:
    """A transport-level failure in the same ErrorResponse wire shape the
    protocol uses everywhere else, so clients parse exactly one format."""
    return ErrorResponse(
        error="ProtocolError", message=message, request=request, code=code
    ).to_dict()


def _discover_obs(
    backend: ServingBackend,
) -> tuple[MetricsRegistry | None, TraceBuffer | None]:
    """Walk the middleware chain for the stack's registry + trace buffer."""
    stage: Any = backend
    seen = 0
    while stage is not None and seen < 32:
        registry = getattr(stage, "registry", None)
        buffer = getattr(stage, "trace_buffer", None)
        if isinstance(registry, MetricsRegistry) or isinstance(buffer, TraceBuffer):
            return (
                registry if isinstance(registry, MetricsRegistry) else None,
                buffer if isinstance(buffer, TraceBuffer) else None,
            )
        stage = getattr(stage, "inner", None)
        seen += 1
    return None, None


class HttpServer:
    """Serve a :class:`ServingBackend` over HTTP/1.1 (keep-alive, JSON).

    ``port=0`` binds an ephemeral port; :attr:`port` holds the real one
    once the server is up.  ``executor`` is the blocking-call seam
    (defaults to a :class:`ConcurrentExecutor`; owned executors are closed
    with the server).  ``max_requests`` stops the server after N served
    requests — the hook scripted smoke runs and the CLI use for bounded
    serving.
    """

    def __init__(
        self,
        backend: ServingBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Executor | None = None,
        max_requests: int | None = None,
        replicate_backend: Any | None = None,
        registry: MetricsRegistry | None = None,
        trace_buffer: TraceBuffer | None = None,
    ):
        self.backend = backend
        #: a :class:`~repro.cluster.remote.ShardBackend` (anything with a
        #: ``handle_replicate(payload) -> dict``) serving POST
        #: /v1/replicate.  Replication deliberately bypasses ``backend`` —
        #: usually a gateway-wrapped stack — so admission control shedding
        #: reads can never stall the primary→replica delta stream.
        self.replicate_backend = replicate_backend
        self.host = host
        self.port = port
        self.executor = executor if executor is not None else ConcurrentExecutor(max_workers=8)
        self._owns_executor = executor is None
        self.max_requests = max_requests
        self.requests_served = 0
        self._count_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        # The observability surface (GET /v1/metrics, GET /v1/trace) is
        # discovered from the backend stack when not passed explicitly —
        # a gateway-built stack exposes both on its tracing stage.
        if registry is None or trace_buffer is None:
            found_registry, found_buffer = _discover_obs(backend)
            registry = registry if registry is not None else found_registry
            trace_buffer = trace_buffer if trace_buffer is not None else found_buffer
        self.registry = registry
        self.trace_buffer = trace_buffer

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _serve_payload(
        self,
        method: str,
        path: str,
        body: str,
        query: str = "",
        trace_request_id: str | None = None,
    ) -> tuple[int, "dict[str, Any] | str", dict[str, str]]:
        """One request → (status, response dict or raw text, extra headers).
        Runs on an executor worker — everything here may block."""
        if path == REPLICATE_ENDPOINT and self.replicate_backend is not None:
            status, payload = self._serve_replicate(method, body)
            return status, payload, {}
        if path.startswith(TRACE_PREFIX):
            return self._serve_trace(method, path[len(TRACE_PREFIX) :])
        if path not in POST_ENDPOINTS and path not in GET_ENDPOINTS:
            status, payload = self._route_miss(method, path)
            return status, payload, {}
        if method == "GET":
            if path == "/v1/health":
                return 200, {"status": "ok", "backend": self.backend.capabilities()}, {}
            if path == "/v1/stats":
                return 200, self.backend.stats(), {}
            if path == "/v1/metrics":
                return self._serve_metrics(query)
            if path == "/v1/trace":
                return self._serve_trace(method, None)
        if method != "POST" or path not in POST_ENDPOINTS:
            # The endpoint exists but not under this verb — 405, distinct
            # from the 404 a missing path gets (the documented semantics
            # of the two codes).
            allowed = "POST" if path in POST_ENDPOINTS else "GET"
            return (
                405,
                _error_body(
                    f"method {method} is not allowed on {path}; use {allowed}",
                    code="method_not_allowed",
                ),
                {},
            )
        if trace_request_id is None:
            status, payload = self._serve_post(path, body)
            return status, payload, {}
        # An X-Repro-Trace header joins this server into the caller's
        # trace: the backend records spans under the propagated
        # request_id, and the recorded spans ship back in a response
        # header — the response *body* stays byte-identical.
        trace = Trace(request_id=trace_request_id, process=f"server:{self.port}")
        with activate(trace):
            with trace.span(f"http:{path}"):
                status, payload = self._serve_post(path, body)
        if self.trace_buffer is not None:
            self.trace_buffer.put(trace)
        spans = json.dumps(trace.to_wire()["spans"], separators=(",", ":"))
        return status, payload, {TRACE_SPANS_HEADER: spans}

    def _serve_post(self, path: str, body: str) -> tuple[int, dict[str, Any]]:
        """Serve one protocol POST (search/batch/update) via the backend."""
        expected_kind = POST_ENDPOINTS[path]
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, ValueError):
            # handle_text reproduces the canonical invalid-JSON error.
            response = self.backend.handle_text(body)
        else:
            if isinstance(payload, dict):
                kind = payload.get("kind")
                # Only a *valid but different* kind is a misroute; unknown
                # or ill-typed kinds fall through to the backend, whose
                # canonical structured error keeps HTTP bytes identical to
                # handle_json.
                if kind != expected_kind and kind in POST_ENDPOINTS.values():
                    return 400, _error_body(
                        f"endpoint {path} serves kind {expected_kind!r}, "
                        f"got {kind!r} (POST /v1/<kind> must match the payload kind)",
                        code="bad_request",
                        request=payload,
                    )
            # Already parsed — hand the object over directly; re-parsing
            # the text would deserialise every request body twice.
            response = self.backend.handle_dict(payload)
        status = 200
        if response.get("kind") == ErrorResponse.kind:
            status = http_status_for_code(response.get("code"))
        return status, response

    def _serve_metrics(
        self, query: str
    ) -> tuple[int, "dict[str, Any] | str", dict[str, str]]:
        """``GET /v1/metrics`` — versioned JSON, or Prometheus text with
        ``?format=prometheus``."""
        if self.registry is None:
            return (
                404,
                _error_body(
                    "this server exports no metrics registry "
                    "(serve the backend through build_gateway)",
                    code="not_found",
                ),
                {},
            )
        wants_prometheus = any(
            part == "format=prometheus" for part in query.split("&")
        )
        if wants_prometheus:
            return 200, self.registry.render_prometheus(), {}
        return 200, self.registry.snapshot(), {}

    def _serve_trace(
        self, method: str, request_id: str | None
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """``GET /v1/trace`` (newest list) and ``GET /v1/trace/<id>``."""
        if method != "GET":
            return (
                405,
                _error_body(
                    f"method {method} is not allowed on /v1/trace; use GET",
                    code="method_not_allowed",
                ),
                {},
            )
        if self.trace_buffer is None:
            return (
                404,
                _error_body(
                    "this server keeps no trace buffer "
                    "(serve the backend through build_gateway)",
                    code="not_found",
                ),
                {},
            )
        if request_id is None:
            return 200, {"traces": self.trace_buffer.newest(TRACE_LIST_COUNT)}, {}
        trace = self.trace_buffer.get(request_id)
        if trace is None:
            return (
                404,
                _error_body(
                    f"no buffered trace {request_id!r} (the ring keeps the "
                    f"newest {self.trace_buffer.capacity})",
                    code="not_found",
                ),
                {},
            )
        return 200, trace, {}

    def _serve_replicate(self, method: str, body: str) -> tuple[int, dict[str, Any]]:
        """Serve one replication op; failures stay structured ErrorResponses."""
        if method != "POST":
            return 405, _error_body(
                f"method {method} is not allowed on {REPLICATE_ENDPOINT}; use POST",
                code="method_not_allowed",
            )
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, ValueError) as exc:
            return 400, _error_body(
                f"replication body is not valid JSON: {exc}", code="bad_request"
            )
        try:
            return 200, self.replicate_backend.handle_replicate(payload)
        except ExtractError as error:
            code = code_for_exception(error)
            echoed = payload if isinstance(payload, dict) else None
            return http_status_for_code(code), ErrorResponse.from_exception(
                error, request=echoed
            ).to_dict()

    def _route_miss(self, method: str, path: str) -> tuple[int, dict[str, Any]]:
        known = sorted([*POST_ENDPOINTS, *GET_ENDPOINTS])
        return 404, _error_body(
            f"no endpoint {method} {path}; available: {', '.join(known)}",
            code="not_found",
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict[str, Any] | str",
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):
            # Raw text export (the Prometheus exposition format).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            # sort_keys=True matches handle_json exactly — the byte-identity
            # contract the round-trip tests pin down.
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        extra = ""
        for name, value in (extra_headers or {}).items():
            extra += f"{name}: {value}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one request; None on clean EOF (client closed keep-alive)."""
        try:
            request_line = await reader.readline()
        except ConnectionError:
            return None
        except ValueError as exc:
            # The StreamReader raises ValueError when a line exceeds its
            # buffer limit — an oversized request line is a 400, not a
            # dropped connection.
            raise ProtocolError(f"HTTP request line exceeds the server limit: {exc}") from exc
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ProtocolError(f"malformed HTTP request line: {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError as exc:
                raise ProtocolError(f"HTTP header exceeds the server limit: {exc}") from exc
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise ProtocolError("HTTP header block exceeds the server limit")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        encoding = headers.get("transfer-encoding", "identity").lower()
        if encoding not in ("", "identity"):
            # Silently reading length 0 would serve an empty body and then
            # misparse the first chunk-size line as the next request.
            raise ProtocolError(
                f"Transfer-Encoding {encoding!r} is not supported; "
                "send a Content-Length body"
            )
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(f"invalid Content-Length {length_text!r}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body of {length} bytes exceeds the server limit")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except ProtocolError as error:
                    await self._respond(
                        writer, 400, _error_body(str(error), code="bad_request"), False
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if parsed is None:
                    break
                method, raw_path, headers, body = parsed
                path, _, query = raw_path.partition("?")
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                trace_request_id = parse_trace_header(headers.get("x-repro-trace"))
                extra_headers: dict[str, str] = {}
                try:
                    # The blocking backend call runs through the executor
                    # seam; the event loop stays free for other connections.
                    future = self.executor.submit(
                        self._serve_payload,
                        method,
                        path,
                        body.decode("utf-8", "replace"),
                        query,
                        trace_request_id,
                    )
                    status, payload, extra_headers = await asyncio.wrap_future(future)
                except asyncio.CancelledError:
                    raise
                # The HTTP edge: any crash becomes a 500 'internal'
                # body instead of a dropped connection.
                # repro: ignore[no-silent-swallow]
                except Exception as exc:  # noqa: BLE001 - a crash must answer 500
                    status = 500
                    payload = _error_body(
                        f"internal server error: {exc}", code="internal"
                    )
                    keep_alive = False
                await self._respond(writer, status, payload, keep_alive, extra_headers)
                if self._count_request():
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # CancelledError included: at shutdown asyncio.run cancels the
            # still-draining keep-alive handlers mid-wait_closed; ending
            # the task cancelled here would make the streams machinery
            # re-raise it into the loop's exception handler as noise.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _count_request(self) -> bool:
        """Bump the served counter; True when the request budget is spent."""
        with self._count_lock:
            self.requests_served += 1
            spent = (
                self.max_requests is not None
                and self.requests_served >= self.max_requests
            )
        if spent and self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        return spent

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def serve_async(self) -> None:
        """Bind, publish :attr:`port`, and serve until :meth:`stop` (or the
        ``max_requests`` budget) shuts the server down."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._on_client, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            self._started.clear()

    def _run(self) -> None:
        try:
            asyncio.run(self.serve_async())
        # Stored, not swallowed: start() re-raises this as the
        # server's startup failure.
        # repro: ignore[no-silent-swallow]
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()

    def start(self, timeout: float = 10.0) -> "HttpServer":
        """Run the server on a daemon thread; returns once it is accepting
        connections (with :attr:`port` resolved)."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("the server is already running")
        if self._owns_executor and self.executor.closed:
            # stop() closed the owned executor; a restart must reopen it
            # (the documented context-manager re-entry contract) or every
            # request would answer 500 off a closed pool.
            self.executor.__enter__()
        self._startup_error = None
        self._started.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("the HTTP server did not start in time")
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            raise RuntimeError(f"the HTTP server failed to start: {error}") from error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down (idempotent); closes an owned executor."""
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self._owns_executor:
            self.executor.close()

    def join(self, timeout: float | None = None) -> None:
        """Block until the serving thread exits (Ctrl-C still interrupts —
        the CLI's foreground wait)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self._started.is_set() else "stopped"
        return f"<HttpServer {self.host}:{self.port} backend={self.backend!r} ({state})>"
