"""The :class:`SnippetService` facade: typed requests in, typed responses out.

This is the serving surface the ROADMAP's concurrent-serving work builds
on.  A service owns a :class:`repro.corpus.Corpus` and executes
:class:`~repro.api.protocol.SearchRequest` /
:class:`~repro.api.protocol.BatchRequest` payloads through a pluggable
:class:`~repro.api.executors.Executor`:

* ``run*`` methods raise :class:`~repro.errors.ExtractError` subclasses —
  the in-process API the deprecated ``Corpus``/``ExtractSystem`` shims
  delegate to;
* ``execute*`` methods never raise library errors — failures become
  :class:`~repro.api.protocol.ErrorResponse`, the behaviour a wire
  endpoint wants;
* :meth:`handle_dict` / :meth:`handle_json` speak plain JSON objects for
  frontends like the CLI ``serve-request`` subcommand.

Thread safety: the underlying pipeline never mutates shared engine state
(:meth:`repro.system.ExtractSystem.run_query`), the LRU caches lock
internally, and shared posting-list memos serialise their lookups — so one
service instance may execute requests from many threads (or through
:class:`~repro.api.executors.ConcurrentExecutor`) and return responses
identical to serial execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.api.backend import ServingBackend, ServingBackendBase, stats_envelope
from repro.api.executors import Executor, SerialExecutor
from repro.api.protocol import (
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SnippetPayload,
    UpdateRequest,
    UpdateResponse,
    encode_page_token,
)
from repro.errors import ExtractError, ProtocolError
from repro.search.query import KeywordQuery
from repro.search.xseek import ResultConstruction
from repro.snippet.render import render_snippet_text
from repro.obs.clock import perf_counter
from repro.obs.trace import current_trace
from repro.utils.timing import TimingBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus import Corpus, CorpusEntry, DocumentUpdate
    from repro.search.results import QueryResult
    from repro.snippet.generator import GeneratedSnippet
    from repro.system import SearchOutcome


#: Backwards-compatible name for the JSON endpoint surface: the PR-4
#: ``JsonServing`` mixin is subsumed by the checked
#: :class:`~repro.api.backend.ServingBackend` contract, whose convenience
#: base carries the same ``handle_dict`` / ``handle_text`` /
#: ``handle_json`` implementation.
JsonServing = ServingBackendBase


class SnippetService(ServingBackendBase):
    """Execute typed search/batch requests over a corpus.

    >>> from repro.corpus import Corpus
    >>> from repro.api import SearchRequest, SnippetService
    >>> corpus = Corpus()
    >>> _ = corpus.add_builtin("figure5-stores", name="stores")
    >>> service = SnippetService(corpus)
    >>> response = service.run(SearchRequest(query="store texas", document="stores", size_bound=6))
    >>> response.total_results >= 2
    True
    """

    backend_name = "snippet-service"

    def __init__(self, corpus: "Corpus", executor: Executor | None = None):
        self.corpus = corpus
        self.executor = executor if executor is not None else SerialExecutor()

    # ------------------------------------------------------------------ #
    # single requests
    # ------------------------------------------------------------------ #
    def run(
        self,
        request: SearchRequest,
        parsed: KeywordQuery | None = None,
        build_payloads: bool = True,
        validate: bool = True,
        entry: "CorpusEntry | None" = None,
    ) -> SearchResponse:
        """Execute one request; raises :class:`ExtractError` on failure.

        ``parsed`` optionally supplies the pre-parsed form of
        ``request.query`` (the legacy shims forward the exact
        :class:`KeywordQuery` their caller built); by default the query
        string is parsed here.  ``build_payloads=False`` skips wire-payload
        construction (snippet text rendering) and returns an empty
        ``results`` page — for in-process callers that only consume the
        raw ``outcome`` handle, like the deprecated shims.
        ``validate=False`` skips protocol validation so those shims keep
        their pre-service error contract (e.g. ``InvalidSizeBoundError``
        from the pipeline rather than :class:`ProtocolError`).
        ``entry`` executes against an already-captured corpus entry
        (snapshot semantics for fan-outs racing re-registration) instead
        of resolving ``request.document`` now.
        """
        if validate:
            request.validate()
        if entry is None:
            entry = self.corpus.entry(request.document)
        if parsed is None:
            parsed = KeywordQuery.parse(request.query)
        return self._run_on_entry(request, entry, parsed, build_payloads=build_payloads)

    def execute(self, request: SearchRequest) -> SearchResponse | ErrorResponse:
        """Like :meth:`run`, but failures become an :class:`ErrorResponse`."""
        try:
            return self.run(request)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())

    def run_many(
        self,
        requests: list[SearchRequest],
        parsed: KeywordQuery | None = None,
        build_payloads: bool = True,
        validate: bool = True,
        entries: "list[CorpusEntry] | None" = None,
    ) -> list[SearchResponse]:
        """Execute several independent requests through the executor.

        ``parsed``, when given, is the pre-parsed form shared by *every*
        request's query (the ``query_all`` fan-out: one query, many
        documents); ``build_payloads`` and ``validate`` as in :meth:`run`;
        ``entries``, when given, aligns with ``requests`` and pins each
        one to an already-captured corpus entry (snapshot semantics).
        """
        if entries is not None and len(entries) != len(requests):
            raise ProtocolError(
                f"entries length {len(entries)} does not match requests length {len(requests)}"
            )
        pairs = list(zip(requests, entries if entries is not None else [None] * len(requests)))
        return self.executor.map(
            lambda pair: self.run(
                pair[0],
                parsed=parsed,
                build_payloads=build_payloads,
                validate=validate,
                entry=pair[1],
            ),
            pairs,
        )

    def execute_many(self, requests: list[SearchRequest]) -> list[SearchResponse | ErrorResponse]:
        """Per-request error isolation: one bad request never kills the rest."""
        return self.executor.map(self.execute, requests)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: BatchRequest,
        parsed_queries: list[KeywordQuery] | None = None,
        build_payloads: bool = True,
        validate: bool = True,
        entries: "list[CorpusEntry] | None" = None,
    ) -> BatchResponse:
        """Execute a batch: every query over every selected document.

        Shared work mirrors the PR-1 batch path: each query string is
        parsed once (strings normalising to the same keyword tuple share a
        :class:`KeywordQuery`) and per document every distinct keyword's
        posting list is looked up at most once via the corpus-level shared
        posting memos.  The executor fans out across *queries*; per query,
        documents run in order, so response order is deterministic.

        ``parsed_queries`` lets a caller that already holds parsed
        :class:`KeywordQuery` objects (the ``Corpus.search_batch`` shim)
        bypass re-parsing, preserving exact legacy semantics;
        ``build_payloads`` as in :meth:`run` (the shim consumes raw
        outcomes only, so it skips wire-payload rendering); ``entries``,
        when given, aligns with ``batch.documents`` and pins each one to
        an already-captured corpus entry (snapshot semantics for the
        cluster router's per-shard sub-batches — a concurrent remove
        cannot fail the fan-out part-way).
        """
        if validate:
            batch.validate()
        if entries is not None:
            if batch.documents is None or len(entries) != len(batch.documents):
                raise ProtocolError(
                    f"entries length {len(entries)} does not match the batch's "
                    "documents"
                )
            names = list(batch.documents)
        elif batch.documents is not None:
            names = list(batch.documents)
            entries = [self.corpus.entry(name) for name in names]
        else:
            # Snapshot semantics for "every registered document": a
            # concurrent remove/add cannot fail the batch part-way.
            entries = self.corpus.entries_snapshot()
            names = [entry.name for entry in entries]

        if parsed_queries is not None:
            if len(parsed_queries) != len(batch.queries):
                raise ProtocolError(
                    f"parsed_queries length {len(parsed_queries)} does not match "
                    f"queries length {len(batch.queries)}"
                )
            given: list[KeywordQuery] = parsed_queries
        else:
            given = [KeywordQuery.parse(raw) for raw in batch.queries]

        pairs = list(zip(batch.queries, KeywordQuery.share(given)))

        def run_one(pair: tuple[str, KeywordQuery]) -> BatchEntry:
            raw, parsed = pair
            started = perf_counter()
            responses = tuple(
                self._run_on_entry(
                    batch.search_request(raw, entry.name),
                    entry,
                    parsed,
                    build_payloads=build_payloads,
                )
                for entry in entries
            )
            return BatchEntry(
                query=raw, responses=responses, seconds=perf_counter() - started
            )

        return BatchResponse(
            entries=tuple(self.executor.map(run_one, pairs)),
            documents=tuple(names),
        )

    def execute_batch(
        self, batch: BatchRequest
    ) -> BatchResponse | ErrorResponse:
        try:
            return self.run_batch(batch)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=batch.to_dict())

    # ------------------------------------------------------------------ #
    # document lifecycle
    # ------------------------------------------------------------------ #
    def run_update(self, request: UpdateRequest, validate: bool = True) -> UpdateResponse:
        """Apply a document-lifecycle request to the serving corpus.

        ``update`` upserts: a registered document is diffed and updated
        incrementally where possible (:meth:`repro.corpus.Corpus.
        update_document` — posting-level deltas, targeted cache
        invalidation, atomic swap under the corpus serving lock); an
        unknown name is registered from the carried XML (its DOCTYPE
        internal subset, if any, informs classification).  ``remove``
        unregisters the document.  Requests already being served keep the
        previous version until the swap; they are never torn mid-flight.
        """
        return self.run_update_with_report(request, validate=validate)[0]

    def run_update_with_report(
        self, request: UpdateRequest, validate: bool = True
    ) -> "tuple[UpdateResponse, DocumentUpdate]":
        """Like :meth:`run_update`, but also returns the raw corpus report.

        The report carries what the wire response deliberately omits — the
        applied text edits above all — which is exactly what journalling
        (the ``corpus-update`` CLI) and shard replication
        (:meth:`repro.cluster.ShardServer.apply_update`) need to describe
        the operation as a delta instead of a document.
        """
        from repro.xmltree.dtd import dtd_for_tree_text
        from repro.xmltree.parser import parse_xml

        if validate:
            request.validate()
        started = perf_counter()
        if request.action == "remove":
            report = self.corpus.remove_document(request.document)
        else:
            parsed = parse_xml(request.xml or "", name=request.document)
            dtd = dtd_for_tree_text(parsed.dtd_text, root=parsed.doctype_name)
            report = self.corpus.apply_update(request.document, parsed.tree, dtd=dtd)
        response = UpdateResponse(
            document=report.document,
            action=report.action,
            incremental=report.incremental,
            nodes=report.nodes,
            changed_nodes=report.changed_nodes,
            changed_terms=report.changed_terms,
            structural_reason=report.structural_reason,
            seconds=perf_counter() - started,
            cache_entries_kept=report.cache_entries_kept,
            cache_entries_invalidated=report.cache_entries_invalidated,
        )
        return response, report

    def execute_update(self, request: UpdateRequest) -> UpdateResponse | ErrorResponse:
        """Like :meth:`run_update`, but failures become an :class:`ErrorResponse`."""
        try:
            return self.run_update(request)
        except ExtractError as error:
            return ErrorResponse.from_exception(error, request=request.to_dict())

    # JSON endpoints (handle_dict / handle_text / handle_json) come from
    # ServingBackendBase, shared byte-for-byte with the cluster router.

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def cache_stats(self) -> dict[str, dict[str, dict[str, float]]]:
        """Atomic per-document serving-cache counters, JSON-ready.

        Iterates a snapshot of the registry, so a document removed while
        the stats are being collected is simply absent from the report
        instead of crashing the monitoring call.
        """
        stats: dict[str, dict[str, dict[str, float]]] = {}
        for entry in self.corpus.entries_snapshot():
            stats[entry.name] = {
                "query": entry.system.cache.stats_snapshot().as_dict(),
                "snippet": entry.system.generator.cache.stats_snapshot().as_dict(),
            }
        return stats

    def capabilities(self) -> dict[str, Any]:
        caps = super().capabilities()
        caps["documents"] = len(self.corpus)
        caps["executor"] = self.executor.name
        return caps

    def stats(self) -> dict[str, Any]:
        return stats_envelope(
            self.backend_name,
            documents=len(self.corpus),
            caches=self.cache_stats(),
        )

    def close(self) -> None:
        """Release executor resources (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "SnippetService":
        # Entering the service enters its executor, so service-level
        # context-manager re-entry re-opens a previously closed executor —
        # the same contract the executors themselves document.
        self.executor.__enter__()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<SnippetService documents={len(self.corpus)} executor={self.executor.name}>"

    # ------------------------------------------------------------------ #
    # pipeline plumbing
    # ------------------------------------------------------------------ #
    def _run_on_entry(
        self,
        request: SearchRequest,
        entry: "CorpusEntry",
        parsed: KeywordQuery,
        build_payloads: bool = True,
    ) -> SearchResponse:
        """Execute a validated request against one captured corpus entry.

        System and postings memo both come off the same entry object, so a
        concurrent re-registration can never pair an old engine with a new
        index's postings (or vice versa).
        """
        construction = ResultConstruction(request.construction)
        system = entry.system
        postings = entry.postings
        started = perf_counter()
        if request.include_snippets:
            outcome = system.run_query(
                parsed,
                size_bound=request.size_bound,
                limit=request.limit,
                construction=construction,
                use_cache=request.use_cache,
                postings=postings,
            )
            seconds = perf_counter() - started
            # Pagination is presentation-level: the pipeline evaluates (and
            # caches) the full outcome once, then every page of the same
            # request is a slice of that cached outcome — so cold cost
            # scales with the result count, not page_size, and all
            # follow-up pages are cache hits.  Only the requested page
            # pays wire-payload rendering.
            if build_payloads:
                page_items = outcome.snippets.page(request.page, request.page_size)
                payloads = tuple(self._snippet_payload(generated) for generated in page_items)
            else:
                payloads = ()
            count = len(outcome.snippets)
            total = outcome.results.total_results
            from_cache = outcome.from_cache
            timings = outcome.timings.as_dict() if request.include_meta else {}
        else:
            breakdown = TimingBreakdown()
            results, from_cache = system.run_search_with_provenance(
                parsed,
                limit=request.limit,
                construction=construction,
                use_cache=request.use_cache,
                postings=postings,
                timings=breakdown,
            )
            seconds = perf_counter() - started
            if build_payloads:
                page_items = results.page(request.page, request.page_size)
                payloads = tuple(self._result_payload(result) for result in page_items)
            else:
                payloads = ()
            count = len(results)
            total = results.total_results
            outcome = None
            # A cache hit skips the engine, so the meta timings are empty
            # on warm search-only responses.
            timings = breakdown.as_dict() if request.include_meta else {}
        trace = current_trace()
        if trace is not None:
            # The engine's own per-phase breakdown becomes leaf spans of
            # this service call, so a stitched trace reaches from the
            # gateway all the way into search/IList/selection phases.
            span_id = trace.add_span(
                "service:search", seconds, document=entry.name, from_cache=from_cache
            )
            phases = (
                outcome.timings.as_dict() if outcome is not None else breakdown.as_dict()
            )
            for phase, phase_seconds in phases.items():
                trace.add_span(f"phase:{phase}", phase_seconds, parent_id=span_id)
        has_more = (
            request.page_size is not None and request.page * request.page_size < count
        )
        return SearchResponse(
            query=request.query,
            document=request.document,
            keywords=parsed.keywords,
            algorithm=system.engine.algorithm,
            total_results=total if total is not None else count,
            page=request.page,
            page_size=request.page_size,
            next_page=encode_page_token(request.page + 1) if has_more else None,
            results=payloads,
            from_cache=from_cache,
            seconds=seconds,
            timings=timings,
            outcome=outcome,
        )

    @staticmethod
    def _snippet_payload(generated: "GeneratedSnippet") -> SnippetPayload:
        result = generated.result
        return SnippetPayload(
            result_id=result.result_id,
            score=result.score,
            root=str(result.root),
            root_tag=result.root_node.tag,
            matched_keywords=tuple(result.matched_keywords),
            result_edges=result.size_edges,
            snippet_edges=generated.snippet.size_edges,
            covered_items=generated.covered_items,
            coverable_items=len(generated.ilist.coverable_items()),
            text=render_snippet_text(generated),
        )

    @staticmethod
    def _result_payload(result: "QueryResult") -> SnippetPayload:
        return SnippetPayload(
            result_id=result.result_id,
            score=result.score,
            root=str(result.root),
            root_tag=result.root_node.tag,
            matched_keywords=tuple(result.matched_keywords),
            result_edges=result.size_edges,
        )
