"""Reproduction of the paper's concrete figures (F1, F2, F3, F5).

The demonstration paper contains no numbered evaluation tables, but its
Figures 1–3 are fully checkable artefacts: the value-occurrence statistics
of the running example, the snippet built from them and the IList with its
dominance scores.  Figure 5 is the demo walk-through ("store texas",
bound 6).  Each function regenerates the artefact and reports
paper-expected vs. measured values side by side.
"""

from __future__ import annotations

from repro.datasets.paper_example import (
    FIGURE1_EXPECTED_ILIST,
    FIGURE1_EXPECTED_SCORES,
    figure1_document,
    figure1_query,
    figure1_statistics,
)
from repro.datasets.retail import figure5_document
from repro.errors import EvaluationError
from repro.eval.reporting import ExperimentTable
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.search.engine import SearchEngine
from repro.search.results import QueryResult
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.features import extract_features
from repro.snippet.generator import SnippetGenerator
from repro.snippet.ilist import ItemKind


def brook_brothers_result(index: DocumentIndex) -> QueryResult:
    """The Figure 1 query result (the Brook Brothers retailer)."""
    results = SearchEngine(index).search(figure1_query())
    for result in results:
        name_child = result.root_node.find_child("name")
        if name_child is not None and (name_child.text or "").strip() == "Brook Brothers":
            return result
    raise EvaluationError("the Figure 1 document did not produce the Brook Brothers result")


def figure1_index() -> DocumentIndex:
    """Index of the Figure 1 document (built fresh each call)."""
    return IndexBuilder().build(figure1_document())


# ---------------------------------------------------------------------- #
# F1 — value-occurrence statistics of the Figure 1 result
# ---------------------------------------------------------------------- #
def run_figure1(index: DocumentIndex | None = None) -> ExperimentTable:
    """F1: the Figure 1 statistics panel, paper vs. measured."""
    index = index or figure1_index()
    result = brook_brothers_result(index)
    statistics = extract_features(index.analyzer, result)
    measured = statistics.value_statistics()

    table = ExperimentTable(
        experiment_id="F1",
        title='Figure 1 — value occurrences in the result of "Texas, apparel, retailer"',
        columns=["feature_type", "value", "paper_count", "measured_count"],
    )
    for feature_type, expected_values in figure1_statistics().items():
        measured_values = {
            value.lower(): count for value, count in measured.get(feature_type, [])
        }
        for value, expected_count in expected_values.items():
            table.add_row(
                feature_type=f"({feature_type[0]}, {feature_type[1]})",
                value=value,
                paper_count=expected_count,
                measured_count=measured_values.get(value, 0),
            )
    return table


# ---------------------------------------------------------------------- #
# F2 — the Figure 2 snippet
# ---------------------------------------------------------------------- #
#: tag/value pairs visible in the paper's Figure 2 snippet
FIGURE2_EXPECTED_CONTENT: tuple[str, ...] = (
    "retailer",
    "name=brook brothers",
    "product=apparel",
    "store",
    "state=texas",
    "city=houston",
    "merchandises",
    "clothes",
    "category=suit",
    "fitting=man",
    "category=outwear",
    "fitting=woman",
    "situation=casual",
)

#: Figure 2 has 14 nodes in view; we use its edge count as the bound
FIGURE2_SIZE_BOUND = 14


def run_figure2(index: DocumentIndex | None = None, size_bound: int = FIGURE2_SIZE_BOUND) -> ExperimentTable:
    """F2: regenerate the Figure 2 snippet and compare its visible content."""
    index = index or figure1_index()
    result = brook_brothers_result(index)
    generator = SnippetGenerator(index.analyzer)
    generated = generator.generate(result, size_bound=size_bound)

    visible: set[str] = set()
    for node in generated.snippet.selected_nodes():
        visible.add(node.tag)
        if node.has_text_value:
            visible.add(f"{node.tag}={(node.text or '').strip().lower()}")

    table = ExperimentTable(
        experiment_id="F2",
        title=f"Figure 2 — snippet of the running example (bound={size_bound} edges)",
        columns=["paper_content", "present_in_generated_snippet"],
        notes=(
            f"generated snippet: {generated.snippet.size_edges} edges, "
            f"{generated.covered_items}/{len(generated.ilist.coverable_items())} IList items"
        ),
    )
    for expected in FIGURE2_EXPECTED_CONTENT:
        table.add_row(paper_content=expected, present_in_generated_snippet=int(expected in visible))
    return table


# ---------------------------------------------------------------------- #
# F3 — the Figure 3 IList and §2.3 dominance scores
# ---------------------------------------------------------------------- #
def run_figure3(index: DocumentIndex | None = None) -> ExperimentTable:
    """F3: the IList order and dominance scores, paper vs. measured."""
    index = index or figure1_index()
    result = brook_brothers_result(index)
    generator = SnippetGenerator(index.analyzer)
    ilist = generator.build_ilist(result)
    measured_texts = [text.lower() for text in ilist.texts()]

    identifier = DominantFeatureIdentifier(index.analyzer)
    score_table = identifier.dominance_table(result)

    table = ExperimentTable(
        experiment_id="F3",
        title="Figure 3 — IList of the running example (order + dominance scores)",
        columns=["position", "paper_item", "measured_item", "paper_score", "measured_score"],
        notes="scores are blank for keyword/entity/key items (paper reports scores for features only)",
    )
    for position, expected in enumerate(FIGURE1_EXPECTED_ILIST):
        measured_item = measured_texts[position] if position < len(measured_texts) else "(missing)"
        paper_score = FIGURE1_EXPECTED_SCORES.get(expected, "")
        measured_score = (
            round(score_table.get(expected, 0.0), 3) if expected in FIGURE1_EXPECTED_SCORES else ""
        )
        table.add_row(
            position=position + 1,
            paper_item=expected,
            measured_item=measured_item,
            paper_score=paper_score,
            measured_score=measured_score,
        )
    return table


# ---------------------------------------------------------------------- #
# F5 — the demo walk-through of Figure 5
# ---------------------------------------------------------------------- #
def run_figure5(size_bound: int = 6) -> ExperimentTable:
    """F5: query "store texas" with bound 6 over the stores document.

    The screenshot's described outcome: the Levis store features jeans,
    especially for man; the ESprit store focuses on outwear, mostly for
    woman — and both snippets stay within the 6-edge bound while showing
    the store name (the result key).
    """
    index = IndexBuilder().build(figure5_document())
    results = SearchEngine(index).search("store texas")
    generator = SnippetGenerator(index.analyzer)

    table = ExperimentTable(
        experiment_id="F5",
        title=f'Figure 5 — demo walk-through: "store texas", bound={size_bound}',
        columns=[
            "store",
            "snippet_edges",
            "within_bound",
            "shows_store_name",
            "shows_dominant_category",
            "dominant_category",
            "dominant_fitting",
        ],
        notes="paper narrative: Levis → jeans/man, ESprit → outwear/woman",
    )
    expectations = {"Levis": ("jeans", "man"), "ESprit": ("outwear", "woman")}
    for result in results:
        name_child = result.root_node.find_child("name")
        store_name = (name_child.text or "").strip() if name_child is not None else "?"
        generated = generator.generate(result, size_bound=size_bound)
        values = {
            (node.tag, (node.text or "").strip().lower())
            for node in generated.snippet.selected_nodes()
            if node.has_text_value
        }
        expected_category, expected_fitting = expectations.get(store_name, ("", ""))
        table.add_row(
            store=store_name,
            snippet_edges=generated.snippet.size_edges,
            within_bound=int(generated.snippet.size_edges <= size_bound),
            shows_store_name=int(("name", store_name.lower()) in values),
            shows_dominant_category=int(("category", expected_category) in values),
            dominant_category=expected_category,
            dominant_fitting=expected_fitting,
        )
    return table
