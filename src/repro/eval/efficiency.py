"""Efficiency experiments (E1, E2, E3, E7).

These reproduce the axes of the companion paper's performance evaluation:
snippet-generation time as a function of (E1) the number of query results,
(E2) the snippet size bound and (E3) the document size, plus (E7) the
scaling of the search substrate itself.  Absolute numbers differ from the
authors' C++/Windows testbed; the *shape* (linear growth in results,
sub-linear growth in the bound, index-dominated cost in document size) is
what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time

from repro.datasets.auctions import AuctionConfig, generate_auction_document
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.reporting import ExperimentTable
from repro.index.builder import IndexBuilder
from repro.search.elca import compute_elca
from repro.search.engine import SearchEngine
from repro.search.lca import brute_force_slca
from repro.search.slca import compute_slca
from repro.snippet.generator import SnippetGenerator


def _time(callable_, repeats: int = 1) -> tuple[float, object]:
    """Run ``callable_`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# ---------------------------------------------------------------------- #
# E1 — time vs. number of query results
# ---------------------------------------------------------------------- #
def run_time_vs_results(
    retailer_counts: tuple[int, ...] = (5, 10, 20, 40),
    stores_per_retailer: int = 6,
    clothes_per_store: int = 6,
    size_bound: int = 10,
    query: str = "retailer apparel",
    seed: int = 11,
) -> ExperimentTable:
    """E1: snippet generation time as the number of results grows."""
    table = ExperimentTable(
        experiment_id="E1",
        title=f"Snippet generation time vs. number of query results (bound={size_bound})",
        columns=["results", "result_edges", "total_seconds", "ms_per_result"],
        notes="query: " + query,
    )
    for retailers in retailer_counts:
        config = RetailConfig(
            retailers=retailers,
            stores_per_retailer=stores_per_retailer,
            clothes_per_store=clothes_per_store,
            seed=seed,
        )
        index = IndexBuilder().build(generate_retail_document(config, name=f"retail-{retailers}"))
        results = SearchEngine(index).search(query)
        generator = SnippetGenerator(index.analyzer)
        elapsed, _ = _time(lambda: generator.generate_all(results, size_bound=size_bound))
        count = max(1, len(results))
        table.add_row(
            results=len(results),
            result_edges=results.total_result_edges(),
            total_seconds=elapsed,
            ms_per_result=1000.0 * elapsed / count,
        )
    return table


# ---------------------------------------------------------------------- #
# E2 — time vs. snippet size bound
# ---------------------------------------------------------------------- #
def run_time_vs_bound(
    bounds: tuple[int, ...] = (4, 8, 12, 16, 24, 32, 40),
    retailers: int = 20,
    query: str = "retailer apparel",
    seed: int = 13,
) -> ExperimentTable:
    """E2: snippet generation time as the size bound grows (fixed results)."""
    config = RetailConfig(retailers=retailers, stores_per_retailer=6, clothes_per_store=6, seed=seed)
    index = IndexBuilder().build(generate_retail_document(config, name="retail-bound-sweep"))
    results = SearchEngine(index).search(query)
    generator = SnippetGenerator(index.analyzer)

    table = ExperimentTable(
        experiment_id="E2",
        title=f"Snippet generation time vs. snippet size bound ({len(results)} results)",
        columns=["size_bound", "total_seconds", "mean_snippet_edges", "mean_items_covered"],
        notes="query: " + query,
    )
    for bound in bounds:
        elapsed, batch = _time(lambda b=bound: generator.generate_all(results, size_bound=b))
        snippets = list(batch)  # type: ignore[arg-type]
        mean_edges = sum(g.snippet.size_edges for g in snippets) / max(1, len(snippets))
        mean_items = sum(g.covered_items for g in snippets) / max(1, len(snippets))
        table.add_row(
            size_bound=bound,
            total_seconds=elapsed,
            mean_snippet_edges=mean_edges,
            mean_items_covered=mean_items,
        )
    return table


# ---------------------------------------------------------------------- #
# E3 — time vs. document size (per-phase breakdown)
# ---------------------------------------------------------------------- #
def run_time_vs_docsize(
    scales: tuple[int, ...] = (1, 2, 4, 8),
    query: str = "item books",
    size_bound: int = 10,
    seed: int = 17,
) -> ExperimentTable:
    """E3: per-phase time (index, search, snippets) vs. document size."""
    table = ExperimentTable(
        experiment_id="E3",
        title="Per-phase time vs. document size (auction dataset)",
        columns=[
            "nodes",
            "index_seconds",
            "search_seconds",
            "snippet_seconds",
            "results",
        ],
        notes="query: " + query,
    )
    for scale in scales:
        document = generate_auction_document(
            AuctionConfig(scale=scale, items_per_region=4, seed=seed), name=f"auction-{scale}"
        )
        index_seconds, index = _time(lambda doc=document: IndexBuilder().build(doc))
        engine = SearchEngine(index)  # type: ignore[arg-type]
        search_seconds, results = _time(lambda: engine.search(query))
        generator = SnippetGenerator(index.analyzer)  # type: ignore[union-attr]
        snippet_seconds, _ = _time(lambda: generator.generate_all(results, size_bound=size_bound))
        table.add_row(
            nodes=document.size_nodes,
            index_seconds=index_seconds,
            search_seconds=search_seconds,
            snippet_seconds=snippet_seconds,
            results=len(results),
        )
    return table


# ---------------------------------------------------------------------- #
# E7 — search substrate scaling (SLCA vs ELCA vs brute force)
# ---------------------------------------------------------------------- #
def run_search_engine_scaling(
    scales: tuple[int, ...] = (1, 2, 4),
    query: str = "person books",
    seed: int = 19,
    include_brute_force: bool = True,
) -> ExperimentTable:
    """E7: SLCA / ELCA / brute-force SLCA time vs. document size."""
    table = ExperimentTable(
        experiment_id="E7",
        title="Search semantics computation time vs. document size",
        columns=["nodes", "matches", "slca_seconds", "elca_seconds", "brute_slca_seconds"],
        notes="query: " + query,
    )
    from repro.search.query import KeywordQuery

    parsed = KeywordQuery.parse(query)
    for scale in scales:
        document = generate_auction_document(
            AuctionConfig(scale=scale, items_per_region=4, seed=seed), name=f"auction-e7-{scale}"
        )
        index = IndexBuilder().build(document)
        postings = [index.keyword_matches(keyword) for keyword in parsed.keywords]
        matches = sum(len(plist) for plist in postings)
        slca_seconds, _ = _time(lambda: compute_slca(postings), repeats=3)
        elca_seconds, _ = _time(lambda: compute_elca(postings), repeats=3)
        if include_brute_force:
            brute_seconds, _ = _time(lambda: brute_force_slca(postings))
        else:
            brute_seconds = float("nan")
        table.add_row(
            nodes=document.size_nodes,
            matches=matches,
            slca_seconds=slca_seconds,
            elca_seconds=elca_seconds,
            brute_slca_seconds=brute_seconds,
        )
    return table
